//! Runtime-adaptable BCH codec (the paper's Section 4 architecture).

use std::fmt;
use std::sync::Arc;

use mlcx_gf2::{minpoly::GeneratorTable, GfField};

use crate::code::{BchCode, DecodeOutcome};
use crate::error::BchError;
use crate::kernel::CodecKernel;

/// Running counters the codec exposes to the reliability manager.
///
/// The paper's controller envisions "an integrated reliability manager
/// collecting and elaborating ... feedback from the ECC sub-system"; these
/// counters are that feedback channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Pages encoded since construction (or the last reset).
    pub pages_encoded: u64,
    /// Pages decoded.
    pub pages_decoded: u64,
    /// Pages that decoded with zero errors.
    pub clean_pages: u64,
    /// Pages that needed correction.
    pub corrected_pages: u64,
    /// Total corrected bit errors.
    pub corrected_bits: u64,
    /// Bit errors corrected in the most recent page.
    pub last_corrected_bits: u32,
    /// Pages declared uncorrectable.
    pub uncorrectable_pages: u64,
}

impl CodecStats {
    /// Mean corrected bits per decoded page (0.0 when nothing decoded).
    pub fn mean_corrected_bits(&self) -> f64 {
        if self.pages_decoded == 0 {
            0.0
        } else {
            self.corrected_bits as f64 / self.pages_decoded as f64
        }
    }
}

/// BCH codec with correction capability programmable at runtime.
///
/// Holds the generator-polynomial ROM for `t = 1..=tmax` and lazily
/// instantiates the per-`t` datapath (encoder tables + syndrome tables) on
/// first use, mirroring how the hardware multiplexes one physical LFSR
/// across ROM-selected tap sets.
///
/// The DATE 2012 instantiation is
/// [`AdaptiveBch::date2012`]: GF(2^16), `k = 32768` (4 KiB page),
/// `t = 3..=65`.
///
/// # Example
///
/// ```
/// use mlcx_bch::AdaptiveBch;
///
/// let mut codec = AdaptiveBch::new(13, 128 * 8, 1, 6)?;
/// assert_eq!(codec.correction(), 1); // starts at tmin
/// codec.set_correction(5)?;
/// assert_eq!(codec.parity_bytes(), codec.code()?.parity_bytes());
/// # Ok::<(), mlcx_bch::BchError>(())
/// ```
#[derive(Clone)]
pub struct AdaptiveBch {
    field: Arc<GfField>,
    k_bits: usize,
    tmin: u32,
    tmax: u32,
    kernel: CodecKernel,
    rom: GeneratorTable,
    codes: Vec<Option<Arc<BchCode>>>,
    current_t: u32,
    stats: CodecStats,
}

impl AdaptiveBch {
    /// Builds an adaptive codec over GF(2^m) for `k_bits` message bits with
    /// capability range `tmin..=tmax`.
    ///
    /// # Errors
    ///
    /// * [`BchError::Field`] for unsupported `m`;
    /// * [`BchError::CorrectionOutOfRange`] when `tmin` is 0 or exceeds `tmax`;
    /// * [`BchError::MessageNotByteAligned`] / [`BchError::CodeTooLong`]
    ///   when the worst-case code does not fit the field.
    pub fn new(m: u32, k_bits: usize, tmin: u32, tmax: u32) -> Result<Self, BchError> {
        Self::new_with_kernel(m, k_bits, tmin, tmax, CodecKernel::Auto)
    }

    /// Like [`AdaptiveBch::new`] with an explicit codec kernel rung applied
    /// to every per-`t` code instance.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveBch::new`].
    pub fn new_with_kernel(
        m: u32,
        k_bits: usize,
        tmin: u32,
        tmax: u32,
        kernel: CodecKernel,
    ) -> Result<Self, BchError> {
        let field = Arc::new(GfField::new(m)?);
        if tmin == 0 || tmin > tmax {
            return Err(BchError::CorrectionOutOfRange {
                t: tmin,
                tmin: 1,
                tmax,
            });
        }
        if !k_bits.is_multiple_of(8) || k_bits == 0 {
            return Err(BchError::MessageNotByteAligned { k_bits });
        }
        let rom = GeneratorTable::new(&field, tmax);
        // Worst case must fit: k + deg(g_tmax) <= 2^m - 1.
        let worst_r = rom.get(tmax).degree().unwrap_or(0);
        let n_full = field.order() as usize;
        if k_bits + worst_r > n_full {
            return Err(BchError::CodeTooLong {
                k_bits,
                r_bits: worst_r,
                n_full,
            });
        }
        Ok(AdaptiveBch {
            field,
            k_bits,
            tmin,
            tmax,
            kernel: kernel.resolve(),
            rom,
            codes: vec![None; tmax as usize],
            current_t: tmin,
            stats: CodecStats::default(),
        })
    }

    /// The paper's configuration: 4 KiB page over GF(2^16), `t = 3..=65`.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (none occur for these parameters).
    pub fn date2012() -> Result<Self, BchError> {
        Self::new(16, 4096 * 8, 3, 65)
    }

    /// The message length in bits.
    pub fn message_bits(&self) -> usize {
        self.k_bits
    }

    /// Lower bound of the capability range.
    pub fn tmin(&self) -> u32 {
        self.tmin
    }

    /// Upper bound of the capability range.
    pub fn tmax(&self) -> u32 {
        self.tmax
    }

    /// The currently selected correction capability.
    pub fn correction(&self) -> u32 {
        self.current_t
    }

    /// The codec kernel rung every code instance runs (`Auto` resolved).
    pub fn kernel(&self) -> CodecKernel {
        self.kernel
    }

    /// Selects a new correction capability (the dedicated input port of the
    /// paper's adaptable block).
    ///
    /// # Errors
    ///
    /// [`BchError::CorrectionOutOfRange`] outside `tmin..=tmax`.
    pub fn set_correction(&mut self, t: u32) -> Result<(), BchError> {
        if t < self.tmin || t > self.tmax {
            return Err(BchError::CorrectionOutOfRange {
                t,
                tmin: self.tmin,
                tmax: self.tmax,
            });
        }
        self.current_t = t;
        Ok(())
    }

    /// The code instance for the current capability (lazily constructed).
    ///
    /// # Errors
    ///
    /// Propagates [`BchCode::with_generator`] errors (none occur for
    /// parameters validated at construction).
    pub fn code(&mut self) -> Result<Arc<BchCode>, BchError> {
        self.code_for(self.current_t)
    }

    /// The code instance for an arbitrary capability in range.
    ///
    /// # Errors
    ///
    /// [`BchError::CorrectionOutOfRange`] outside `tmin..=tmax`.
    pub fn code_for(&mut self, t: u32) -> Result<Arc<BchCode>, BchError> {
        if t < self.tmin || t > self.tmax {
            return Err(BchError::CorrectionOutOfRange {
                t,
                tmin: self.tmin,
                tmax: self.tmax,
            });
        }
        let idx = (t - 1) as usize;
        if self.codes[idx].is_none() {
            let code = BchCode::with_generator_kernel(
                self.field.clone(),
                self.k_bits,
                t,
                self.rom.get(t).clone(),
                self.kernel,
            )?;
            self.codes[idx] = Some(Arc::new(code));
        }
        Ok(self.codes[idx].as_ref().unwrap().clone())
    }

    /// Parity bytes at the current capability.
    pub fn parity_bytes(&self) -> usize {
        self.parity_bytes_for(self.current_t)
    }

    /// Parity bytes for capability `t` (from the ROM, without building the
    /// datapath).
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `1..=tmax`.
    pub fn parity_bytes_for(&self, t: u32) -> usize {
        self.rom.get(t).degree().unwrap_or(0).div_ceil(8)
    }

    /// Worst-case parity bytes (`t = tmax`) — the spare-area budget.
    pub fn max_parity_bytes(&self) -> usize {
        self.parity_bytes_for(self.tmax)
    }

    /// Encodes a page at the current capability, returning parity bytes.
    ///
    /// # Errors
    ///
    /// [`BchError::BufferSize`] when `message` is not `k/8` bytes.
    pub fn encode(&mut self, message: &[u8]) -> Result<Vec<u8>, BchError> {
        let code = self.code()?;
        let parity = code.encode(message)?;
        self.stats.pages_encoded += 1;
        Ok(parity)
    }

    /// Decodes a page in place at the current capability and updates the
    /// feedback counters.
    ///
    /// # Errors
    ///
    /// [`BchError::BufferSize`] on wrong buffer lengths; uncorrectable
    /// pages are reported through [`DecodeOutcome::Uncorrectable`].
    pub fn decode(
        &mut self,
        message: &mut [u8],
        parity: &mut [u8],
    ) -> Result<DecodeOutcome, BchError> {
        let code = self.code()?;
        let outcome = code.decode(message, parity)?;
        self.stats.pages_decoded += 1;
        match &outcome {
            DecodeOutcome::Clean => {
                self.stats.clean_pages += 1;
                self.stats.last_corrected_bits = 0;
            }
            DecodeOutcome::Corrected { bit_errors, .. } => {
                self.stats.corrected_pages += 1;
                self.stats.corrected_bits += *bit_errors as u64;
                self.stats.last_corrected_bits = *bit_errors as u32;
            }
            DecodeOutcome::Uncorrectable => {
                self.stats.uncorrectable_pages += 1;
                self.stats.last_corrected_bits = 0;
            }
        }
        Ok(outcome)
    }

    /// The feedback counters.
    pub fn stats(&self) -> CodecStats {
        self.stats
    }

    /// Clears the feedback counters (e.g. at a reliability-manager epoch).
    pub fn reset_stats(&mut self) {
        self.stats = CodecStats::default();
    }

    /// The underlying field.
    pub fn field(&self) -> &Arc<GfField> {
        &self.field
    }
}

impl fmt::Debug for AdaptiveBch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveBch")
            .field("m", &self.field.degree())
            .field("k_bits", &self.k_bits)
            .field("t_range", &(self.tmin..=self.tmax))
            .field("current_t", &self.current_t)
            .field("kernel", &self.kernel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_tmin_and_validates_range() {
        let mut c = AdaptiveBch::new(10, 64 * 8, 2, 6).unwrap();
        assert_eq!(c.correction(), 2);
        assert!(c.set_correction(6).is_ok());
        assert!(matches!(
            c.set_correction(7),
            Err(BchError::CorrectionOutOfRange { t: 7, .. })
        ));
        assert!(matches!(
            c.set_correction(1),
            Err(BchError::CorrectionOutOfRange { t: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(AdaptiveBch::new(10, 64 * 8, 0, 5).is_err());
        assert!(AdaptiveBch::new(10, 64 * 8, 6, 5).is_err());
        assert!(AdaptiveBch::new(10, 63, 1, 5).is_err()); // not byte aligned
        assert!(AdaptiveBch::new(8, 240, 1, 3).is_err()); // too long
        assert!(AdaptiveBch::new(1, 64, 1, 2).is_err()); // bad field
    }

    #[test]
    fn reconfiguration_changes_parity_footprint() {
        let mut c = AdaptiveBch::new(13, 512 * 8, 1, 8).unwrap();
        c.set_correction(1).unwrap();
        let p1 = c.parity_bytes();
        c.set_correction(8).unwrap();
        let p8 = c.parity_bytes();
        assert!(p8 > p1);
        assert_eq!(c.max_parity_bytes(), p8);
    }

    #[test]
    fn encode_decode_after_capability_switch() {
        let mut c = AdaptiveBch::new(13, 256 * 8, 1, 6).unwrap();
        let msg = vec![0x11u8; 256];
        for t in [1u32, 3, 6, 2] {
            c.set_correction(t).unwrap();
            let mut parity = c.encode(&msg).unwrap();
            let mut recv = msg.clone();
            // inject exactly t errors
            for i in 0..t as usize {
                recv[i * 11] ^= 0x20;
            }
            let out = c.decode(&mut recv, &mut parity).unwrap();
            assert_eq!(out.corrected_bits(), t as usize, "t={t}");
            assert_eq!(recv, msg);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut c = AdaptiveBch::new(10, 32 * 8, 1, 4).unwrap();
        c.set_correction(2).unwrap();
        let msg = vec![0u8; 32];
        let mut parity = c.encode(&msg).unwrap();
        let mut recv = msg.clone();
        c.decode(&mut recv, &mut parity).unwrap();
        recv[0] ^= 0x80;
        c.decode(&mut recv, &mut parity).unwrap();
        let s = c.stats();
        assert_eq!(s.pages_encoded, 1);
        assert_eq!(s.pages_decoded, 2);
        assert_eq!(s.clean_pages, 1);
        assert_eq!(s.corrected_pages, 1);
        assert_eq!(s.corrected_bits, 1);
        assert_eq!(s.last_corrected_bits, 1);
        assert!(s.mean_corrected_bits() > 0.0);
        c.reset_stats();
        assert_eq!(c.stats(), CodecStats::default());
    }

    #[test]
    fn code_instances_are_cached() {
        let mut c = AdaptiveBch::new(10, 32 * 8, 1, 4).unwrap();
        let a = c.code_for(3).unwrap();
        let b = c.code_for(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kernel_propagates_to_code_instances() {
        let mut auto = AdaptiveBch::new(10, 32 * 8, 1, 4).unwrap();
        assert_eq!(auto.kernel(), CodecKernel::Fused);
        assert_eq!(auto.code_for(2).unwrap().kernel(), CodecKernel::Fused);
        let mut refc = AdaptiveBch::new_with_kernel(10, 32 * 8, 1, 4, CodecKernel::Byte).unwrap();
        assert_eq!(refc.kernel(), CodecKernel::Byte);
        assert_eq!(refc.code_for(2).unwrap().kernel(), CodecKernel::Byte);
    }
}
