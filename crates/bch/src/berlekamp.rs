//! Berlekamp-Massey error-locator synthesis (second decoding stage).
//!
//! The paper's adaptable decoder uses the inversion-free Berlekamp-Massey
//! (iBM) machine of Micheloni et al., whose iteration count tracks the
//! selected correction capability — that property feeds the latency model
//! in [`crate::hardware`]. The software implementation below is the
//! classical (division-form) Berlekamp-Massey recurrence, which produces
//! the *same* error-locator polynomial up to a nonzero scalar; the Chien
//! search only cares about the root set, which is scalar-invariant.

use mlcx_gf2::GfField;

/// Computes the error-locator polynomial from syndromes `S_1 .. S_2t`.
///
/// Returns the coefficient vector `lambda[0..=L]` with `lambda[0] = 1`,
/// trimmed of trailing zeros, where the roots of
/// `lambda(x) = prod_j (1 + X_j x)` are the inverses of the error locators
/// `X_j = alpha^(e_j)`.
///
/// The caller must reject the result when `deg(lambda) > t` (more errors
/// than the code can locate) — this function only synthesizes the shortest
/// LFSR that generates the syndrome sequence.
pub fn error_locator(field: &GfField, syndromes: &[u32]) -> Vec<u32> {
    let two_t = syndromes.len();
    let mut c = vec![0u32; two_t + 2];
    let mut b = vec![0u32; two_t + 2];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize; // current LFSR length
    let mut shift = 1usize; // x^shift multiplier on b
    let mut last_d = 1u32; // discrepancy at the last length change

    for n in 0..two_t {
        // Discrepancy d = S_{n+1} + sum_{i=1..=l} c_i * S_{n+1-i}.
        let mut d = syndromes[n];
        for i in 1..=l.min(n) {
            if c[i] != 0 {
                d ^= field.mul(c[i], syndromes[n - i]);
            }
        }
        if d == 0 {
            shift += 1;
        } else if 2 * l <= n {
            let prev_c = c.clone();
            let coef = field
                .div(d, last_d)
                .expect("last discrepancy is nonzero by construction");
            for i in 0..two_t + 2 - shift {
                if b[i] != 0 {
                    c[i + shift] ^= field.mul(coef, b[i]);
                }
            }
            l = n + 1 - l;
            b = prev_c;
            last_d = d;
            shift = 1;
        } else {
            let coef = field
                .div(d, last_d)
                .expect("last discrepancy is nonzero by construction");
            for i in 0..two_t + 2 - shift {
                if b[i] != 0 {
                    c[i + shift] ^= field.mul(coef, b[i]);
                }
            }
            shift += 1;
        }
    }

    while c.len() > 1 && *c.last().unwrap() == 0 {
        c.pop();
    }
    c
}

/// The degree of an error-locator polynomial returned by [`error_locator`].
pub fn locator_degree(lambda: &[u32]) -> usize {
    lambda.iter().rposition(|&x| x != 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds syndromes for a known error-position set:
    /// `S_i = sum_j alpha^(i * e_j)`.
    fn syndromes_for_errors(field: &GfField, t: u32, error_exps: &[u32]) -> Vec<u32> {
        (1..=2 * t as i64)
            .map(|i| {
                error_exps
                    .iter()
                    .fold(0u32, |acc, &e| acc ^ field.alpha_pow(i * e as i64))
            })
            .collect()
    }

    /// Checks lambda vanishes exactly on the inverses of the locators.
    fn assert_roots(field: &GfField, lambda: &[u32], error_exps: &[u32]) {
        assert_eq!(locator_degree(lambda), error_exps.len());
        for &e in error_exps {
            let x = field.alpha_pow(-(e as i64));
            let mut acc = 0u32;
            for (d, &coef) in lambda.iter().enumerate() {
                acc ^= field.mul(coef, field.pow(x, d as i64));
            }
            assert_eq!(acc, 0, "lambda must vanish at alpha^-{e}");
        }
    }

    #[test]
    fn no_errors_gives_constant_locator() {
        let f = GfField::new(8).unwrap();
        let lambda = error_locator(&f, &[0u32; 8]);
        assert_eq!(lambda, vec![1]);
        assert_eq!(locator_degree(&lambda), 0);
    }

    #[test]
    fn single_error() {
        let f = GfField::new(8).unwrap();
        for e in [0u32, 1, 77, 200, 254] {
            let syn = syndromes_for_errors(&f, 3, &[e]);
            let lambda = error_locator(&f, &syn);
            assert_roots(&f, &lambda, &[e]);
        }
    }

    #[test]
    fn multiple_errors_up_to_t() {
        let f = GfField::new(10).unwrap();
        let cases: [&[u32]; 4] = [
            &[5, 900],
            &[0, 1, 2],
            &[17, 300, 612, 1000],
            &[3, 99, 207, 555, 801],
        ];
        for errs in cases {
            let t = errs.len() as u32;
            let syn = syndromes_for_errors(&f, t, errs);
            let lambda = error_locator(&f, &syn);
            assert_roots(&f, &lambda, errs);
        }
    }

    #[test]
    fn excess_errors_reported_by_degree() {
        // t = 2 code, 4 errors: BM may synthesize an LFSR of length > t,
        // which the decoder rejects. (Occasionally >t errors alias to a
        // low-degree locator — that is exactly BCH miscorrection and is
        // why UBER is nonzero — but for this fixed pattern it does not.)
        let f = GfField::new(8).unwrap();
        let syn = syndromes_for_errors(&f, 2, &[1, 50, 100, 200]);
        let lambda = error_locator(&f, &syn);
        assert!(
            locator_degree(&lambda) > 2 || {
                // If degree <= 2, the locator must NOT reproduce the 4 errors.
                let mut ok = false;
                for &e in &[1u32, 50, 100, 200] {
                    let x = f.alpha_pow(-(e as i64));
                    let mut acc = 0u32;
                    for (d, &coef) in lambda.iter().enumerate() {
                        acc ^= f.mul(coef, f.pow(x, d as i64));
                    }
                    if acc != 0 {
                        ok = true;
                    }
                }
                ok
            }
        );
    }

    #[test]
    fn degree_of_all_zero_is_zero() {
        assert_eq!(locator_degree(&[0, 0, 0]), 0);
        assert_eq!(locator_degree(&[1]), 0);
        assert_eq!(locator_degree(&[1, 0, 5, 0]), 2);
    }
}
