//! Fixed-width bit register used as the LFSR remainder state.

/// An `r`-bit register packed LSB-first into `u64` words.
///
/// Bit `i` holds the coefficient of `x^i` of the running remainder, so the
/// register is exactly the parallel LFSR state of the hardware encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitReg {
    words: Vec<u64>,
    bits: usize,
}

impl BitReg {
    pub(crate) fn zero(bits: usize) -> Self {
        BitReg {
            words: vec![0; bits.div_ceil(64).max(1)],
            bits,
        }
    }

    #[cfg(test)]
    pub(crate) fn from_words(words: &[u64], bits: usize) -> Self {
        let mut reg = BitReg::zero(bits);
        for (i, &w) in words.iter().enumerate().take(reg.words.len()) {
            reg.words[i] = w;
        }
        reg.mask_top();
        reg
    }

    #[cfg(test)]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// The top 8 bits (coefficients `x^(r-1) .. x^(r-8)`), MSB-first.
    ///
    /// Requires `r >= 8`.
    pub(crate) fn top8(&self) -> u8 {
        self.top_bits(8) as u8
    }

    /// The top `count` bits (coefficients `x^(r-1) .. x^(r-count)`),
    /// MSB-first in the returned value. Requires `count <= 64 <= ...` —
    /// precisely `1 <= count <= 64` and `r >= count`.
    pub(crate) fn top_bits(&self, count: usize) -> u64 {
        debug_assert!((1..=64).contains(&count) && self.bits >= count);
        let lo = self.bits - count;
        let (w, off) = (lo / 64, lo % 64);
        let mut v = self.words[w] >> off;
        if off != 0 && w + 1 < self.words.len() {
            v |= self.words[w + 1] << (64 - off);
        }
        if count < 64 {
            v &= (1u64 << count) - 1;
        }
        v
    }

    /// Shift the register left by 8 bit positions, discarding overflow.
    pub(crate) fn shl8(&mut self) {
        self.shln(8);
    }

    /// Shift left by one bit position, discarding overflow.
    pub(crate) fn shl1(&mut self) {
        self.shln(1);
    }

    /// Shift left by `k` bit positions (`1 <= k <= 64`), discarding
    /// overflow — the wide step of the sliced LFSR datapaths.
    pub(crate) fn shln(&mut self, k: usize) {
        debug_assert!((1..=64).contains(&k));
        let n = self.words.len();
        if k == 64 {
            for i in (1..n).rev() {
                self.words[i] = self.words[i - 1];
            }
            self.words[0] = 0;
        } else {
            for i in (0..n).rev() {
                let lo = if i == 0 {
                    0
                } else {
                    self.words[i - 1] >> (64 - k)
                };
                self.words[i] = self.words[i] << k | lo;
            }
        }
        self.mask_top();
    }

    pub(crate) fn xor(&mut self, rhs: &[u64]) {
        debug_assert_eq!(rhs.len(), self.words.len());
        for (w, &r) in self.words.iter_mut().zip(rhs) {
            *w ^= r;
        }
    }

    fn mask_top(&mut self) {
        let used = self.bits % 64;
        if used != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << used) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top8_reads_msb_first() {
        let mut reg = BitReg::zero(16);
        // Set bits 15 (MSB) and 9.
        reg.words[0] = 1 << 15 | 1 << 9;
        assert_eq!(reg.top8(), 0b1000_0010);
    }

    #[test]
    fn shl8_drops_overflow() {
        let mut reg = BitReg::zero(12);
        reg.words[0] = 0xFFF;
        reg.shl8();
        assert_eq!(reg.words[0], 0xF00);
    }

    #[test]
    fn shl_across_word_boundary() {
        let mut reg = BitReg::zero(80);
        reg.words[0] = 1 << 60;
        reg.shl8();
        assert!(reg.bit(68));
        assert!(!reg.bit(60));
        let mut reg1 = BitReg::zero(80);
        reg1.words[0] = 1 << 63;
        reg1.shl1();
        assert!(reg1.bit(64));
    }

    #[test]
    fn from_words_masks_extra_bits() {
        let reg = BitReg::from_words(&[u64::MAX], 10);
        assert_eq!(reg.words()[0], 0x3FF);
    }

    #[test]
    fn top_bits_matches_bit_reads() {
        // r = 100 puts the top-32/top-64 windows across the word seam.
        let reg = BitReg::from_words(&[0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210], 100);
        for count in [1usize, 7, 8, 31, 32, 33, 63, 64] {
            let got = reg.top_bits(count);
            let mut expect = 0u64;
            for j in 0..count {
                expect <<= 1;
                if reg.bit(100 - 1 - j) {
                    expect |= 1;
                }
            }
            assert_eq!(got, expect, "count = {count}");
        }
    }

    #[test]
    fn shln_matches_repeated_shl1() {
        for k in [2usize, 8, 13, 32, 63, 64] {
            let mut wide = BitReg::from_words(&[0x9E37_79B9_7F4A_7C15, 0x2545_F491_4F6C_DD1D], 90);
            let mut serial = wide.clone();
            wide.shln(k);
            for _ in 0..k {
                serial.shl1();
            }
            assert_eq!(wide, serial, "k = {k}");
        }
    }
}
