//! Chien search over the shortened position range (third decoding stage).
//!
//! The hardware evaluates the error-locator polynomial at successive field
//! elements with `t x h` constant Galois multipliers. For a *shortened*
//! code only `n` of the `2^m - 1` positions exist; the paper's decoder
//! stores, per correction capability, the first field element to search in
//! a small ROM. This module mirrors that: the search starts at
//! `alpha^(N - (n-1))` and walks exactly `n` steps, so step index `s`
//! corresponds one-to-one to codeword stream position `s`.

use mlcx_gf2::GfField;

/// Finds error positions (codeword stream indices, 0 = first message bit).
///
/// `lambda` is the error-locator polynomial from
/// [`crate::berlekamp::error_locator`]; `n_bits` is the shortened codeword
/// length. Returns `None` when the number of roots found inside the valid
/// position range differs from `deg(lambda)` — the decoder must then
/// declare the page uncorrectable (errors outside the shortened range or a
/// degenerate locator).
///
/// # Example
///
/// ```
/// use mlcx_gf2::GfField;
/// use mlcx_bch::chien::find_error_positions;
///
/// let f = GfField::new(8)?;
/// // lambda(x) = 1 + X x with X = alpha^e locates a single error at
/// // codeword exponent e; with n = 100 and e = 97 the stream position is
/// // n - 1 - e = 2.
/// let x = f.alpha_pow(97);
/// let lambda = vec![1, x];
/// assert_eq!(find_error_positions(&f, &lambda, 100), Some(vec![2]));
/// # Ok::<(), mlcx_gf2::GfError>(())
/// ```
pub fn find_error_positions(field: &GfField, lambda: &[u32], n_bits: usize) -> Option<Vec<usize>> {
    let deg = crate::berlekamp::locator_degree(lambda);
    if deg == 0 {
        return None;
    }
    let n_full = field.order() as usize;
    debug_assert!(n_bits <= n_full);

    // First searched exponent (the ROM-stored start coefficient).
    let start = (n_full - (n_bits - 1)) as i64;
    // terms[d] = lambda_d * alpha^(d * start); each step multiplies term d
    // by alpha^d — the constant-multiplier structure of the hardware.
    let mut terms: Vec<u32> = lambda[..=deg]
        .iter()
        .enumerate()
        .map(|(d, &coef)| field.mul(coef, field.alpha_pow(d as i64 * start)))
        .collect();
    let steppers: Vec<u32> = (0..=deg).map(|d| field.alpha_pow(d as i64)).collect();

    let mut positions = Vec::with_capacity(deg);
    for s in 0..n_bits {
        let mut acc = 0u32;
        for &term in &terms {
            acc ^= term;
        }
        if acc == 0 {
            positions.push(s);
            if positions.len() == deg {
                return Some(positions);
            }
        }
        if s + 1 < n_bits {
            for (term, &step) in terms.iter_mut().zip(&steppers) {
                *term = field.mul(*term, step);
            }
        }
    }
    // Fewer roots than deg(lambda): uncorrectable.
    None
}

/// Log-stride variant of [`find_error_positions`] (codec kernel rung 2+).
///
/// Each nonzero term of the locator is tracked as a *log-domain* exponent:
/// term `d` at step `s` is `alpha^(log lambda_d + d*(start+s) mod N)`, so
/// stepping is one add and one conditional subtract instead of a full
/// Galois multiply (two log lookups, zero checks). Bit-identical to the
/// linear search: the evaluated field elements are the same, so the root
/// set, early exit and ordering all match.
pub fn find_error_positions_stride(
    field: &GfField,
    lambda: &[u32],
    n_bits: usize,
) -> Option<Vec<usize>> {
    let deg = crate::berlekamp::locator_degree(lambda);
    if deg == 0 {
        return None;
    }
    let n_full = field.order() as usize;
    debug_assert!(n_bits <= n_full);
    let n = field.order();
    let start = (n_full - (n_bits - 1)) as i64;

    // (stride d, log-domain index) for every nonzero coefficient; zero
    // coefficients contribute nothing at every step, exactly as in the
    // linear search where their term stays 0 forever.
    let terms: Vec<(u32, u32)> = lambda[..=deg]
        .iter()
        .enumerate()
        .filter(|&(_, &coef)| coef != 0)
        .map(|(d, &coef)| {
            let log = field.log(coef).expect("nonzero coefficient has a log");
            let idx = (log as i64 + d as i64 * start).rem_euclid(n as i64) as u32;
            (d as u32, idx)
        })
        .collect();
    let mut logs: Vec<u32> = terms.iter().map(|&(_, idx)| idx).collect();

    let mut positions = Vec::with_capacity(deg);
    for s in 0..n_bits {
        let mut acc = 0u32;
        for &log in &logs {
            acc ^= field.alpha_pow_reduced(log);
        }
        if acc == 0 {
            positions.push(s);
            if positions.len() == deg {
                return Some(positions);
            }
        }
        if s + 1 < n_bits {
            for (log, &(d, _)) in logs.iter_mut().zip(&terms) {
                *log += d;
                if *log >= n {
                    *log -= n;
                }
            }
        }
    }
    None
}

/// Direct solve for a degree-1 locator (codec kernel rung 3).
///
/// `lambda(x) = lambda_0 + lambda_1 x` vanishes at `alpha^j` exactly when
/// `j = log(lambda_0) - log(lambda_1) (mod N)`; the Chien step index `s`
/// maps to exponent `start + s`, so the unique candidate position is
/// `s = (j - start) mod N`, valid iff it falls inside the shortened range.
/// Returns exactly what the linear search over `n_bits` steps would.
pub fn solve_single_error(field: &GfField, lambda: &[u32], n_bits: usize) -> Option<Vec<usize>> {
    debug_assert_eq!(crate::berlekamp::locator_degree(lambda), 1);
    let n_full = field.order() as i64;
    debug_assert!(n_bits as i64 <= n_full);
    // lambda_0 = 0 would put the root at x = 0, which is no alpha^j: the
    // linear search finds nothing.
    let l0 = field.log(lambda[0])?;
    let l1 = field
        .log(lambda[1])
        .expect("degree-1 locator has nonzero lambda_1");
    let start = n_full - (n_bits as i64 - 1);
    let j = (l0 as i64 - l1 as i64).rem_euclid(n_full);
    let s = (j - start).rem_euclid(n_full) as usize;
    (s < n_bits).then(|| vec![s])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// lambda(x) = prod_j (1 + alpha^{e_j} x) expanded over the field.
    fn locator_for(field: &GfField, error_exps: &[u32]) -> Vec<u32> {
        let mut lambda = vec![1u32];
        for &e in error_exps {
            let x = field.alpha_pow(e as i64);
            let mut next = vec![0u32; lambda.len() + 1];
            for (d, &c) in lambda.iter().enumerate() {
                next[d] ^= c;
                next[d + 1] ^= field.mul(c, x);
            }
            lambda = next;
        }
        lambda
    }

    #[test]
    fn finds_all_positions_full_length() {
        let f = GfField::new(8).unwrap();
        let n = f.order() as usize; // unshortened
        let exps = [0u32, 10, 200];
        let lambda = locator_for(&f, &exps);
        let mut expect: Vec<usize> = exps.iter().map(|&e| n - 1 - e as usize).collect();
        expect.sort_unstable();
        assert_eq!(find_error_positions(&f, &lambda, n), Some(expect));
    }

    #[test]
    fn finds_positions_in_shortened_code() {
        let f = GfField::new(10).unwrap();
        let n = 400usize; // shortened from 1023
                          // Errors at stream positions 0, 57, 399.
        let positions = [0usize, 57, 399];
        let exps: Vec<u32> = positions.iter().map(|&p| (n - 1 - p) as u32).collect();
        let lambda = locator_for(&f, &exps);
        assert_eq!(
            find_error_positions(&f, &lambda, n),
            Some(positions.to_vec())
        );
    }

    #[test]
    fn error_outside_shortened_range_is_rejected() {
        let f = GfField::new(10).unwrap();
        let n = 400usize;
        // One in-range error plus one at exponent n (outside the shortened
        // window): the search must come up one root short.
        let lambda = locator_for(&f, &[(n - 10) as u32, (n + 5) as u32]);
        assert_eq!(find_error_positions(&f, &lambda, n), None);
    }

    #[test]
    fn constant_locator_rejected() {
        let f = GfField::new(8).unwrap();
        assert_eq!(find_error_positions(&f, &[1], 100), None);
        assert_eq!(find_error_positions(&f, &[0], 100), None);
    }

    #[test]
    fn repeated_root_cannot_complete() {
        // lambda = (1 + alpha^e x)^2 has a double root; only one distinct
        // position exists so the count check fails -> None.
        let f = GfField::new(8).unwrap();
        let lambda = locator_for(&f, &[30, 30]);
        assert_eq!(find_error_positions(&f, &lambda, 255), None);
    }

    #[test]
    fn stride_search_matches_linear_search() {
        let f = GfField::new(10).unwrap();
        let n = 400usize;
        let cases: [&[usize]; 5] = [
            &[0],
            &[399],
            &[0, 57, 399],
            &[12, 13, 14, 15],
            &[100, 350], // plus out-of-range and degenerate cases below
        ];
        for positions in cases {
            let exps: Vec<u32> = positions.iter().map(|&p| (n - 1 - p) as u32).collect();
            let lambda = locator_for(&f, &exps);
            assert_eq!(
                find_error_positions_stride(&f, &lambda, n),
                find_error_positions(&f, &lambda, n),
                "positions {positions:?}"
            );
        }
        // Out-of-range root and repeated root: both must agree on None.
        for lambda in [
            locator_for(&f, &[(n - 10) as u32, (n + 5) as u32]),
            locator_for(&f, &[30, 30]),
        ] {
            assert_eq!(
                find_error_positions_stride(&f, &lambda, n),
                find_error_positions(&f, &lambda, n)
            );
        }
        assert_eq!(find_error_positions_stride(&f, &[1], n), None);
    }

    #[test]
    fn single_error_solve_matches_linear_search() {
        let f = GfField::new(10).unwrap();
        let n = 400usize;
        // Every in-range position, a sample of out-of-range exponents.
        for p in [0usize, 1, 57, 199, 398, 399] {
            let lambda = locator_for(&f, &[(n - 1 - p) as u32]);
            assert_eq!(
                solve_single_error(&f, &lambda, n),
                find_error_positions(&f, &lambda, n),
                "position {p}"
            );
            assert_eq!(solve_single_error(&f, &lambda, n), Some(vec![p]));
        }
        for e in [n as u32, (n + 100) as u32, f.order() - 1] {
            let lambda = locator_for(&f, &[e]);
            assert_eq!(
                solve_single_error(&f, &lambda, n),
                find_error_positions(&f, &lambda, n),
                "exponent {e}"
            );
        }
        // lambda_0 = 0 (root at x = 0): nothing findable either way.
        let degenerate = [0u32, 5];
        assert_eq!(solve_single_error(&f, &degenerate, n), None);
        assert_eq!(find_error_positions(&f, &degenerate, n), None);
    }
}
