//! A fixed-capability (shortened) binary BCH code.

use std::fmt;
use std::sync::Arc;

use mlcx_gf2::{minpoly, Gf2Poly, GfField};

use crate::berlekamp;
use crate::chien;
use crate::encoder::{EncodeLane, LfsrEncoder};
use crate::error::BchError;
use crate::kernel::CodecKernel;
use crate::syndrome::{SyndromeCalculator, SyndromeLane};

/// Result of decoding one codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The received codeword was already valid (zero remainder shortcut).
    Clean,
    /// Errors were located and corrected in place.
    Corrected {
        /// Total corrected bits (message + parity).
        bit_errors: usize,
        /// Corrected bits that fell inside the message.
        message_bit_errors: usize,
        /// Stream positions of the corrected bits (0 = first message bit).
        positions: Vec<usize>,
    },
    /// More errors than the code can locate: data returned unmodified.
    ///
    /// Note that, as in any bounded-distance decoder, error patterns beyond
    /// the designed distance can also *miscorrect* silently — that residual
    /// probability is exactly the UBER the cross-layer framework manages.
    Uncorrectable,
}

impl DecodeOutcome {
    /// `true` for [`DecodeOutcome::Clean`] or [`DecodeOutcome::Corrected`].
    pub fn is_success(&self) -> bool {
        !matches!(self, DecodeOutcome::Uncorrectable)
    }

    /// Number of bits corrected (0 for clean or uncorrectable pages).
    pub fn corrected_bits(&self) -> usize {
        match self {
            DecodeOutcome::Corrected { bit_errors, .. } => *bit_errors,
            _ => 0,
        }
    }
}

/// A shortened binary BCH code `[n, k]` over GF(2^m) correcting `t` errors.
///
/// The message length is fixed at construction (the paper uses the full
/// 4 KiB page, `k = 32768`); parity is `r = deg g(x) <= m*t` bits appended
/// in the spare area, giving `n = k + r <= 2^m - 1`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mlcx_gf2::GfField;
/// use mlcx_bch::{BchCode, DecodeOutcome};
///
/// let field = Arc::new(GfField::new(13)?);
/// let code = BchCode::new(field, 256 * 8, 3)?;
/// let message = vec![0x5Au8; 256];
/// let mut parity = code.encode(&message)?;
///
/// let mut received = message.clone();
/// received[0] ^= 0x81; // two bit errors
/// received[100] ^= 0x01; // and a third
/// let outcome = code.decode(&mut received, &mut parity)?;
/// assert!(matches!(outcome, DecodeOutcome::Corrected { bit_errors: 3, .. }));
/// assert_eq!(received, message);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct BchCode {
    field: Arc<GfField>,
    t: u32,
    k_bits: usize,
    r_bits: usize,
    kernel: CodecKernel,
    generator: Gf2Poly,
    encoder: LfsrEncoder,
    syndromes: SyndromeCalculator,
    /// `beta_i^(-r)` constants for the fused syndrome-via-remainder path.
    syn_unshift: Vec<u32>,
}

impl BchCode {
    /// Builds the `t`-error-correcting code for `k_bits` message bits,
    /// deriving the generator polynomial from the field.
    ///
    /// # Errors
    ///
    /// * [`BchError::MessageNotByteAligned`] if `k_bits % 8 != 0`;
    /// * [`BchError::CodeTooLong`] if `k + r > 2^m - 1`;
    /// * [`BchError::CorrectionOutOfRange`] if `t == 0`.
    pub fn new(field: Arc<GfField>, k_bits: usize, t: u32) -> Result<Self, BchError> {
        Self::new_with_kernel(field, k_bits, t, CodecKernel::Auto)
    }

    /// Like [`BchCode::new`] with an explicit codec kernel rung.
    ///
    /// # Errors
    ///
    /// See [`BchCode::new`].
    pub fn new_with_kernel(
        field: Arc<GfField>,
        k_bits: usize,
        t: u32,
        kernel: CodecKernel,
    ) -> Result<Self, BchError> {
        if t == 0 {
            return Err(BchError::CorrectionOutOfRange {
                t,
                tmin: 1,
                tmax: u32::MAX,
            });
        }
        let generator = minpoly::generator_poly(&field, t);
        Self::with_generator_kernel(field, k_bits, t, generator, kernel)
    }

    /// Builds the code from a pre-computed generator polynomial (the
    /// adaptive codec feeds these from its polynomial ROM).
    ///
    /// # Errors
    ///
    /// See [`BchCode::new`].
    pub fn with_generator(
        field: Arc<GfField>,
        k_bits: usize,
        t: u32,
        generator: Gf2Poly,
    ) -> Result<Self, BchError> {
        Self::with_generator_kernel(field, k_bits, t, generator, CodecKernel::Auto)
    }

    /// Builds the code from a pre-computed generator polynomial on an
    /// explicit codec kernel rung. Every rung decodes bit-identically; the
    /// knob trades table footprint against throughput.
    ///
    /// # Errors
    ///
    /// See [`BchCode::new`].
    pub fn with_generator_kernel(
        field: Arc<GfField>,
        k_bits: usize,
        t: u32,
        generator: Gf2Poly,
        kernel: CodecKernel,
    ) -> Result<Self, BchError> {
        if !k_bits.is_multiple_of(8) || k_bits == 0 {
            return Err(BchError::MessageNotByteAligned { k_bits });
        }
        let r_bits = generator.degree().unwrap_or(0);
        let n_full = field.order() as usize;
        if k_bits + r_bits > n_full {
            return Err(BchError::CodeTooLong {
                k_bits,
                r_bits,
                n_full,
            });
        }
        let kernel = kernel.resolve();
        let (enc_lane, syn_lane) = match kernel {
            CodecKernel::Reference => (EncodeLane::Bit, SyndromeLane::Bit),
            CodecKernel::Byte => (EncodeLane::Byte, SyndromeLane::Byte),
            CodecKernel::Word => (EncodeLane::Slice4, SyndromeLane::Dual),
            // The fused rung evaluates syndromes over the short LFSR
            // remainder, so the plain byte tables suffice there.
            CodecKernel::Fused => (EncodeLane::Slice8, SyndromeLane::Byte),
            CodecKernel::Auto => unreachable!("resolve() removes Auto"),
        };
        let encoder = LfsrEncoder::with_lane(&generator, enc_lane);
        let syndromes = SyndromeCalculator::with_lane(field.clone(), t, syn_lane);
        let syn_unshift = if kernel == CodecKernel::Fused {
            syndromes.unshift_factors(r_bits)
        } else {
            Vec::new()
        };
        Ok(BchCode {
            field,
            t,
            k_bits,
            r_bits,
            kernel,
            generator,
            encoder,
            syndromes,
            syn_unshift,
        })
    }

    /// The correction capability `t`.
    pub fn correction_capability(&self) -> u32 {
        self.t
    }

    /// The codec kernel rung this instance runs (`Auto` already resolved).
    pub fn kernel(&self) -> CodecKernel {
        self.kernel
    }

    /// Message length `k` in bits.
    pub fn message_bits(&self) -> usize {
        self.k_bits
    }

    /// Parity length `r` in bits (`= deg g`).
    pub fn parity_bits(&self) -> usize {
        self.r_bits
    }

    /// Parity length in bytes (`ceil(r/8)`), as stored in the spare area.
    pub fn parity_bytes(&self) -> usize {
        self.r_bits.div_ceil(8)
    }

    /// Shortened codeword length `n = k + r` in bits.
    pub fn codeword_bits(&self) -> usize {
        self.k_bits + self.r_bits
    }

    /// Full (unshortened) length `2^m - 1`.
    pub fn full_length(&self) -> usize {
        self.field.order() as usize
    }

    /// Number of positions removed by shortening.
    pub fn shortened_by(&self) -> usize {
        self.full_length() - self.codeword_bits()
    }

    /// Code rate `k / n`.
    pub fn rate(&self) -> f64 {
        self.k_bits as f64 / self.codeword_bits() as f64
    }

    /// The generator polynomial.
    pub fn generator(&self) -> &Gf2Poly {
        &self.generator
    }

    /// The underlying field.
    pub fn field(&self) -> &Arc<GfField> {
        &self.field
    }

    /// Systematically encodes `message`, returning the parity bytes.
    ///
    /// # Errors
    ///
    /// [`BchError::BufferSize`] if `message` is not exactly `k/8` bytes.
    pub fn encode(&self, message: &[u8]) -> Result<Vec<u8>, BchError> {
        self.check_message(message)?;
        Ok(self.encoder.remainder(message))
    }

    /// Decodes in place: locates up to `t` bit errors across `message` and
    /// `parity` and flips them back.
    ///
    /// # Errors
    ///
    /// [`BchError::BufferSize`] on wrong buffer lengths. Uncorrectable
    /// pages are *not* an `Err` — they are the
    /// [`DecodeOutcome::Uncorrectable`] variant, because they are an
    /// expected runtime condition the reliability manager consumes.
    pub fn decode(&self, message: &mut [u8], parity: &mut [u8]) -> Result<DecodeOutcome, BchError> {
        self.check_message(message)?;
        if parity.len() != self.parity_bytes() {
            return Err(BchError::BufferSize {
                what: "parity",
                expected: self.parity_bytes(),
                actual: parity.len(),
            });
        }
        // Stages 0+1: validity shortcut (paper: "if all remainders are null
        // the codeword is error-free and the decoding process ends") and
        // syndrome computation. The fused rung does both in one LFSR pass:
        // the remainder state is zero iff the codeword is valid, and
        // otherwise S_i = state(beta_i) * beta_i^(-r).
        let syn = if self.kernel == CodecKernel::Fused {
            let state = self.encoder.codeword_state(message, parity);
            if state.is_zero() {
                return Ok(DecodeOutcome::Clean);
            }
            let state_bytes = self.encoder.state_bytes(&state);
            let mut syn = self.syndromes.compute(&[], &state_bytes, self.r_bits);
            for (s, &unshift) in syn.iter_mut().zip(&self.syn_unshift) {
                *s = self.field.mul(*s, unshift);
            }
            syn
        } else {
            if self.encoder.codeword_is_valid(message, parity) {
                return Ok(DecodeOutcome::Clean);
            }
            self.syndromes.compute(message, parity, self.r_bits)
        };
        // Stage 2: Berlekamp-Massey.
        let lambda = berlekamp::error_locator(&self.field, &syn);
        let deg = berlekamp::locator_degree(&lambda);
        if deg == 0 || deg > self.t as usize {
            return Ok(DecodeOutcome::Uncorrectable);
        }
        // Stage 3: Chien search over the shortened range.
        let n_bits = self.codeword_bits();
        let positions = match self.kernel {
            CodecKernel::Reference | CodecKernel::Byte => {
                chien::find_error_positions(&self.field, &lambda, n_bits)
            }
            CodecKernel::Fused if deg == 1 => {
                chien::solve_single_error(&self.field, &lambda, n_bits)
            }
            _ => chien::find_error_positions_stride(&self.field, &lambda, n_bits),
        };
        let Some(positions) = positions else {
            return Ok(DecodeOutcome::Uncorrectable);
        };
        let mut message_bit_errors = 0;
        for &u in &positions {
            if u < self.k_bits {
                message[u / 8] ^= 1 << (7 - u % 8);
                message_bit_errors += 1;
            } else {
                let v = u - self.k_bits;
                parity[v / 8] ^= 1 << (7 - v % 8);
            }
        }
        Ok(DecodeOutcome::Corrected {
            bit_errors: positions.len(),
            message_bit_errors,
            positions,
        })
    }

    fn check_message(&self, message: &[u8]) -> Result<(), BchError> {
        if message.len() != self.k_bits / 8 {
            return Err(BchError::BufferSize {
                what: "message",
                expected: self.k_bits / 8,
                actual: message.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for BchCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BchCode")
            .field("m", &self.field.degree())
            .field("t", &self.t)
            .field("k_bits", &self.k_bits)
            .field("r_bits", &self.r_bits)
            .field("kernel", &self.kernel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn code(m: u32, k_bytes: usize, t: u32) -> BchCode {
        let field = Arc::new(GfField::new(m).unwrap());
        BchCode::new(field, k_bytes * 8, t).unwrap()
    }

    fn flip(buf: &mut [u8], bitpos: usize) {
        buf[bitpos / 8] ^= 1 << (7 - bitpos % 8);
    }

    #[test]
    fn clean_round_trip() {
        let c = code(11, 64, 4);
        let msg = vec![0x3Cu8; 64];
        let mut parity = c.encode(&msg).unwrap();
        let mut recv = msg.clone();
        assert_eq!(
            c.decode(&mut recv, &mut parity).unwrap(),
            DecodeOutcome::Clean
        );
        assert_eq!(recv, msg);
    }

    #[test]
    fn corrects_exactly_t_errors() {
        let c = code(12, 128, 5);
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let msg: Vec<u8> = (0..128).map(|_| rng.random()).collect();
            let mut parity = c.encode(&msg).unwrap();
            let mut recv = msg.clone();
            // 5 distinct error positions across message + parity.
            let mut positions = std::collections::BTreeSet::new();
            while positions.len() < 5 {
                positions.insert(rng.random_range(0..c.codeword_bits()));
            }
            for &p in &positions {
                if p < c.message_bits() {
                    flip(&mut recv, p);
                } else {
                    flip(&mut parity, p - c.message_bits());
                }
            }
            let out = c.decode(&mut recv, &mut parity).unwrap();
            match out {
                DecodeOutcome::Corrected {
                    bit_errors,
                    positions: got,
                    ..
                } => {
                    assert_eq!(bit_errors, 5, "trial {trial}");
                    assert_eq!(got, positions.iter().copied().collect::<Vec<_>>());
                }
                other => panic!("trial {trial}: expected correction, got {other:?}"),
            }
            assert_eq!(recv, msg, "trial {trial}");
        }
    }

    #[test]
    fn parity_only_errors_do_not_touch_message() {
        let c = code(10, 32, 3);
        let msg = vec![0xF0u8; 32];
        let mut parity = c.encode(&msg).unwrap();
        let mut recv = msg.clone();
        flip(&mut parity, 0);
        flip(&mut parity, 7);
        let out = c.decode(&mut recv, &mut parity).unwrap();
        match out {
            DecodeOutcome::Corrected {
                bit_errors,
                message_bit_errors,
                ..
            } => {
                assert_eq!(bit_errors, 2);
                assert_eq!(message_bit_errors, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(recv, msg);
        // Corrected parity must re-validate.
        assert_eq!(
            c.decode(&mut recv, &mut parity).unwrap(),
            DecodeOutcome::Clean
        );
    }

    #[test]
    fn detects_more_than_t_errors_typical_pattern() {
        let c = code(12, 128, 3);
        let msg = vec![0u8; 128];
        let mut parity = c.encode(&msg).unwrap();
        let mut recv = msg.clone();
        // A burst of t+2 errors; for this pattern the decoder must not
        // silently pretend success with wrong data (it either detects or,
        // with tiny probability, miscorrects — assert what happens here
        // deterministically: detection).
        for p in [0usize, 9, 40, 77, 300] {
            flip(&mut recv, p);
        }
        let out = c.decode(&mut recv, &mut parity).unwrap();
        assert_eq!(out, DecodeOutcome::Uncorrectable);
        // Buffer untouched on detection.
        let mut expect = msg.clone();
        for p in [0usize, 9, 40, 77, 300] {
            flip(&mut expect, p);
        }
        assert_eq!(recv, expect);
    }

    #[test]
    fn rejects_wrong_buffer_sizes() {
        let c = code(10, 32, 2);
        let mut short = vec![0u8; 31];
        assert!(matches!(
            c.encode(&short),
            Err(BchError::BufferSize {
                what: "message",
                ..
            })
        ));
        let mut parity = vec![0u8; c.parity_bytes() + 1];
        assert!(matches!(
            c.decode(&mut short, &mut parity),
            Err(BchError::BufferSize { .. })
        ));
    }

    #[test]
    fn code_too_long_rejected() {
        let field = Arc::new(GfField::new(8).unwrap());
        // k = 248 bits + r(t=2) = 16 > 255.
        assert!(matches!(
            BchCode::new(field, 248, 2),
            Err(BchError::CodeTooLong { .. })
        ));
    }

    #[test]
    fn geometry_accessors() {
        let c = code(13, 512, 4);
        assert_eq!(c.message_bits(), 4096);
        assert_eq!(c.parity_bits(), 52);
        assert_eq!(c.parity_bytes(), 7);
        assert_eq!(c.codeword_bits(), 4148);
        assert_eq!(c.full_length(), 8191);
        assert_eq!(c.shortened_by(), 8191 - 4148);
        assert!(c.rate() > 0.98 && c.rate() < 1.0);
    }

    #[test]
    fn error_in_final_partial_parity_byte() {
        // r % 8 != 0 exercises the serial syndrome tail and bit mapping.
        let c = code(13, 64, 3); // r = 39 bits -> 5 bytes, 1 bit tail
        assert_eq!(c.parity_bits() % 8, 7);
        let msg = vec![0xAAu8; 64];
        let mut parity = c.encode(&msg).unwrap();
        let mut recv = msg.clone();
        let last = c.parity_bits() - 1; // final parity bit
        flip(&mut parity, last);
        let out = c.decode(&mut recv, &mut parity).unwrap();
        assert!(matches!(
            out,
            DecodeOutcome::Corrected { bit_errors: 1, .. }
        ));
        assert_eq!(
            c.decode(&mut recv, &mut parity).unwrap(),
            DecodeOutcome::Clean
        );
    }

    #[test]
    fn default_kernel_is_top_rung() {
        let c = code(11, 64, 4);
        assert_eq!(c.kernel(), CodecKernel::Fused);
        let field = Arc::new(GfField::new(11).unwrap());
        let r = BchCode::new_with_kernel(field, 64 * 8, 4, CodecKernel::Reference).unwrap();
        assert_eq!(r.kernel(), CodecKernel::Reference);
    }

    #[test]
    fn every_kernel_decodes_identically() {
        let field = Arc::new(GfField::new(12).unwrap());
        let codes: Vec<BchCode> = CodecKernel::RUNGS
            .iter()
            .map(|&k| BchCode::new_with_kernel(field.clone(), 96 * 8, 5, k).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..6 {
            let msg: Vec<u8> = (0..96).map(|_| rng.random()).collect();
            let parity0 = codes[0].encode(&msg).unwrap();
            // 0..=t+2 errors: clean, correctable and uncorrectable cases.
            let weight = trial;
            let mut positions = std::collections::BTreeSet::new();
            while positions.len() < weight {
                positions.insert(rng.random_range(0..codes[0].codeword_bits()));
            }
            let mut outcomes = Vec::new();
            for c in &codes {
                assert_eq!(
                    c.encode(&msg).unwrap(),
                    parity0,
                    "encode rung {}",
                    c.kernel()
                );
                let mut recv = msg.clone();
                let mut parity = parity0.clone();
                for &p in &positions {
                    if p < c.message_bits() {
                        flip(&mut recv, p);
                    } else {
                        flip(&mut parity, p - c.message_bits());
                    }
                }
                let out = c.decode(&mut recv, &mut parity).unwrap();
                outcomes.push((out, recv, parity));
            }
            for (o, r, p) in &outcomes[1..] {
                assert_eq!(o, &outcomes[0].0, "trial {trial}");
                assert_eq!(r, &outcomes[0].1, "trial {trial}");
                assert_eq!(p, &outcomes[0].2, "trial {trial}");
            }
        }
    }

    #[test]
    fn outcome_helpers() {
        assert!(DecodeOutcome::Clean.is_success());
        assert!(!DecodeOutcome::Uncorrectable.is_success());
        assert_eq!(DecodeOutcome::Clean.corrected_bits(), 0);
        let c = DecodeOutcome::Corrected {
            bit_errors: 3,
            message_bit_errors: 2,
            positions: vec![1, 2, 3],
        };
        assert!(c.is_success());
        assert_eq!(c.corrected_bits(), 3);
    }
}
