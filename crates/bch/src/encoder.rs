//! Systematic BCH encoding through a programmable parallel LFSR.
//!
//! The hardware described in the paper (after Chen et al. \[28\]) computes
//! parity as the remainder `m(x) * x^r mod g(x)` with an `r`-bit LFSR whose
//! feedback taps are selected by multiplexers from a generator-polynomial
//! ROM. The datapath consumes the message `p` bits per clock, so encode
//! latency is `k/p` cycles **independent of the selected `t`** — the
//! software model mirrors that with a table-driven parallel step whose
//! width is one rung of the codec kernel ladder:
//!
//! * [`EncodeLane::Bit`] — 1 bit/step (the rung-0 reference);
//! * [`EncodeLane::Byte`] — 8 bits/step via one 256-entry table;
//! * [`EncodeLane::Slice4`] — 32 bits/step via four position tables
//!   (slicing-by-4, after the CRC slicing technique);
//! * [`EncodeLane::Slice8`] — 64 bits/step via eight position tables.
//!
//! All lanes compute the identical remainder polynomial; a lane wider than
//! the register (`8*lanes > r`) is silently clamped down so narrow codes
//! stay correct.

use mlcx_gf2::Gf2Poly;

use crate::bitreg::BitReg;

/// Datapath width of the [`LfsrEncoder`] (bits folded per step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum EncodeLane {
    /// Bit-serial stepping (reference rung).
    Bit,
    /// One byte per step through a 256-entry table.
    #[default]
    Byte,
    /// Four bytes per step (slicing-by-4); requires `r >= 32`.
    Slice4,
    /// Eight bytes per step (slicing-by-8); requires `r >= 64`.
    Slice8,
}

impl EncodeLane {
    /// Bytes consumed per sliced step (0 for the serial lanes).
    fn slice_bytes(self) -> usize {
        match self {
            EncodeLane::Bit | EncodeLane::Byte => 0,
            EncodeLane::Slice4 => 4,
            EncodeLane::Slice8 => 8,
        }
    }

    /// The widest lane the register width `r` supports.
    fn widest_for(r_bits: usize) -> EncodeLane {
        if r_bits >= 64 {
            EncodeLane::Slice8
        } else if r_bits >= 32 {
            EncodeLane::Slice4
        } else if r_bits >= 8 {
            EncodeLane::Byte
        } else {
            EncodeLane::Bit
        }
    }
}

/// Parallel LFSR engine for one fixed generator polynomial.
///
/// `step_table[v]` holds `(v(x) * x^r) mod g(x)`: folding one message byte
/// into the remainder costs one table lookup plus one 8-bit shift — the
/// software analogue of the hardware's 8-bit-parallel LFSR network. The
/// sliced lanes extend this with per-byte-position tables
/// `slice_table[j][v] = (v(x) * x^(r + 8*(lanes-1-j))) mod g(x)` so one
/// step folds 4 or 8 message bytes with independent lookups.
#[derive(Debug, Clone)]
pub struct LfsrEncoder {
    r_bits: usize,
    words_per_entry: usize,
    lane: EncodeLane,
    /// Flattened 256-entry table; entry `v` occupies
    /// `step_table[v*words_per_entry .. (v+1)*words_per_entry]`. Built
    /// whenever `r >= 8` (the sliced lanes fall back to it for tail bytes).
    step_table: Vec<u64>,
    /// Flattened `slice_bytes x 256` position tables for the sliced lanes
    /// (empty otherwise); byte position `j`, entry `v` occupies
    /// `slice_table[(j*256 + v)*words_per_entry ..][..words_per_entry]`.
    slice_table: Vec<u64>,
    /// Low `r` bits of the generator (g without the x^r term), for the
    /// bit-serial lane.
    feedback: Vec<u64>,
}

impl LfsrEncoder {
    /// Builds the engine for generator polynomial `g` (degree = parity
    /// bits) with the default byte-parallel lane.
    ///
    /// # Panics
    ///
    /// Panics if `g` is constant (degree < 1).
    pub fn new(generator: &Gf2Poly) -> Self {
        Self::with_lane(generator, EncodeLane::Byte)
    }

    /// Builds the engine with an explicit datapath lane. Lanes wider than
    /// the register allows are clamped down (the result is bit-identical
    /// either way).
    ///
    /// # Panics
    ///
    /// Panics if `g` is constant (degree < 1).
    pub fn with_lane(generator: &Gf2Poly, lane: EncodeLane) -> Self {
        let r_bits = generator
            .degree()
            .filter(|&d| d >= 1)
            .expect("generator polynomial must have degree >= 1");
        let lane = lane.min(EncodeLane::widest_for(r_bits));
        let words_per_entry = r_bits.div_ceil(64).max(1);
        let fill = |table: &mut [u64], v: u64, idx: usize, shift: usize| {
            let rem = Gf2Poly::from_int(v).shl(shift).rem(generator);
            let dst = &mut table[idx * words_per_entry..(idx + 1) * words_per_entry];
            for (i, w) in rem.as_words().iter().enumerate() {
                dst[i] = *w;
            }
        };
        let mut step_table = Vec::new();
        if r_bits >= 8 {
            step_table = vec![0u64; 256 * words_per_entry];
            for v in 0u64..256 {
                fill(&mut step_table, v, v as usize, r_bits);
            }
        }
        let lanes = lane.slice_bytes();
        let mut slice_table = Vec::new();
        if lanes > 0 {
            slice_table = vec![0u64; lanes * 256 * words_per_entry];
            for j in 0..lanes {
                let shift = r_bits + 8 * (lanes - 1 - j);
                for v in 0u64..256 {
                    fill(&mut slice_table, v, j * 256 + v as usize, shift);
                }
            }
        }
        let mut fb = generator.clone();
        fb.set_coeff(r_bits, false);
        let mut feedback = vec![0u64; words_per_entry];
        for (i, w) in fb.as_words().iter().enumerate() {
            feedback[i] = *w;
        }
        LfsrEncoder {
            r_bits,
            words_per_entry,
            lane,
            step_table,
            slice_table,
            feedback,
        }
    }

    /// The effective datapath lane (after clamping to the register width).
    pub fn lane(&self) -> EncodeLane {
        self.lane
    }

    /// Number of parity bits `r` (the generator degree).
    pub fn parity_bits(&self) -> usize {
        self.r_bits
    }

    /// Number of bytes needed to store the parity (`ceil(r/8)`).
    pub fn parity_bytes(&self) -> usize {
        self.r_bits.div_ceil(8)
    }

    /// Computes `m(x) * x^r mod g(x)` for a byte-aligned message.
    ///
    /// Message bit 0 (byte 0, MSB) is the coefficient of `x^(k-1)`.
    /// Returns the remainder as parity bytes, MSB-first (parity byte 0 bit 7
    /// is the coefficient of `x^(r-1)`); when `r` is not a multiple of 8 the
    /// low bits of the last byte are zero padding.
    pub fn remainder(&self, message: &[u8]) -> Vec<u8> {
        let mut state = BitReg::zero(self.r_bits);
        self.fold_bytes(&mut state, message);
        self.emit(&state)
    }

    /// Folds additional parity bytes into a running remainder — used by the
    /// decoder's zero-syndrome shortcut, where the full received codeword
    /// (message then parity) must reduce to zero mod `g`.
    ///
    /// Returns `true` when the received codeword is a valid codeword.
    pub fn codeword_is_valid(&self, message: &[u8], parity: &[u8]) -> bool {
        self.codeword_state(message, parity).is_zero()
    }

    /// The LFSR state after folding the whole received codeword:
    /// `received(x) * x^r mod g(x)`. Zero iff the codeword is valid; the
    /// fused decode rung derives all `2t` syndromes from this one state
    /// (`S_i = state(beta_i) * beta_i^(-r)`).
    pub(crate) fn codeword_state(&self, message: &[u8], parity: &[u8]) -> BitReg {
        let mut state = BitReg::zero(self.r_bits);
        self.fold_bytes(&mut state, message);
        let full = self.r_bits / 8;
        self.fold_bytes(&mut state, &parity[..full]);
        for j in 0..self.r_bits % 8 {
            self.step_bit(&mut state, parity[full] >> (7 - j) & 1 == 1);
        }
        state
    }

    /// Serializes an LFSR state in the parity-byte layout (MSB-first).
    pub(crate) fn state_bytes(&self, state: &BitReg) -> Vec<u8> {
        self.emit(state)
    }

    fn fold_bytes(&self, state: &mut BitReg, bytes: &[u8]) {
        let lanes = self.lane.slice_bytes();
        let tail = match self.lane {
            EncodeLane::Bit => bytes,
            EncodeLane::Byte => {
                for &byte in bytes {
                    self.step_byte(state, byte);
                }
                return;
            }
            EncodeLane::Slice4 | EncodeLane::Slice8 => {
                let mut chunks = bytes.chunks_exact(lanes);
                for chunk in &mut chunks {
                    self.step_slice(state, chunk);
                }
                for &byte in chunks.remainder() {
                    self.step_byte(state, byte);
                }
                return;
            }
        };
        for &byte in tail {
            for j in (0..8).rev() {
                self.step_bit(state, byte >> j & 1 == 1);
            }
        }
    }

    fn step_byte(&self, state: &mut BitReg, byte: u8) {
        let v = (state.top8() ^ byte) as usize;
        state.shl8();
        state.xor(&self.step_table[v * self.words_per_entry..(v + 1) * self.words_per_entry]);
    }

    fn step_slice(&self, state: &mut BitReg, chunk: &[u8]) {
        let lanes = chunk.len();
        let top = state.top_bits(8 * lanes);
        state.shln(8 * lanes);
        for (j, &byte) in chunk.iter().enumerate() {
            let v = ((top >> (8 * (lanes - 1 - j))) as u8 ^ byte) as usize;
            let base = (j * 256 + v) * self.words_per_entry;
            state.xor(&self.slice_table[base..base + self.words_per_entry]);
        }
    }

    fn step_bit(&self, state: &mut BitReg, bit: bool) {
        let fb = state.bit(self.r_bits - 1) ^ bit;
        state.shl1();
        if fb {
            state.xor(&self.feedback);
            // x^r term of g folds back as the low taps; bit 0 toggles too
            // because g always has a nonzero constant term for BCH codes.
        }
    }

    fn emit(&self, state: &BitReg) -> Vec<u8> {
        let mut out = vec![0u8; self.parity_bytes()];
        for v in 0..self.r_bits {
            if state.bit(self.r_bits - 1 - v) {
                out[v / 8] |= 1 << (7 - v % 8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_gf2::{minpoly::generator_poly, GfField};

    /// Reference remainder via polynomial arithmetic.
    fn reference_remainder(message: &[u8], g: &Gf2Poly) -> Vec<u8> {
        let r = g.degree().unwrap();
        let k = message.len() * 8;
        let mut m = Gf2Poly::zero();
        for (u, &byte) in message.iter().enumerate() {
            for j in 0..8 {
                if byte >> (7 - j) & 1 == 1 {
                    m.set_coeff(k - 1 - (u * 8 + j), true);
                }
            }
        }
        let rem = m.shl(r).rem(g);
        let mut out = vec![0u8; r.div_ceil(8)];
        for v in 0..r {
            if rem.coeff(r - 1 - v) {
                out[v / 8] |= 1 << (7 - v % 8);
            }
        }
        out
    }

    #[test]
    fn matches_polynomial_reference_gf16() {
        let f = GfField::new(4).unwrap();
        let g = generator_poly(&f, 1); // x^4 + x + 1, r = 4 < 8: bit-serial
        let enc = LfsrEncoder::new(&g);
        assert_eq!(enc.lane(), EncodeLane::Bit);
        let msg = [0b1011_0010u8];
        assert_eq!(enc.remainder(&msg), reference_remainder(&msg, &g));
    }

    #[test]
    fn matches_polynomial_reference_gf256() {
        let f = GfField::new(8).unwrap();
        for t in [1u32, 2, 3, 5] {
            let g = generator_poly(&f, t);
            let enc = LfsrEncoder::new(&g);
            let msg: Vec<u8> = (0..24).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(
                enc.remainder(&msg),
                reference_remainder(&msg, &g),
                "t = {t}"
            );
        }
    }

    #[test]
    fn every_lane_matches_the_polynomial_reference() {
        // r = 13*6 = 78 supports Slice8; message lengths exercise the
        // chunk remainders of both sliced lanes.
        let f = GfField::new(13).unwrap();
        let g = generator_poly(&f, 6);
        for lane in [
            EncodeLane::Bit,
            EncodeLane::Byte,
            EncodeLane::Slice4,
            EncodeLane::Slice8,
        ] {
            let enc = LfsrEncoder::with_lane(&g, lane);
            assert_eq!(enc.lane(), lane);
            for len in [1usize, 3, 4, 7, 8, 9, 16, 33, 64] {
                let msg: Vec<u8> = (0..len).map(|i| (i * 151 + 29) as u8).collect();
                assert_eq!(
                    enc.remainder(&msg),
                    reference_remainder(&msg, &g),
                    "lane {lane:?}, len {len}"
                );
            }
        }
    }

    #[test]
    fn wide_lanes_clamp_to_register_width() {
        let f = GfField::new(10).unwrap();
        let g = generator_poly(&f, 3); // r = 30 < 32
        let enc = LfsrEncoder::with_lane(&g, EncodeLane::Slice8);
        assert_eq!(enc.lane(), EncodeLane::Byte);
        let g2 = generator_poly(&f, 5); // r = 50: Slice4 fits, Slice8 not
        let enc2 = LfsrEncoder::with_lane(&g2, EncodeLane::Slice8);
        assert_eq!(enc2.lane(), EncodeLane::Slice4);
    }

    #[test]
    fn zero_message_zero_parity() {
        let f = GfField::new(10).unwrap();
        let g = generator_poly(&f, 4);
        let enc = LfsrEncoder::new(&g);
        let parity = enc.remainder(&[0u8; 64]);
        assert!(parity.iter().all(|&b| b == 0));
    }

    #[test]
    fn encoder_is_linear() {
        let f = GfField::new(9).unwrap();
        let g = generator_poly(&f, 3);
        let enc = LfsrEncoder::new(&g);
        let a: Vec<u8> = (0..32).map(|i| (i * 13 + 7) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| (i * 29 + 3) as u8).collect();
        let sum: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pa = enc.remainder(&a);
        let pb = enc.remainder(&b);
        let psum = enc.remainder(&sum);
        let xored: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
        assert_eq!(psum, xored);
    }

    #[test]
    fn systematic_codeword_validates_in_every_lane() {
        let f = GfField::new(11).unwrap();
        let g = generator_poly(&f, 6);
        let msg: Vec<u8> = (0..100).map(|i| (i * 101 + 55) as u8).collect();
        for lane in [
            EncodeLane::Bit,
            EncodeLane::Byte,
            EncodeLane::Slice4,
            EncodeLane::Slice8,
        ] {
            let enc = LfsrEncoder::with_lane(&g, lane);
            let parity = enc.remainder(&msg);
            assert!(enc.codeword_is_valid(&msg, &parity), "lane {lane:?}");
            // Any single flipped bit must invalidate it.
            let mut bad = msg.clone();
            bad[50] ^= 0x08;
            assert!(!enc.codeword_is_valid(&bad, &parity), "lane {lane:?}");
        }
    }

    #[test]
    fn codeword_state_is_lane_invariant() {
        let f = GfField::new(13).unwrap();
        let g = generator_poly(&f, 8);
        let msg: Vec<u8> = (0..64).map(|i| (i * 73 + 5) as u8).collect();
        let reference = LfsrEncoder::with_lane(&g, EncodeLane::Bit);
        let mut parity = reference.remainder(&msg);
        parity[2] ^= 0x10; // corrupt so the state is nonzero
        let expect = reference.state_bytes(&reference.codeword_state(&msg, &parity));
        for lane in [EncodeLane::Byte, EncodeLane::Slice4, EncodeLane::Slice8] {
            let enc = LfsrEncoder::with_lane(&g, lane);
            let got = enc.state_bytes(&enc.codeword_state(&msg, &parity));
            assert_eq!(got, expect, "lane {lane:?}");
        }
    }

    #[test]
    fn parity_sizes() {
        let f = GfField::new(13).unwrap();
        let g = generator_poly(&f, 2);
        let enc = LfsrEncoder::new(&g);
        assert_eq!(enc.parity_bits(), 26);
        assert_eq!(enc.parity_bytes(), 4);
    }
}
