//! Systematic BCH encoding through a programmable parallel LFSR.
//!
//! The hardware described in the paper (after Chen et al. \[28\]) computes
//! parity as the remainder `m(x) * x^r mod g(x)` with an `r`-bit LFSR whose
//! feedback taps are selected by multiplexers from a generator-polynomial
//! ROM. The datapath consumes the message `p` bits per clock, so encode
//! latency is `k/p` cycles **independent of the selected `t`** — the
//! software model mirrors that with a byte-parallel (p = 8) table step.

use mlcx_gf2::Gf2Poly;

use crate::bitreg::BitReg;

/// Byte-parallel LFSR engine for one fixed generator polynomial.
///
/// `step_table[v]` holds `(v(x) * x^r) mod g(x)`: folding one message byte
/// into the remainder costs one table lookup plus one 8-bit shift — the
/// software analogue of the hardware's 8-bit-parallel LFSR network.
#[derive(Debug, Clone)]
pub struct LfsrEncoder {
    r_bits: usize,
    words_per_entry: usize,
    /// Flattened 256-entry table; entry `v` occupies
    /// `step_table[v*words_per_entry .. (v+1)*words_per_entry]`.
    step_table: Vec<u64>,
    /// Low `r` bits of the generator (g without the x^r term), for the
    /// bit-serial fallback used when `r < 8`.
    feedback: Vec<u64>,
}

impl LfsrEncoder {
    /// Builds the engine for generator polynomial `g` (degree = parity bits).
    ///
    /// # Panics
    ///
    /// Panics if `g` is constant (degree < 1).
    pub fn new(generator: &Gf2Poly) -> Self {
        let r_bits = generator
            .degree()
            .filter(|&d| d >= 1)
            .expect("generator polynomial must have degree >= 1");
        let words_per_entry = r_bits.div_ceil(64).max(1);
        let mut step_table = vec![0u64; 256 * words_per_entry];
        if r_bits >= 8 {
            for v in 0u64..256 {
                let rem = Gf2Poly::from_int(v).shl(r_bits).rem(generator);
                let dst = &mut step_table
                    [(v as usize) * words_per_entry..(v as usize + 1) * words_per_entry];
                for (i, w) in rem.as_words().iter().enumerate() {
                    dst[i] = *w;
                }
            }
        }
        let mut fb = generator.clone();
        fb.set_coeff(r_bits, false);
        let mut feedback = vec![0u64; words_per_entry];
        for (i, w) in fb.as_words().iter().enumerate() {
            feedback[i] = *w;
        }
        LfsrEncoder {
            r_bits,
            words_per_entry,
            step_table,
            feedback,
        }
    }

    /// Number of parity bits `r` (the generator degree).
    pub fn parity_bits(&self) -> usize {
        self.r_bits
    }

    /// Number of bytes needed to store the parity (`ceil(r/8)`).
    pub fn parity_bytes(&self) -> usize {
        self.r_bits.div_ceil(8)
    }

    /// Computes `m(x) * x^r mod g(x)` for a byte-aligned message.
    ///
    /// Message bit 0 (byte 0, MSB) is the coefficient of `x^(k-1)`.
    /// Returns the remainder as parity bytes, MSB-first (parity byte 0 bit 7
    /// is the coefficient of `x^(r-1)`); when `r` is not a multiple of 8 the
    /// low bits of the last byte are zero padding.
    pub fn remainder(&self, message: &[u8]) -> Vec<u8> {
        let mut state = BitReg::zero(self.r_bits);
        if self.r_bits >= 8 {
            for &byte in message {
                self.step_byte(&mut state, byte);
            }
        } else {
            for &byte in message {
                for j in (0..8).rev() {
                    self.step_bit(&mut state, byte >> j & 1 == 1);
                }
            }
        }
        self.emit(&state)
    }

    /// Folds additional parity bytes into a running remainder — used by the
    /// decoder's zero-syndrome shortcut, where the full received codeword
    /// (message then parity) must reduce to zero mod `g`.
    ///
    /// Returns `true` when the received codeword is a valid codeword.
    pub fn codeword_is_valid(&self, message: &[u8], parity: &[u8]) -> bool {
        let mut state = BitReg::zero(self.r_bits);
        let mut process = |bytes: &[u8], nbits: usize| {
            let full = nbits / 8;
            for &byte in &bytes[..full] {
                if self.r_bits >= 8 {
                    self.step_byte(&mut state, byte);
                } else {
                    for j in (0..8).rev() {
                        self.step_bit(&mut state, byte >> j & 1 == 1);
                    }
                }
            }
            for j in 0..nbits % 8 {
                self.step_bit(&mut state, bytes[full] >> (7 - j) & 1 == 1);
            }
        };
        process(message, message.len() * 8);
        process(parity, self.r_bits);
        state.is_zero()
    }

    fn step_byte(&self, state: &mut BitReg, byte: u8) {
        let v = (state.top8() ^ byte) as usize;
        state.shl8();
        state.xor(&self.step_table[v * self.words_per_entry..(v + 1) * self.words_per_entry]);
    }

    fn step_bit(&self, state: &mut BitReg, bit: bool) {
        let fb = state.bit(self.r_bits - 1) ^ bit;
        state.shl1();
        if fb {
            state.xor(&self.feedback);
            // x^r term of g folds back as the low taps; bit 0 toggles too
            // because g always has a nonzero constant term for BCH codes.
        }
    }

    fn emit(&self, state: &BitReg) -> Vec<u8> {
        let mut out = vec![0u8; self.parity_bytes()];
        for v in 0..self.r_bits {
            if state.bit(self.r_bits - 1 - v) {
                out[v / 8] |= 1 << (7 - v % 8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_gf2::{minpoly::generator_poly, GfField};

    /// Reference remainder via polynomial arithmetic.
    fn reference_remainder(message: &[u8], g: &Gf2Poly) -> Vec<u8> {
        let r = g.degree().unwrap();
        let k = message.len() * 8;
        let mut m = Gf2Poly::zero();
        for (u, &byte) in message.iter().enumerate() {
            for j in 0..8 {
                if byte >> (7 - j) & 1 == 1 {
                    m.set_coeff(k - 1 - (u * 8 + j), true);
                }
            }
        }
        let rem = m.shl(r).rem(g);
        let mut out = vec![0u8; r.div_ceil(8)];
        for v in 0..r {
            if rem.coeff(r - 1 - v) {
                out[v / 8] |= 1 << (7 - v % 8);
            }
        }
        out
    }

    #[test]
    fn matches_polynomial_reference_gf16() {
        let f = GfField::new(4).unwrap();
        let g = generator_poly(&f, 1); // x^4 + x + 1, r = 4 < 8: bit-serial
        let enc = LfsrEncoder::new(&g);
        let msg = [0b1011_0010u8];
        assert_eq!(enc.remainder(&msg), reference_remainder(&msg, &g));
    }

    #[test]
    fn matches_polynomial_reference_gf256() {
        let f = GfField::new(8).unwrap();
        for t in [1u32, 2, 3, 5] {
            let g = generator_poly(&f, t);
            let enc = LfsrEncoder::new(&g);
            let msg: Vec<u8> = (0..24).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(
                enc.remainder(&msg),
                reference_remainder(&msg, &g),
                "t = {t}"
            );
        }
    }

    #[test]
    fn zero_message_zero_parity() {
        let f = GfField::new(10).unwrap();
        let g = generator_poly(&f, 4);
        let enc = LfsrEncoder::new(&g);
        let parity = enc.remainder(&[0u8; 64]);
        assert!(parity.iter().all(|&b| b == 0));
    }

    #[test]
    fn encoder_is_linear() {
        let f = GfField::new(9).unwrap();
        let g = generator_poly(&f, 3);
        let enc = LfsrEncoder::new(&g);
        let a: Vec<u8> = (0..32).map(|i| (i * 13 + 7) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| (i * 29 + 3) as u8).collect();
        let sum: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let pa = enc.remainder(&a);
        let pb = enc.remainder(&b);
        let psum = enc.remainder(&sum);
        let xored: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
        assert_eq!(psum, xored);
    }

    #[test]
    fn systematic_codeword_validates() {
        let f = GfField::new(11).unwrap();
        let g = generator_poly(&f, 6);
        let enc = LfsrEncoder::new(&g);
        let msg: Vec<u8> = (0..100).map(|i| (i * 101 + 55) as u8).collect();
        let parity = enc.remainder(&msg);
        assert!(enc.codeword_is_valid(&msg, &parity));
        // Any single flipped bit must invalidate it.
        let mut bad = msg.clone();
        bad[50] ^= 0x08;
        assert!(!enc.codeword_is_valid(&bad, &parity));
    }

    #[test]
    fn parity_sizes() {
        let f = GfField::new(13).unwrap();
        let g = generator_poly(&f, 2);
        let enc = LfsrEncoder::new(&g);
        assert_eq!(enc.parity_bits(), 26);
        assert_eq!(enc.parity_bytes(), 4);
    }
}
