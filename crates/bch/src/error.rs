//! Error type for the BCH codec.

use std::error::Error;
use std::fmt;

use mlcx_gf2::GfError;

/// Errors raised by BCH code construction and the encode/decode paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BchError {
    /// The underlying field could not be built.
    Field(GfError),
    /// The message length must be a whole number of bytes.
    MessageNotByteAligned {
        /// Requested message length in bits.
        k_bits: usize,
    },
    /// `k + r` exceeds the full code length `2^m - 1`.
    CodeTooLong {
        /// Requested message length in bits.
        k_bits: usize,
        /// Parity bits required at the requested capability.
        r_bits: usize,
        /// The bound `2^m - 1`.
        n_full: usize,
    },
    /// Requested correction capability outside the configured range.
    CorrectionOutOfRange {
        /// Requested capability.
        t: u32,
        /// Minimum allowed.
        tmin: u32,
        /// Maximum allowed.
        tmax: u32,
    },
    /// Buffer passed to encode/decode has the wrong size.
    BufferSize {
        /// What the buffer holds ("message" or "parity").
        what: &'static str,
        /// Expected length in bytes.
        expected: usize,
        /// Actual length in bytes.
        actual: usize,
    },
}

impl fmt::Display for BchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BchError::Field(e) => write!(f, "field construction failed: {e}"),
            BchError::MessageNotByteAligned { k_bits } => {
                write!(f, "message length {k_bits} bits is not byte aligned")
            }
            BchError::CodeTooLong {
                k_bits,
                r_bits,
                n_full,
            } => write!(
                f,
                "codeword {k_bits}+{r_bits} bits exceeds the field bound {n_full}"
            ),
            BchError::CorrectionOutOfRange { t, tmin, tmax } => {
                write!(f, "correction capability t={t} outside {tmin}..={tmax}")
            }
            BchError::BufferSize {
                what,
                expected,
                actual,
            } => write!(f, "{what} buffer is {actual} bytes, expected {expected}"),
        }
    }
}

impl Error for BchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BchError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GfError> for BchError {
    fn from(e: GfError) -> Self {
        BchError::Field(e)
    }
}
