//! Cycle-level latency and power model of the adaptive BCH hardware.
//!
//! Reproduces the timing structure behind the paper's Fig. 8:
//!
//! * **Encoder** — a `p`-bit parallel LFSR consumes the message in `k/p`
//!   clocks (independent of `t`); shifting the `r = m*t` parity bits out
//!   adds `r/p` clocks, the only (weak) `t` dependence of encoding.
//! * **Syndrome** — `2t` parallel LFSRs process the `n`-bit codeword in
//!   `n/p` clocks, plus an alignment phase when the parity footprint does
//!   not fit the datapath parallelism.
//! * **Berlekamp-Massey** — the iBM machine iterates once per correctable
//!   error: `t` clocks.
//! * **Chien search** — the block owns `tmax x h` constant Galois
//!   multipliers ("t x h constant Galois multipliers" in the paper). At
//!   capability `t` they regroup into `tmax*h/t` parallel evaluators, so
//!   the `n`-position sweep costs `ceil(n*t / (tmax*h))` clocks. This is
//!   the dominant, strongly `t`-dependent decode term.
//!
//! At the paper's 80 MHz and `p = 8`, `h = 4`, `tmax = 65` this yields
//! decode latencies from ~56 us (t = 3) to ~160 us (t = 65), matching the
//! envelope of Fig. 8.

use std::fmt;

/// Breakdown of one decode in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCycles {
    /// Alignment pre-phase (parity not fitting the datapath width).
    pub alignment: u64,
    /// Syndrome computation.
    pub syndrome: u64,
    /// Berlekamp-Massey iterations.
    pub ibm: u64,
    /// Chien search sweep.
    pub chien: u64,
}

impl DecodeCycles {
    /// Total decode cycles.
    pub fn total(&self) -> u64 {
        self.alignment + self.syndrome + self.ibm + self.chien
    }
}

/// Parameters of the synthesized ECC hardware.
///
/// # Example
///
/// ```
/// use mlcx_bch::hardware::EccHardware;
///
/// let hw = EccHardware::date2012();
/// let k = 4096 * 8;
/// let n65 = k + 16 * 65;
/// let n3 = k + 16 * 3;
/// // Fig. 8 envelope: decode spans ~56..160 us over the t range.
/// assert!(hw.decode_latency_s(n65, 65) > 150e-6);
/// assert!(hw.decode_latency_s(n3, 3) < 60e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccHardware {
    /// Operating clock in Hz (the paper assumes 80 MHz).
    pub clock_hz: f64,
    /// Datapath parallelism `p` in bits per clock (encoder + syndrome).
    pub datapath_bits: u32,
    /// Chien basis parallelism `h` (evaluations per clock at `t = tmax`).
    pub chien_parallelism: u32,
    /// Maximum correction capability the multiplier pool is sized for.
    pub tmax: u32,
}

impl EccHardware {
    /// The configuration used throughout the paper's evaluation.
    pub fn date2012() -> Self {
        EccHardware {
            clock_hz: 80.0e6,
            datapath_bits: 8,
            chien_parallelism: 4,
            tmax: 65,
        }
    }

    /// Encode cycles for a `k`-bit message producing `r` parity bits.
    pub fn encode_cycles(&self, k_bits: usize, r_bits: usize) -> u64 {
        let p = self.datapath_bits as u64;
        (k_bits as u64).div_ceil(p) + (r_bits as u64).div_ceil(p)
    }

    /// Encode latency in seconds.
    pub fn encode_latency_s(&self, k_bits: usize, r_bits: usize) -> f64 {
        self.encode_cycles(k_bits, r_bits) as f64 / self.clock_hz
    }

    /// Decode cycle breakdown for an `n`-bit codeword at capability `t`.
    pub fn decode_cycles(&self, n_bits: usize, t: u32) -> DecodeCycles {
        let p = self.datapath_bits as u64;
        let n = n_bits as u64;
        // Parity alignment phase: one datapath word per misaligned bit.
        let alignment = (p - n % p) % p;
        let syndrome = n.div_ceil(p);
        let ibm = t as u64;
        let pool = (self.tmax * self.chien_parallelism) as u64;
        let chien = (n * t as u64).div_ceil(pool);
        DecodeCycles {
            alignment,
            syndrome,
            ibm,
            chien,
        }
    }

    /// Decode latency in seconds.
    pub fn decode_latency_s(&self, n_bits: usize, t: u32) -> f64 {
        self.decode_cycles(n_bits, t).total() as f64 / self.clock_hz
    }
}

impl Default for EccHardware {
    fn default() -> Self {
        Self::date2012()
    }
}

/// Power drawn by the ECC sub-system as a function of capability.
///
/// Calibrated to the paper's Section 6.3.2: 7 mW at the worst-case
/// configuration (`t = 65`) relaxing to 1 mW at the ISPP-DV end-of-life
/// requirement (`t = 14`). A single power-law captures both anchor points:
/// `P(t) = P_max * (t / tmax)^gamma` with `gamma = ln7 / ln(65/14)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccPowerModel {
    /// Power at `t = t_ref`, in watts.
    pub max_power_w: f64,
    /// Reference capability (the paper's `tmax`).
    pub t_ref: f64,
    /// Power-law exponent.
    pub exponent: f64,
}

impl EccPowerModel {
    /// The paper's calibration (7 mW @ t=65, 1 mW @ t=14).
    pub fn date2012() -> Self {
        let exponent = (7.0f64).ln() / (65.0f64 / 14.0).ln();
        EccPowerModel {
            max_power_w: 7.0e-3,
            t_ref: 65.0,
            exponent,
        }
    }

    /// ECC power at capability `t`, in watts.
    pub fn power_w(&self, t: u32) -> f64 {
        self.max_power_w * (t as f64 / self.t_ref).powf(self.exponent)
    }
}

impl Default for EccPowerModel {
    fn default() -> Self {
        Self::date2012()
    }
}

impl fmt::Display for EccPowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P(t) = {:.1} mW * (t/{:.0})^{:.3}",
            self.max_power_w * 1e3,
            self.t_ref,
            self.exponent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: usize = 4096 * 8;

    fn n(t: u32) -> usize {
        K + 16 * t as usize
    }

    #[test]
    fn encode_latency_nearly_t_independent() {
        let hw = EccHardware::date2012();
        let e3 = hw.encode_latency_s(K, 16 * 3);
        let e65 = hw.encode_latency_s(K, 16 * 65);
        // Paper: "encoding latency is not influenced by the selected
        // correction capability" (modulo the parity shift-out).
        assert!((e65 - e3) / e3 < 0.05, "e3={e3} e65={e65}");
        // Both near k/p / 80 MHz ~ 51 us.
        assert!(e3 > 45e-6 && e65 < 60e-6);
    }

    #[test]
    fn decode_latency_matches_fig8_envelope() {
        let hw = EccHardware::date2012();
        let d3 = hw.decode_latency_s(n(3), 3);
        let d14 = hw.decode_latency_s(n(14), 14);
        let d65 = hw.decode_latency_s(n(65), 65);
        assert!(d3 < d14 && d14 < d65);
        // Fig. 8: worst case ~160 us; paper text: decoding ~150 us.
        assert!((150e-6..170e-6).contains(&d65), "d65 = {d65}");
        // ISPP-DV end-of-life (t = 14) stays below ~80 us.
        assert!(d14 < 80e-6, "d14 = {d14}");
        assert!(d3 < 60e-6, "d3 = {d3}");
    }

    #[test]
    fn decode_cycles_breakdown_consistent() {
        let hw = EccHardware::date2012();
        let c = hw.decode_cycles(n(65), 65);
        assert_eq!(c.total(), c.alignment + c.syndrome + c.ibm + c.chien);
        // Chien dominates at large t.
        assert!(c.chien > c.syndrome);
        // At t = 3 the syndrome dominates instead.
        let c3 = hw.decode_cycles(n(3), 3);
        assert!(c3.syndrome > c3.chien);
    }

    #[test]
    fn chien_pool_scaling_is_linear_in_t() {
        let hw = EccHardware::date2012();
        let c10 = hw.decode_cycles(n(10), 10).chien as f64;
        let c20 = hw.decode_cycles(n(20), 20).chien as f64;
        let ratio = c20 / c10;
        assert!((1.9..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn power_model_hits_paper_anchors() {
        let p = EccPowerModel::date2012();
        assert!((p.power_w(65) - 7.0e-3).abs() < 1e-6);
        assert!((p.power_w(14) - 1.0e-3).abs() < 0.1e-3);
        // Monotone in t.
        assert!(p.power_w(30) > p.power_w(14));
        assert!(!p.to_string().is_empty());
    }
}
