//! Codec kernel ladder: progressively wider datapaths for the BCH codec.
//!
//! Every rung computes the *same* function — systematic encode and
//! bounded-distance decode are defined by field arithmetic, and each rung
//! only reorganizes that arithmetic into wider word-parallel steps. The
//! differential harness in `tests/codec_kernels.rs` pins every rung
//! bit-identical to [`CodecKernel::Reference`].
//!
//! | rung | kernel      | encoder            | syndromes              | Chien search       |
//! |------|-------------|--------------------|------------------------|--------------------|
//! | 0    | `Reference` | bit-serial LFSR    | bit-serial Horner      | linear stepping    |
//! | 1    | `Byte`      | 256-entry table    | byte-table Horner      | linear stepping    |
//! | 2    | `Word`      | slicing-by-4       | dual-byte (16-bit) fold| log-stride         |
//! | 3    | `Fused`     | slicing-by-8       | single-pass remainder  | log-stride + deg-1 |
//!
//! Rung 3 fuses the validity shortcut and syndrome computation into one
//! LFSR pass over the codeword: the `r`-bit remainder `state` satisfies
//! `S_i = state(beta_i) * beta_i^(-r)` for every designed root `beta_i`,
//! so the `2t` full-codeword Horner passes collapse into `2t` evaluations
//! of an `r`-bit polynomial.

/// Selects which rung of the codec kernel ladder a [`crate::BchCode`]
/// instance uses.
///
/// The default is [`CodecKernel::Auto`], which resolves to the top rung.
/// All rungs produce bit-identical parity, corrections, outcomes and
/// statistics — the knob only trades construction-time table footprint
/// against per-page throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKernel {
    /// Rung 0: bit-serial everything. The differential-testing oracle.
    Reference,
    /// Rung 1: byte-parallel tables (the original seed datapath).
    Byte,
    /// Rung 2: word-sliced encoder, dual-byte syndrome folds, log-stride
    /// Chien stepping.
    Word,
    /// Rung 3: slicing-by-8 encoder, fused single-pass syndrome-via-
    /// remainder decode, direct solve for single-error locators.
    Fused,
    /// Resolves to the fastest rung ([`CodecKernel::Fused`]).
    #[default]
    Auto,
}

impl CodecKernel {
    /// Every selectable variant, including [`CodecKernel::Auto`].
    pub const ALL: [CodecKernel; 5] = [
        CodecKernel::Reference,
        CodecKernel::Byte,
        CodecKernel::Word,
        CodecKernel::Fused,
        CodecKernel::Auto,
    ];

    /// The concrete rungs of the ladder, slowest first.
    pub const RUNGS: [CodecKernel; 4] = [
        CodecKernel::Reference,
        CodecKernel::Byte,
        CodecKernel::Word,
        CodecKernel::Fused,
    ];

    /// Resolves [`CodecKernel::Auto`] to its concrete rung.
    pub fn resolve(self) -> CodecKernel {
        match self {
            CodecKernel::Auto => CodecKernel::Fused,
            concrete => concrete,
        }
    }

    /// Position on the ladder (0 = reference), after resolving `Auto`.
    pub fn rung(self) -> usize {
        match self.resolve() {
            CodecKernel::Reference => 0,
            CodecKernel::Byte => 1,
            CodecKernel::Word => 2,
            CodecKernel::Fused => 3,
            CodecKernel::Auto => unreachable!("resolve() removes Auto"),
        }
    }

    /// Short stable name for bench records and logs.
    pub fn name(self) -> &'static str {
        match self {
            CodecKernel::Reference => "reference",
            CodecKernel::Byte => "byte",
            CodecKernel::Word => "word",
            CodecKernel::Fused => "fused",
            CodecKernel::Auto => "auto",
        }
    }

    /// The matching [`mlcx_gf2::MulKernel`] rung for GF(2)\[x\] products at
    /// the same optimization level (used when benching the substrate
    /// ladder next to the codec ladder).
    pub fn mul_kernel(self) -> mlcx_gf2::MulKernel {
        match self.resolve() {
            CodecKernel::Reference => mlcx_gf2::MulKernel::Reference,
            CodecKernel::Byte => mlcx_gf2::MulKernel::Word,
            CodecKernel::Word => mlcx_gf2::MulKernel::Windowed,
            CodecKernel::Fused | CodecKernel::Auto => mlcx_gf2::MulKernel::best(),
        }
    }
}

impl std::fmt::Display for CodecKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CodecKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(CodecKernel::Reference),
            "byte" => Ok(CodecKernel::Byte),
            "word" => Ok(CodecKernel::Word),
            "fused" => Ok(CodecKernel::Fused),
            "auto" => Ok(CodecKernel::Auto),
            other => Err(format!(
                "unknown codec kernel {other:?} (expected reference|byte|word|fused|auto)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_and_auto_resolves_to_top() {
        for (i, k) in CodecKernel::RUNGS.iter().enumerate() {
            assert_eq!(k.rung(), i);
            assert_eq!(k.resolve(), *k);
        }
        assert_eq!(CodecKernel::Auto.resolve(), CodecKernel::Fused);
        assert_eq!(CodecKernel::Auto.rung(), CodecKernel::Fused.rung());
        assert_eq!(CodecKernel::default(), CodecKernel::Auto);
    }

    #[test]
    fn names_round_trip() {
        for k in CodecKernel::ALL {
            assert_eq!(k.name().parse::<CodecKernel>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        assert!("simd".parse::<CodecKernel>().is_err());
    }

    #[test]
    fn mul_kernel_mapping_is_monotone() {
        let mut last = 0usize;
        for k in CodecKernel::RUNGS {
            let r = k.mul_kernel().rung();
            assert!(r >= last, "{k:?} maps below the previous rung");
            last = r;
        }
    }
}
