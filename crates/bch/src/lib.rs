//! Adaptive-rate BCH codec with a cycle-accurate hardware model.
//!
//! This crate implements the architecture-layer half of the DATE 2012
//! cross-layer paper: a Bose-Chaudhuri-Hocquenghem codec whose correction
//! capability `t` is **programmable at runtime** between 1 and `tmax`
//! (the paper instantiates `t = 3..=65` over GF(2^16) for a 4 KiB page).
//!
//! The functional pipeline mirrors the paper's Fig. 2:
//!
//! 1. **Encoder** ([`encoder`]) — systematic encoding through a parallel
//!    programmable LFSR whose taps come from a generator-polynomial ROM
//!    ([`mlcx_gf2::minpoly::GeneratorTable`]).
//! 2. **Syndrome block** ([`syndrome`]) — computes the `2t` syndromes; a
//!    zero remainder short-circuits the decode (error-free codeword).
//! 3. **Berlekamp-Massey** ([`berlekamp`]) — error-locator polynomial,
//!    `t` hardware iterations.
//! 4. **Chien search** ([`chien`]) — root search over the *shortened*
//!    position range, starting from the ROM-stored first element.
//!
//! Every pipeline stage exists at several datapath widths — the codec
//! kernel ladder ([`kernel`]): a bit-serial reference rung, the byte-table
//! rung, a word-sliced rung and a fused single-pass rung. All rungs are
//! bit-identical (differentially tested); [`CodecKernel`] selects one.
//!
//! On top of the functional codec, [`hardware`] provides the latency and
//! power model used to reproduce the paper's Fig. 8 (encode/decode latency
//! vs. memory lifetime at 80 MHz) and the 7 mW -> 1 mW ECC power relaxation
//! of Section 6.3.2.
//!
//! # Example
//!
//! ```
//! use mlcx_bch::{AdaptiveBch, DecodeOutcome};
//!
//! // A small adaptive codec over GF(2^13): 512-byte blocks, t up to 8.
//! let mut codec = AdaptiveBch::new(13, 512 * 8, 1, 8)?;
//! codec.set_correction(4)?;
//!
//! let mut message = vec![0xA5u8; 512];
//! let mut parity = codec.encode(&message)?;
//!
//! message[17] ^= 0x40; // inject a single-bit error
//! let outcome = codec.decode(&mut message, &mut parity)?;
//! assert!(matches!(outcome, DecodeOutcome::Corrected { bit_errors: 1, .. }));
//! assert_eq!(message[17], 0xA5);
//! # Ok::<(), mlcx_bch::BchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod bitreg;
mod code;
mod error;

pub mod berlekamp;
pub mod chien;
pub mod encoder;
pub mod hardware;
pub mod kernel;
pub mod syndrome;

pub use adaptive::{AdaptiveBch, CodecStats};
pub use code::{BchCode, DecodeOutcome};
pub use error::BchError;
pub use kernel::CodecKernel;
