//! Syndrome computation (first stage of the BCH decoding flow, Fig. 2).
//!
//! The hardware computes the `2t` syndromes by dividing the received
//! codeword by the `2t` factor polynomials of the generator and evaluating
//! the remainders in GF(2^m). The software model evaluates the received
//! polynomial directly at `alpha^1 .. alpha^2t` — numerically identical,
//! and it preserves the defining property the decoder relies on: *all
//! syndromes are zero iff the codeword is valid*. The Horner step width is
//! one rung of the codec kernel ladder:
//!
//! * [`SyndromeLane::Bit`] — definition-level bit-serial Horner
//!   (the rung-0 reference);
//! * [`SyndromeLane::Byte`] — one byte per fold via 256-entry tables;
//! * [`SyndromeLane::Dual`] — two bytes per fold (one field multiply per
//!   16 message bits, halving the multiply count).
//!
//! The top (fused) decode rung does not walk the codeword here at all: it
//! evaluates the `r`-bit LFSR remainder instead (see
//! [`SyndromeCalculator::unshift_factors`]).

use std::sync::Arc;

use mlcx_gf2::GfField;

/// Horner step width of the [`SyndromeCalculator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyndromeLane {
    /// Bit-serial evaluation straight from the definition.
    Bit,
    /// Byte-parallel table fold.
    #[default]
    Byte,
    /// Dual-byte (16-bit) table fold.
    Dual,
}

/// Parallel syndrome evaluator for syndromes `S_1 .. S_2t`.
#[derive(Debug, Clone)]
pub struct SyndromeCalculator {
    field: Arc<GfField>,
    two_t: usize,
    lane: SyndromeLane,
    /// `pow8[i]` = `alpha^(8*(i+1))`: the per-syndrome byte fold factor.
    pow8: Vec<u32>,
    /// `pow16[i]` = `alpha^(16*(i+1))`: the dual-byte fold factor.
    pow16: Vec<u32>,
    /// Flattened `two_t x 256` table: entry `[i][b]` is the contribution of
    /// message byte `b` to syndrome `i+1` before folding.
    tables: Vec<u32>,
    /// Dual lane only: `hi_tables[i][b] = beta_i^8 * tables[i][b]` — the
    /// contribution of the more significant byte of a 16-bit chunk.
    hi_tables: Vec<u32>,
}

impl SyndromeCalculator {
    /// Builds the evaluator for correction capability `t` with the default
    /// byte lane.
    pub fn new(field: Arc<GfField>, t: u32) -> Self {
        Self::with_lane(field, t, SyndromeLane::Byte)
    }

    /// Builds the evaluator with an explicit Horner lane.
    pub fn with_lane(field: Arc<GfField>, t: u32, lane: SyndromeLane) -> Self {
        let two_t = (2 * t) as usize;
        let mut pow8 = Vec::with_capacity(two_t);
        let mut pow16 = Vec::with_capacity(two_t);
        let mut tables = Vec::new();
        let mut hi_tables = Vec::new();
        if lane != SyndromeLane::Bit {
            tables = vec![0u32; two_t * 256];
        }
        if lane == SyndromeLane::Dual {
            hi_tables = vec![0u32; two_t * 256];
        }
        for i in 0..two_t {
            let beta = field.alpha_pow((i + 1) as i64);
            let beta8 = field.pow(beta, 8);
            pow8.push(beta8);
            pow16.push(field.pow(beta, 16));
            if lane == SyndromeLane::Bit {
                continue;
            }
            // Powers beta^0..beta^7 index the bit positions within a byte.
            let mut pows = [0u32; 8];
            for (bitpos, p) in pows.iter_mut().enumerate() {
                *p = field.pow(beta, bitpos as i64);
            }
            let base = i * 256;
            for b in 1usize..256 {
                let low = b.trailing_zeros() as usize;
                tables[base + b] = tables[base + (b & (b - 1))] ^ pows[low];
            }
            if lane == SyndromeLane::Dual {
                for b in 0usize..256 {
                    hi_tables[base + b] = field.mul(beta8, tables[base + b]);
                }
            }
        }
        SyndromeCalculator {
            field,
            two_t,
            lane,
            pow8,
            pow16,
            tables,
            hi_tables,
        }
    }

    /// Number of syndromes produced (`2t`).
    pub fn count(&self) -> usize {
        self.two_t
    }

    /// The Horner lane this evaluator runs.
    pub fn lane(&self) -> SyndromeLane {
        self.lane
    }

    /// Evaluates all syndromes of the received codeword.
    ///
    /// The codeword is the concatenation of `message` (fully used) and the
    /// top `parity_bits` bits of `parity` (MSB-first within each byte).
    /// Returns `S_1 .. S_2t`.
    pub fn compute(&self, message: &[u8], parity: &[u8], parity_bits: usize) -> Vec<u32> {
        let f = &self.field;
        let mut syn = vec![0u32; self.two_t];
        for (i, syn_i) in syn.iter_mut().enumerate() {
            let beta = f.alpha_pow((i + 1) as i64);
            let mut s = 0u32;
            match self.lane {
                SyndromeLane::Bit => {
                    for &byte in message {
                        for j in (0..8).rev() {
                            s = f.mul(s, beta) ^ (byte >> j & 1) as u32;
                        }
                    }
                }
                SyndromeLane::Byte => {
                    let fold = self.pow8[i];
                    let tbl = &self.tables[i * 256..(i + 1) * 256];
                    for &byte in message {
                        s = f.mul(s, fold) ^ tbl[byte as usize];
                    }
                }
                SyndromeLane::Dual => {
                    let fold8 = self.pow8[i];
                    let fold16 = self.pow16[i];
                    let lo = &self.tables[i * 256..(i + 1) * 256];
                    let hi = &self.hi_tables[i * 256..(i + 1) * 256];
                    let mut chunks = message.chunks_exact(2);
                    for pair in &mut chunks {
                        s = f.mul(s, fold16) ^ hi[pair[0] as usize] ^ lo[pair[1] as usize];
                    }
                    for &byte in chunks.remainder() {
                        s = f.mul(s, fold8) ^ lo[byte as usize];
                    }
                }
            }
            // Parity: full bytes then the trailing partial byte bit-serially.
            let full = parity_bits / 8;
            for &byte in &parity[..full] {
                if self.lane == SyndromeLane::Bit {
                    for j in (0..8).rev() {
                        s = f.mul(s, beta) ^ (byte >> j & 1) as u32;
                    }
                } else {
                    s = f.mul(s, self.pow8[i]) ^ self.tables[i * 256 + byte as usize];
                }
            }
            for j in 0..parity_bits % 8 {
                let bit = parity[full] >> (7 - j) & 1;
                s = f.mul(s, beta) ^ bit as u32;
            }
            *syn_i = s;
        }
        syn
    }

    /// The `beta_i^(-r)` constants that convert an evaluated LFSR remainder
    /// into syndromes: since `received(x) * x^r = q(x) g(x) + state(x)` and
    /// `g(beta_i) = 0`, we get `S_i = state(beta_i) * beta_i^(-r)`. The
    /// fused decode rung evaluates the `r`-bit `state` with [`Self::compute`]
    /// and multiplies by these factors.
    pub fn unshift_factors(&self, parity_bits: usize) -> Vec<u32> {
        (0..self.two_t)
            .map(|i| self.field.alpha_pow(-((i as i64 + 1) * parity_bits as i64)))
            .collect()
    }

    /// `true` when every syndrome is zero (valid codeword).
    pub fn all_zero(syndromes: &[u32]) -> bool {
        syndromes.iter().all(|&s| s == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_gf2::minpoly::generator_poly;

    /// Direct (bit-serial, definition-level) syndrome evaluation.
    fn reference_syndromes(
        field: &GfField,
        t: u32,
        message: &[u8],
        parity: &[u8],
        parity_bits: usize,
    ) -> Vec<u32> {
        let mut bits = Vec::new();
        for &b in message {
            for j in (0..8).rev() {
                bits.push(b >> j & 1);
            }
        }
        for v in 0..parity_bits {
            bits.push(parity[v / 8] >> (7 - v % 8) & 1);
        }
        (1..=2 * t)
            .map(|i| {
                let beta = field.alpha_pow(i as i64);
                bits.iter()
                    .fold(0u32, |acc, &b| field.mul(acc, beta) ^ b as u32)
            })
            .collect()
    }

    #[test]
    fn matches_reference_evaluation() {
        let field = Arc::new(GfField::new(10).unwrap());
        let t = 3;
        let calc = SyndromeCalculator::new(field.clone(), t);
        let msg: Vec<u8> = (0..40).map(|i| (i * 57 + 13) as u8).collect();
        let g = generator_poly(&field, t);
        let r = g.degree().unwrap();
        let parity = vec![0xC3u8; r.div_ceil(8)];
        assert_eq!(
            calc.compute(&msg, &parity, r),
            reference_syndromes(&field, t, &msg, &parity, r)
        );
    }

    #[test]
    fn every_lane_matches_the_reference() {
        let field = Arc::new(GfField::new(13).unwrap());
        let t = 4;
        let g = generator_poly(&field, t);
        let r = g.degree().unwrap();
        let parity: Vec<u8> = (0..r.div_ceil(8)).map(|i| (i * 91 + 17) as u8).collect();
        // Odd and even message lengths exercise the dual-lane tail.
        for len in [1usize, 2, 7, 8, 31, 32] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 201 + 3) as u8).collect();
            let expect = reference_syndromes(&field, t, &msg, &parity, r);
            for lane in [SyndromeLane::Bit, SyndromeLane::Byte, SyndromeLane::Dual] {
                let calc = SyndromeCalculator::with_lane(field.clone(), t, lane);
                assert_eq!(calc.lane(), lane);
                assert_eq!(
                    calc.compute(&msg, &parity, r),
                    expect,
                    "lane {lane:?}, len {len}"
                );
            }
        }
    }

    #[test]
    fn unshift_factors_recover_syndromes_from_remainder() {
        // S_i = state(beta_i) * beta_i^(-r) must equal the directly
        // computed syndromes for a corrupted codeword.
        let field = Arc::new(GfField::new(11).unwrap());
        let t = 3;
        let g = generator_poly(&field, t);
        let r = g.degree().unwrap();
        let enc = crate::encoder::LfsrEncoder::new(&g);
        let calc = SyndromeCalculator::new(field.clone(), t);
        let mut msg: Vec<u8> = (0..50).map(|i| (i * 7 + 111) as u8).collect();
        let parity = enc.remainder(&msg);
        msg[10] ^= 0x42; // corrupt
        let direct = calc.compute(&msg, &parity, r);
        let state = enc.codeword_state(&msg, &parity);
        let state_bytes = enc.state_bytes(&state);
        let evaluated = calc.compute(&[], &state_bytes, r);
        let unshift = calc.unshift_factors(r);
        let via_state: Vec<u32> = evaluated
            .iter()
            .zip(&unshift)
            .map(|(&s, &u)| field.mul(s, u))
            .collect();
        assert_eq!(via_state, direct);
    }

    #[test]
    fn valid_codeword_has_zero_syndromes() {
        let field = Arc::new(GfField::new(9).unwrap());
        let t = 4;
        let g = generator_poly(&field, t);
        let enc = crate::encoder::LfsrEncoder::new(&g);
        let calc = SyndromeCalculator::new(field.clone(), t);
        let msg: Vec<u8> = (0..30).map(|i| (i * 7 + 201) as u8).collect();
        let parity = enc.remainder(&msg);
        let syn = calc.compute(&msg, &parity, enc.parity_bits());
        assert!(SyndromeCalculator::all_zero(&syn), "syndromes: {syn:?}");
    }

    #[test]
    fn single_error_gives_power_syndromes() {
        // With an error at codeword exponent e, S_i = alpha^(i*e).
        let field = Arc::new(GfField::new(8).unwrap());
        let t = 2;
        let calc = SyndromeCalculator::new(field.clone(), t);
        let k_bits = 64usize;
        let r_bits = 16usize;
        let n = k_bits + r_bits;
        let mut msg = vec![0u8; k_bits / 8];
        let parity = vec![0u8; r_bits / 8];
        let pos = 13usize; // stream position
        msg[pos / 8] |= 1 << (7 - pos % 8);
        let e = (n - 1 - pos) as i64;
        let syn = calc.compute(&msg, &parity, r_bits);
        for (idx, &s) in syn.iter().enumerate() {
            assert_eq!(s, field.alpha_pow((idx as i64 + 1) * e), "S_{}", idx + 1);
        }
    }

    #[test]
    fn syndrome_count() {
        let field = Arc::new(GfField::new(6).unwrap());
        assert_eq!(SyndromeCalculator::new(field, 5).count(), 10);
    }

    #[test]
    fn empty_parity_tail_handled() {
        // parity_bits multiple of 8: no serial tail.
        let field = Arc::new(GfField::new(8).unwrap());
        let calc = SyndromeCalculator::new(field.clone(), 1);
        let msg = [0xFFu8; 4];
        let parity = [0x00u8, 0x00];
        let syn = calc.compute(&msg, &parity, 16);
        assert_eq!(syn, reference_syndromes(&field, 1, &msg, &parity, 16));
    }
}
