//! Differential tests for the codec-kernel ladder: every rung must be
//! bit-identical to rung 0 ([`CodecKernel::Reference`]) — same parity on
//! encode, same outcome classification and same corrected buffers on
//! decode, same error classification on malformed inputs.

use std::collections::BTreeSet;
use std::sync::Arc;

use mlcx_bch::{BchCode, BchError, CodecKernel, DecodeOutcome};
use mlcx_gf2::GfField;
use proptest::prelude::*;

fn flip(buf: &mut [u8], bitpos: usize) {
    buf[bitpos / 8] ^= 1 << (7 - bitpos % 8);
}

fn inject(message: &mut [u8], parity: &mut [u8], k_bits: usize, positions: &BTreeSet<usize>) {
    for &p in positions {
        if p < k_bits {
            flip(message, p);
        } else {
            flip(parity, p - k_bits);
        }
    }
}

/// Builds the same (m, k, t) code once per ladder rung.
fn ladder(m: u32, k_bits: usize, t: u32) -> Vec<BchCode> {
    let field = Arc::new(GfField::new(m).unwrap());
    CodecKernel::RUNGS
        .iter()
        .map(|&k| BchCode::new_with_kernel(Arc::clone(&field), k_bits, t, k).unwrap())
        .collect()
}

/// Decodes one corrupted copy per rung and returns (outcome, message, parity).
fn decode_all(
    codes: &[BchCode],
    msg: &[u8],
    parity: &[u8],
    k_bits: usize,
    positions: &BTreeSet<usize>,
) -> Vec<(DecodeOutcome, Vec<u8>, Vec<u8>)> {
    codes
        .iter()
        .map(|code| {
            let mut recv = msg.to_vec();
            let mut par = parity.to_vec();
            inject(&mut recv, &mut par, k_bits, positions);
            let out = code.decode(&mut recv, &mut par).unwrap();
            (out, recv, par)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every rung produces the exact parity bytes of the bit-serial rung 0
    /// on random payloads across field sizes and capabilities.
    #[test]
    fn every_rung_encodes_identically(
        m in 9u32..=13,
        t in 1u32..=8,
        k_bytes in 16usize..=96,
        seed in any::<u64>(),
    ) {
        let field = Arc::new(GfField::new(m).unwrap());
        let k_bits = k_bytes * 8;
        prop_assume!(k_bits + (m * t) as usize <= field.order() as usize);
        let codes = ladder(m, k_bits, t);

        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<u8> = (0..k_bytes).map(|_| rng.random()).collect();

        let reference = codes[0].encode(&msg).unwrap();
        for code in &codes[1..] {
            let parity = code.encode(&msg).unwrap();
            prop_assert_eq!(&parity, &reference);
        }
    }

    /// For every error weight 0..=t the full ladder corrects to the same
    /// buffers with the same outcome (positions included) as rung 0.
    #[test]
    fn every_rung_corrects_identically(
        m in 10u32..=13,
        t in 1u32..=8,
        seed in any::<u64>(),
    ) {
        let field = Arc::new(GfField::new(m).unwrap());
        let k_bytes = 64usize;
        let k_bits = k_bytes * 8;
        prop_assume!(k_bits + (m * t) as usize <= field.order() as usize);
        let codes = ladder(m, k_bits, t);

        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<u8> = (0..k_bytes).map(|_| rng.random()).collect();
        let parity = codes[0].encode(&msg).unwrap();
        let n = codes[0].codeword_bits();

        for weight in 0..=t as usize {
            let mut positions = BTreeSet::new();
            while positions.len() < weight {
                positions.insert(rng.random_range(0..n));
            }
            let results = decode_all(&codes, &msg, &parity, k_bits, &positions);
            let (ref_out, ref_msg, ref_par) = &results[0];
            // Rung 0 must actually correct the pattern; the rest must match
            // it bit for bit.
            prop_assert_eq!(ref_msg, &msg);
            match ref_out {
                DecodeOutcome::Clean => prop_assert_eq!(weight, 0),
                DecodeOutcome::Corrected { bit_errors, .. } => {
                    prop_assert_eq!(*bit_errors, weight)
                }
                DecodeOutcome::Uncorrectable => prop_assert!(false, "weight <= t must correct"),
            }
            for (out, got_msg, got_par) in &results[1..] {
                prop_assert_eq!(out, ref_out);
                prop_assert_eq!(got_msg, ref_msg);
                prop_assert_eq!(got_par, ref_par);
            }
        }
    }

    /// Beyond-capability patterns classify identically on every rung:
    /// either all detect (buffers untouched, identical) or all miscorrect
    /// into the same valid codeword.
    #[test]
    fn every_rung_classifies_uncorrectable_identically(
        extra in 1u32..=4,
        seed in any::<u64>(),
    ) {
        let t = 4u32;
        let k_bits = 64 * 8;
        let codes = ladder(11, k_bits, t);

        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<u8> = (0..64).map(|_| rng.random()).collect();
        let parity = codes[0].encode(&msg).unwrap();
        let n = codes[0].codeword_bits();

        let mut positions = BTreeSet::new();
        while positions.len() < (t + extra) as usize {
            positions.insert(rng.random_range(0..n));
        }
        let results = decode_all(&codes, &msg, &parity, k_bits, &positions);
        let (ref_out, ref_msg, ref_par) = &results[0];
        prop_assert!(*ref_out != DecodeOutcome::Clean, "corrupted codeword cannot be clean");
        for (out, got_msg, got_par) in &results[1..] {
            prop_assert_eq!(out, ref_out);
            prop_assert_eq!(got_msg, ref_msg);
            prop_assert_eq!(got_par, ref_par);
        }
    }
}

/// `Auto` resolves to the top rung and decodes identically to it.
#[test]
fn auto_matches_the_top_rung() {
    let field = Arc::new(GfField::new(12).unwrap());
    let auto = BchCode::new(Arc::clone(&field), 96 * 8, 5).unwrap();
    let top = BchCode::new_with_kernel(
        Arc::clone(&field),
        96 * 8,
        5,
        *CodecKernel::RUNGS.last().unwrap(),
    )
    .unwrap();
    assert_eq!(auto.kernel(), top.kernel());

    let msg: Vec<u8> = (0..96).map(|i| (i * 37 + 11) as u8).collect();
    let parity = auto.encode(&msg).unwrap();
    assert_eq!(parity, top.encode(&msg).unwrap());

    let mut recv = msg.clone();
    let mut par = parity.clone();
    for p in [0usize, 511, 512, 767] {
        flip(&mut recv, p);
    }
    let out = auto.decode(&mut recv, &mut par).unwrap();
    assert_eq!(out.corrected_bits(), 4);
    assert_eq!(recv, msg);
}

/// Malformed inputs raise the identical `BchError` on every rung.
#[test]
fn every_rung_classifies_errors_identically() {
    let codes = ladder(11, 64 * 8, 3);
    let msg = vec![0u8; 64];
    let parity = codes[0].encode(&msg).unwrap();

    let mut expected_short_msg: Option<BchError> = None;
    let mut expected_short_par: Option<BchError> = None;
    for code in &codes {
        let mut short = vec![0u8; 63];
        let mut par = parity.clone();
        let err = code.decode(&mut short, &mut par).unwrap_err();
        match &expected_short_msg {
            None => expected_short_msg = Some(err),
            Some(e) => assert_eq!(&err, e, "kernel {}", code.kernel()),
        }

        let mut recv = msg.clone();
        let mut par = parity[..parity.len() - 1].to_vec();
        let err = code.decode(&mut recv, &mut par).unwrap_err();
        match &expected_short_par {
            None => expected_short_par = Some(err),
            Some(e) => assert_eq!(&err, e, "kernel {}", code.kernel()),
        }

        let err = code.encode(&[0u8; 12]).unwrap_err();
        assert!(matches!(
            err,
            BchError::BufferSize {
                what: "message",
                ..
            }
        ));
    }
    assert!(matches!(
        expected_short_msg,
        Some(BchError::BufferSize {
            what: "message",
            ..
        })
    ));
    assert!(matches!(
        expected_short_par,
        Some(BchError::BufferSize { what: "parity", .. })
    ));
}
