//! Property-based and paper-scale integration tests for the BCH codec.

use std::collections::BTreeSet;

use mlcx_bch::{AdaptiveBch, BchCode, DecodeOutcome};
use mlcx_gf2::GfField;
use proptest::prelude::*;
use std::sync::Arc;

fn flip(buf: &mut [u8], bitpos: usize) {
    buf[bitpos / 8] ^= 1 << (7 - bitpos % 8);
}

/// Injects `positions` into a (message, parity) pair split at `k_bits`.
fn inject(message: &mut [u8], parity: &mut [u8], k_bits: usize, positions: &BTreeSet<usize>) {
    for &p in positions {
        if p < k_bits {
            flip(message, p);
        } else {
            flip(parity, p - k_bits);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any error pattern of weight <= t is corrected exactly.
    #[test]
    fn corrects_any_pattern_up_to_t(
        m in 9u32..=13,
        t in 1u32..=6,
        k_bytes in 16usize..=96,
        seed in any::<u64>(),
    ) {
        let field = Arc::new(GfField::new(m).unwrap());
        let k_bits = k_bytes * 8;
        prop_assume!(k_bits + (m * t) as usize <= field.order() as usize);
        let code = BchCode::new(field, k_bits, t).unwrap();

        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<u8> = (0..k_bytes).map(|_| rng.random()).collect();
        let mut parity = code.encode(&msg).unwrap();
        let mut recv = msg.clone();

        let n = code.codeword_bits();
        let errors = rng.random_range(0..=t) as usize;
        let mut positions = BTreeSet::new();
        while positions.len() < errors {
            positions.insert(rng.random_range(0..n));
        }
        inject(&mut recv, &mut parity, k_bits, &positions);

        let out = code.decode(&mut recv, &mut parity).unwrap();
        prop_assert_eq!(&recv, &msg);
        match out {
            DecodeOutcome::Clean => prop_assert_eq!(errors, 0),
            DecodeOutcome::Corrected { bit_errors, positions: got, .. } => {
                prop_assert_eq!(bit_errors, errors);
                prop_assert_eq!(got, positions.into_iter().collect::<Vec<_>>());
            }
            DecodeOutcome::Uncorrectable => prop_assert!(false, "must correct <= t errors"),
        }
        // The corrected pair must re-validate as clean.
        let clean = code.decode(&mut recv, &mut parity).unwrap();
        prop_assert_eq!(clean, DecodeOutcome::Clean);
    }

    /// Beyond-capability patterns never silently pass as `Clean` and never
    /// return wrong data under the `Corrected` label *while claiming <= t
    /// flips of the injected pattern* — they either detect, or miscorrect
    /// into a *different* valid codeword (counted, never hidden).
    #[test]
    fn beyond_t_is_detected_or_counted_miscorrection(
        seed in any::<u64>(),
        extra in 1u32..=3,
    ) {
        let field = Arc::new(GfField::new(11).unwrap());
        let t = 3u32;
        let k_bits = 64 * 8;
        let code = BchCode::new(field, k_bits, t).unwrap();

        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg: Vec<u8> = (0..64).map(|_| rng.random()).collect();
        let mut parity = code.encode(&msg).unwrap();
        let mut recv = msg.clone();

        let n = code.codeword_bits();
        let mut positions = BTreeSet::new();
        while positions.len() < (t + extra) as usize {
            positions.insert(rng.random_range(0..n));
        }
        inject(&mut recv, &mut parity, k_bits, &positions);

        match code.decode(&mut recv, &mut parity).unwrap() {
            DecodeOutcome::Clean => prop_assert!(false, "corrupted codeword cannot be clean"),
            DecodeOutcome::Uncorrectable => {
                // Data untouched on detection.
                let mut expect = msg.clone();
                let msg_positions: BTreeSet<usize> =
                    positions.iter().copied().filter(|&p| p < k_bits).collect();
                inject(&mut expect, &mut vec![0u8; code.parity_bytes()], k_bits, &msg_positions);
                prop_assert_eq!(recv, expect);
            }
            DecodeOutcome::Corrected { bit_errors, .. } => {
                // Miscorrection: must have landed on a valid codeword and
                // reported at most t corrections.
                prop_assert!(bit_errors <= t as usize);
                let check = code.decode(&mut recv, &mut parity).unwrap();
                prop_assert_eq!(check, DecodeOutcome::Clean);
            }
        }
    }

    /// Parity footprint is monotone in t and bounded by m*t bits.
    #[test]
    fn parity_footprint_bounds(t in 1u32..=20) {
        let mut codec = AdaptiveBch::new(14, 256 * 8, 1, 20).unwrap();
        let code = codec.code_for(t).unwrap();
        prop_assert!(code.parity_bits() <= (14 * t) as usize);
        if t > 1 {
            let prev = codec.code_for(t - 1).unwrap();
            prop_assert!(code.parity_bits() >= prev.parity_bits());
        }
    }
}

/// The paper's exact configuration: 4 KiB page, GF(2^16), t = 3..=65.
#[test]
fn date2012_full_scale_roundtrip() {
    let mut codec = AdaptiveBch::date2012().unwrap();
    assert_eq!(codec.message_bits(), 32768);
    assert_eq!(codec.tmin(), 3);
    assert_eq!(codec.tmax(), 65);
    // Worst-case parity must fit a 224-byte spare area (4 KiB page).
    assert!(codec.max_parity_bytes() <= 224);

    let msg: Vec<u8> = (0..4096).map(|i| (i * 89 + 3) as u8).collect();
    for t in [3u32, 30, 65] {
        codec.set_correction(t).unwrap();
        let mut parity = codec.encode(&msg).unwrap();
        let mut recv = msg.clone();
        for i in 0..t as usize {
            flip(&mut recv, i * 499 + 7);
        }
        let out = codec.decode(&mut recv, &mut parity).unwrap();
        assert_eq!(out.corrected_bits(), t as usize, "t={t}");
        assert_eq!(recv, msg, "t={t}");
    }
    let stats = codec.stats();
    assert_eq!(stats.pages_decoded, 3);
    assert_eq!(stats.corrected_pages, 3);
    assert_eq!(stats.corrected_bits, (3 + 30 + 65) as u64);
}

/// Section 2's criticism of small-block ECC, demonstrated: with the same
/// total correction budget (32 errors per page), the page-wide 4 KiB code
/// absorbs a 20-error burst concentrated in one 512 B region, while the
/// segmented 8 x 512 B scheme (t = 4 each) fails on that segment.
#[test]
fn large_block_handles_error_concentration() {
    let mut big = AdaptiveBch::new(16, 4096 * 8, 1, 32).unwrap();
    big.set_correction(32).unwrap();
    let mut small = AdaptiveBch::new(13, 512 * 8, 1, 4).unwrap();
    small.set_correction(4).unwrap();

    let page: Vec<u8> = (0..4096).map(|i| (i * 31 + 5) as u8).collect();
    // Burst: 20 bit errors inside the first 512 bytes.
    let burst: Vec<usize> = (0..20).map(|i| i * 199 + 3).collect();
    assert!(burst.iter().all(|&p| p < 512 * 8));

    // Page-wide code: corrected.
    let mut parity = big.encode(&page).unwrap();
    let mut recv = page.clone();
    for &p in &burst {
        flip(&mut recv, p);
    }
    let out = big.decode(&mut recv, &mut parity).unwrap();
    assert_eq!(out.corrected_bits(), 20);
    assert_eq!(recv, page);

    // Segmented scheme: the burst-hit segment is beyond its t = 4.
    let seg = &page[..512];
    let mut seg_parity = small.encode(seg).unwrap();
    let mut seg_recv = seg.to_vec();
    for &p in &burst {
        flip(&mut seg_recv, p);
    }
    let seg_out = small.decode(&mut seg_recv, &mut seg_parity).unwrap();
    assert_eq!(seg_out, DecodeOutcome::Uncorrectable);
}
