//! Decoder edge cases exercised on every kernel rung: degenerate
//! payloads, extreme error positions, word-boundary error geometry and
//! the zero-syndrome shortcut.

use std::collections::BTreeSet;
use std::sync::Arc;

use mlcx_bch::syndrome::{SyndromeCalculator, SyndromeLane};
use mlcx_bch::{BchCode, CodecKernel, DecodeOutcome};
use mlcx_gf2::GfField;

const M: u32 = 13;
const K_BYTES: usize = 64;
const K_BITS: usize = K_BYTES * 8;
const T: u32 = 8;

fn flip(buf: &mut [u8], bitpos: usize) {
    buf[bitpos / 8] ^= 1 << (7 - bitpos % 8);
}

fn ladder() -> Vec<BchCode> {
    let field = Arc::new(GfField::new(M).unwrap());
    CodecKernel::RUNGS
        .iter()
        .map(|&k| BchCode::new_with_kernel(Arc::clone(&field), K_BITS, T, k).unwrap())
        .collect()
}

/// Decodes `positions` injected into a fresh copy and asserts exact
/// correction with the exact reported position set.
fn assert_corrects(code: &BchCode, msg: &[u8], parity: &[u8], positions: &BTreeSet<usize>) {
    let mut recv = msg.to_vec();
    let mut par = parity.to_vec();
    for &p in positions {
        if p < K_BITS {
            flip(&mut recv, p);
        } else {
            flip(&mut par, p - K_BITS);
        }
    }
    let out = code.decode(&mut recv, &mut par).unwrap();
    match out {
        DecodeOutcome::Corrected {
            bit_errors,
            positions: got,
            ..
        } => {
            assert_eq!(bit_errors, positions.len(), "kernel {}", code.kernel());
            assert_eq!(
                got,
                positions.iter().copied().collect::<Vec<_>>(),
                "kernel {}",
                code.kernel()
            );
        }
        other => panic!(
            "kernel {}: expected correction, got {other:?}",
            code.kernel()
        ),
    }
    assert_eq!(recv, msg, "kernel {}", code.kernel());
    assert_eq!(par, parity, "kernel {}", code.kernel());
}

/// The all-zero message is the zero codeword: zero parity, clean decode,
/// and a single flipped bit comes back to zero on every rung.
#[test]
fn all_zero_buffer_is_the_zero_codeword() {
    for code in ladder() {
        let msg = vec![0u8; K_BYTES];
        let parity = code.encode(&msg).unwrap();
        assert!(
            parity.iter().all(|&b| b == 0),
            "kernel {}: zero message must produce zero parity",
            code.kernel()
        );
        let mut recv = msg.clone();
        let mut par = parity.clone();
        assert_eq!(
            code.decode(&mut recv, &mut par).unwrap(),
            DecodeOutcome::Clean,
            "kernel {}",
            code.kernel()
        );
        assert_corrects(&code, &msg, &parity, &BTreeSet::from([137]));
    }
}

/// The all-ones payload stresses every tap of the LFSR at once.
#[test]
fn all_ones_buffer_round_trips() {
    for code in ladder() {
        let msg = vec![0xFFu8; K_BYTES];
        let parity = code.encode(&msg).unwrap();
        let mut recv = msg.clone();
        let mut par = parity.clone();
        assert_eq!(
            code.decode(&mut recv, &mut par).unwrap(),
            DecodeOutcome::Clean,
            "kernel {}",
            code.kernel()
        );
        // Full-capability burst over the all-ones payload.
        let positions: BTreeSet<usize> = (0..T as usize).map(|i| i * 61 + 2).collect();
        assert_corrects(&code, &msg, &parity, &positions);
    }
}

/// Single-bit errors at the two extreme codeword positions: the very
/// first message bit and the very last parity bit.
#[test]
fn single_bit_error_at_first_and_last_position() {
    for code in ladder() {
        let msg: Vec<u8> = (0..K_BYTES).map(|i| (i * 41 + 9) as u8).collect();
        let parity = code.encode(&msg).unwrap();
        let n = code.codeword_bits();
        assert_corrects(&code, &msg, &parity, &BTreeSet::from([0]));
        assert_corrects(&code, &msg, &parity, &BTreeSet::from([n - 1]));
        // Both extremes in one pattern.
        assert_corrects(&code, &msg, &parity, &BTreeSet::from([0, n - 1]));
    }
}

/// A full-weight burst clustered inside one 64-bit register word decodes
/// identically to the same weight spread across word seams. Both
/// geometries hit the widest datapath strides (slice-8 encode, dual-byte
/// syndrome fold) at their least-aligned points.
#[test]
fn clustered_and_word_boundary_spread_errors() {
    for code in ladder() {
        let msg: Vec<u8> = (0..K_BYTES).map(|i| (i * 73 + 5) as u8).collect();
        let parity = code.encode(&msg).unwrap();

        // All t errors inside the second 64-bit word (bits 64..128).
        let clustered: BTreeSet<usize> = (0..T as usize).map(|i| 64 + i * 7).collect();
        assert!(clustered.iter().all(|&p| (64..128).contains(&p)));
        assert_corrects(&code, &msg, &parity, &clustered);

        // The same weight straddling word seams: pairs around bit 64,
        // 128, 192 and the message/parity boundary.
        let spread: BTreeSet<usize> =
            BTreeSet::from([62, 64, 126, 128, 190, 192, K_BITS - 1, K_BITS]);
        assert_eq!(spread.len(), T as usize);
        assert_corrects(&code, &msg, &parity, &spread);
    }
}

/// An error-free word-aligned codeword has all 2t syndromes equal to
/// zero under every syndrome lane, and every rung classifies it Clean.
#[test]
fn zero_syndrome_pin_for_error_free_codeword() {
    let codes = ladder();
    let msg: Vec<u8> = (0..K_BYTES).map(|i| (i * 29 + 1) as u8).collect();
    assert_eq!(msg.len() % 8, 0, "word-aligned payload");
    let parity = codes[0].encode(&msg).unwrap();

    let field = Arc::new(GfField::new(M).unwrap());
    for lane in [SyndromeLane::Bit, SyndromeLane::Byte, SyndromeLane::Dual] {
        let calc = SyndromeCalculator::with_lane(Arc::clone(&field), T, lane);
        let syn = calc.compute(&msg, &parity, codes[0].parity_bits());
        assert_eq!(syn.len(), 2 * T as usize);
        assert!(
            syn.iter().all(|&s| s == 0),
            "lane {lane:?}: error-free codeword must have zero syndromes, got {syn:?}"
        );
    }

    for code in &codes {
        let mut recv = msg.clone();
        let mut par = parity.clone();
        assert_eq!(
            code.decode(&mut recv, &mut par).unwrap(),
            DecodeOutcome::Clean,
            "kernel {}",
            code.kernel()
        );
        // One nonzero syndrome flips the classification away from Clean.
        flip(&mut recv, 300);
        assert_ne!(
            code.decode(&mut recv, &mut par).unwrap(),
            DecodeOutcome::Clean,
            "kernel {}",
            code.kernel()
        );
        assert_eq!(
            recv,
            msg,
            "kernel {}: single error must be corrected",
            code.kernel()
        );
    }
}
