//! Architecture ablations (extension): Chien pool basis, flash bus rate
//! and buffer load strategy — prints the sensitivity tables and times the
//! sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::ablation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    mlcx_bench::banner(
        "Ablation — Chien multiplier pool",
        &ablation::chien_table(&ablation::chien_parallelism(&model, &[1, 2, 4, 8, 16])).render(),
    );
    mlcx_bench::banner(
        "Ablation — flash bus rate",
        &ablation::bus_table(&ablation::bus_rate(
            &model,
            &[16.0, 32.0, 66.0, 133.0, 200.0],
        ))
        .render(),
    );
    mlcx_bench::banner(
        "Ablation — buffer load strategy",
        &ablation::load_table(&ablation::load_strategy(&model)).render(),
    );

    c.bench_function("ablation/chien_sweep", |b| {
        b.iter(|| black_box(ablation::chien_parallelism(&model, &[1, 2, 4, 8, 16])))
    });
    c.bench_function("ablation/bus_sweep", |b| {
        b.iter(|| {
            black_box(ablation::bus_rate(
                &model,
                &[16.0, 32.0, 66.0, 133.0, 200.0],
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
