//! Codec-kernel ladder bench: per-rung encode+decode throughput of the
//! same 2048-bit-message BCH code (GF(2^13), t = 8), paired-median
//! speedup of every rung over the bit-serial reference rung.
//!
//! Each sample times one batch of seeded encode -> inject -> decode
//! round trips per rung, strictly interleaved so clock drift hits every
//! rung equally; the per-rung medians give the speedup ladder. Two
//! acceptance bars, asserted in-bench:
//!
//! * the ladder is monotone — each rung at least as fast as the one
//!   below (3 % pairing tolerance);
//! * the top rung is >= 4x the reference rung.
//!
//! Bit-identity is pinned the same way the differential tests pin it:
//! every rung's parity bytes and corrected positions fold to the same
//! checksums, recorded as `exact` metrics in the committed baseline so
//! a kernel change that alters any output fails the CI gate
//! (`crates/bench/baselines/codec_kernels.json`). `MLCX_SMOKE=1` trims
//! the batch and sample counts and skips the Criterion pass.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bch::{BchCode, CodecKernel, DecodeOutcome};
use mlcx_bench::{smoke, BenchResult};
use mlcx_gf2::GfField;
use std::hint::black_box;

const M: u32 = 13;
const MSG_BYTES: usize = 256; // 2048-bit message
const T: u32 = 8;
const SEED: u64 = 2012;

fn ladder() -> Vec<BchCode> {
    let field = Arc::new(GfField::new(M).unwrap());
    CodecKernel::RUNGS
        .iter()
        .map(|&k| BchCode::new_with_kernel(Arc::clone(&field), MSG_BYTES * 8, T, k).unwrap())
        .collect()
}

/// Seeded per-iteration error schedules: weights cycle 0..=t so every
/// batch exercises the clean shortcut, single-error solve and
/// full-capability correction.
fn error_schedule(iters: usize, n_bits: usize) -> Vec<Vec<usize>> {
    let mut state = SEED | 1;
    let mut next = |modulo: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % modulo
    };
    (0..iters)
        .map(|i| {
            let weight = i % (T as usize + 1);
            let mut positions = Vec::new();
            while positions.len() < weight {
                let p = next(n_bits);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            positions.sort_unstable();
            positions
        })
        .collect()
}

fn flip(buf: &mut [u8], bitpos: usize) {
    buf[bitpos / 8] ^= 1 << (7 - bitpos % 8);
}

/// One timed batch: encode, inject the iteration's schedule, decode,
/// fold parity bytes and corrected positions into checksums.
fn run_batch(code: &BchCode, msg: &[u8], schedule: &[Vec<usize>]) -> (u64, u64) {
    let k_bits = MSG_BYTES * 8;
    let mut parity_sum = 0u64;
    let mut position_sum = 0u64;
    for positions in schedule {
        let parity = code.encode(msg).unwrap();
        for (i, &b) in parity.iter().enumerate() {
            parity_sum = parity_sum.wrapping_add((b as u64) << (i % 8));
        }
        let mut recv = msg.to_vec();
        let mut par = parity;
        for &p in positions {
            if p < k_bits {
                flip(&mut recv, p);
            } else {
                flip(&mut par, p - k_bits);
            }
        }
        match code.decode(&mut recv, &mut par).unwrap() {
            DecodeOutcome::Clean => assert!(positions.is_empty()),
            DecodeOutcome::Corrected { positions: got, .. } => {
                assert_eq!(&got, positions, "kernel {}", code.kernel());
                for &p in &got {
                    position_sum = position_sum.wrapping_mul(31).wrapping_add(p as u64 + 1);
                }
            }
            DecodeOutcome::Uncorrectable => {
                panic!("kernel {}: schedule stays within t", code.kernel())
            }
        }
        assert_eq!(recv, msg, "kernel {}", code.kernel());
    }
    (parity_sum, position_sum)
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let codes = ladder();
    let msg: Vec<u8> = (0..MSG_BYTES).map(|i| (i * 97 + 13) as u8).collect();
    let n_bits = codes[0].codeword_bits();
    let (iters, samples) = if smoke() { (8, 3) } else { (24, 9) };
    let schedule = error_schedule(iters, n_bits);

    // Bit-identity pin: every rung folds to the same checksums.
    let checksums: Vec<(u64, u64)> = codes
        .iter()
        .map(|code| run_batch(code, &msg, &schedule))
        .collect();
    for (code, sums) in codes.iter().zip(&checksums) {
        assert_eq!(
            sums,
            &checksums[0],
            "kernel {} diverged from the reference rung",
            code.kernel()
        );
    }

    // Strictly interleaved paired timing rounds.
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(samples); codes.len()];
    for _ in 0..samples {
        for (rung, code) in codes.iter().enumerate() {
            let start = Instant::now();
            black_box(run_batch(code, &msg, &schedule));
            times[rung].push(start.elapsed().as_secs_f64());
        }
    }
    let medians: Vec<f64> = times.into_iter().map(median).collect();
    let speedups: Vec<f64> = medians.iter().map(|&t| medians[0] / t).collect();

    println!(
        "\n===== codec_kernels — {}-bit message, GF(2^{M}), t = {T} =====",
        MSG_BYTES * 8
    );
    println!("{:>10} {:>14} {:>10}", "rung", "batch (ms)", "speedup");
    for ((kernel, s), t) in CodecKernel::RUNGS.iter().zip(&speedups).zip(&medians) {
        println!("{:>10} {:>14.3} {:>9.2}x", kernel.name(), t * 1e3, s);
    }

    // Acceptance bars: monotone ladder, top rung >= 4x the reference.
    for (i, pair) in speedups.windows(2).enumerate() {
        assert!(
            pair[1] >= pair[0] * 0.97,
            "ladder must be monotone: rung {} at {:.2}x vs rung {} at {:.2}x",
            i + 1,
            pair[1],
            i,
            pair[0]
        );
    }
    let top = *speedups.last().unwrap();
    assert!(
        top >= 4.0,
        "top rung must be >= 4x the reference rung, got {top:.2}x"
    );

    let mut record = BenchResult::new(
        "codec_kernels",
        "per-rung encode+inject+decode ladder, 2048-bit message, GF(2^13) t=8",
    );
    record.exact = vec![
        ("message_bits".into(), (MSG_BYTES * 8) as f64),
        ("parity_bits".into(), codes[0].parity_bits() as f64),
        ("codeword_bits".into(), n_bits as f64),
        ("iters_per_batch".into(), iters as f64),
        ("parity_checksum".into(), checksums[0].0 as f64),
        ("positions_checksum".into(), checksums[0].1 as f64),
    ];
    record.wall = CodecKernel::RUNGS
        .iter()
        .zip(&medians)
        .map(|(kernel, &t)| (format!("{}_batch_s", kernel.name()), t))
        .collect();
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("codec_kernels");
    for (kernel, code) in CodecKernel::RUNGS.iter().zip(&codes) {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| black_box(run_batch(code, &msg, &schedule)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
