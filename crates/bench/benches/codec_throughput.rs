//! Functional BCH codec throughput across the capability range — the raw
//! software performance of the reproduction (not a paper figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlcx_bch::AdaptiveBch;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut codec = AdaptiveBch::date2012().unwrap();
    let msg: Vec<u8> = (0..4096).map(|i| (i * 97 + 13) as u8).collect();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(4096));
    for t in [3u32, 14, 30, 65] {
        codec.set_correction(t).unwrap();
        let code = codec.code().unwrap();
        group.bench_with_input(BenchmarkId::new("encode", t), &t, |b, _| {
            b.iter(|| black_box(code.encode(&msg).unwrap()))
        });
        let parity = code.encode(&msg).unwrap();
        // Clean-page decode: the zero-remainder shortcut path.
        group.bench_with_input(BenchmarkId::new("decode_clean", t), &t, |b, _| {
            b.iter(|| {
                let mut m = msg.clone();
                let mut p = parity.clone();
                black_box(code.decode(&mut m, &mut p).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Functional-codec / Monte-Carlo iterations cost milliseconds each:
    // keep the sample count modest so the full suite stays fast.
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
