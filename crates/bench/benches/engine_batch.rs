//! First performance baseline of the command-queue `StorageEngine`:
//! one 64-page mixed read/write batch submitted through the engine's
//! submission queue vs. the same 64 page operations issued as
//! sequential per-page `execute()` calls on a `PerPage`-bucketed
//! engine (the semantics of the retired `ServicedStore` shim).
//!
//! The host pattern is a realistic mixed stream — an ingest service
//! writing a worn (end-of-life) region, interleaved page-by-page with a
//! library service reading a fresh region. The sequential path must
//! execute the host's order; the engine's submission queues group the
//! batch per service (service-major drain), keeping each service's
//! cross-layer configuration and codec working set resident, and its
//! per-(service, wear-bucket) memo derives the ingest schedule once
//! instead of 32 times. Both paths run the identical functional
//! datapath — real BCH encode/decode against the error-injected NAND
//! model — so the delta isolates what the queued API buys.
//!
//! `MLCX_SMOKE=1` (the CI mode): the functional and structural
//! assertions all run, wall-clock sampling shrinks to one short paired
//! round (recorded for the bench gate, not asserted — the gate's
//! tolerance band owns that call), and the Criterion pass is skipped.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::{ControllerConfig, MemoryController};
use mlcx_core::engine::{
    Command, CommandOutput, EngineBuilder, ServiceHandle, StorageEngine, WearBucketing,
};
use mlcx_core::{Objective, SubsystemModel};
use std::hint::black_box;

const INGEST_BLOCK: usize = 0;
const LIBRARY_BLOCK: usize = 8;
const WRITES: usize = 32;
const READS: usize = 32;
const EOL_CYCLES: u64 = 1_000_000;

/// The host's command stream: write/read alternating page-by-page.
/// `None` page = ingest write slot, `Some(p)` = library read of page `p`.
fn host_pattern() -> Vec<Option<usize>> {
    let mut pattern = Vec::with_capacity(WRITES + READS);
    for i in 0..WRITES {
        pattern.push(None);
        pattern.push(Some(i % READS));
    }
    pattern
}

fn payload(page: usize) -> Vec<u8> {
    (0..4096)
        .map(|i| ((i * 7 + page * 131) % 256) as u8)
        .collect()
}

/// Writes the fresh library pages both workloads read back.
fn prime_library(ctrl: &mut MemoryController) {
    ctrl.erase_block(LIBRARY_BLOCK).unwrap();
    for page in 0..READS {
        ctrl.write_page(LIBRARY_BLOCK, page, &payload(page))
            .unwrap();
    }
}

fn engine_under_test() -> (StorageEngine, ServiceHandle, ServiceHandle) {
    let mut engine = EngineBuilder::date2012().seed(4096).build().unwrap();
    let ingest = engine
        .register_service("ingest", Objective::MaxReadThroughput, 0..8)
        .unwrap();
    let library = engine
        .register_service("library", Objective::Baseline, 8..16)
        .unwrap();
    engine
        .controller_mut()
        .age_block(INGEST_BLOCK, EOL_CYCLES)
        .unwrap();
    prime_library(engine.controller_mut());
    (engine, ingest, library)
}

/// The sequential baseline: a `PerPage`-bucketed engine driven one
/// `execute()` call at a time, so the cross-layer configuration is
/// re-derived from the region's wear on *every* write — the original
/// per-page store semantics.
fn sequential_under_test() -> (StorageEngine, ServiceHandle, ServiceHandle) {
    let ctrl = MemoryController::new(ControllerConfig::date2012(), 4096).unwrap();
    let mut engine =
        StorageEngine::with_bucketing(ctrl, SubsystemModel::date2012(), WearBucketing::PerPage);
    let ingest = engine
        .register_service("ingest", Objective::MaxReadThroughput, 0..8)
        .unwrap();
    let library = engine
        .register_service("library", Objective::Baseline, 8..16)
        .unwrap();
    engine
        .controller_mut()
        .age_block(INGEST_BLOCK, EOL_CYCLES)
        .unwrap();
    prime_library(engine.controller_mut());
    (engine, ingest, library)
}

/// The 64-page mixed batch through the engine: one submit in host
/// order, one drain.
fn run_batched(engine: &mut StorageEngine, ingest: ServiceHandle, library: ServiceHandle) -> usize {
    let mut cmds = Vec::with_capacity(1 + WRITES + READS);
    cmds.push(Command::erase(ingest, INGEST_BLOCK));
    let mut next_write = 0usize;
    for slot in host_pattern() {
        match slot {
            None => {
                cmds.push(Command::write(
                    ingest,
                    INGEST_BLOCK,
                    next_write,
                    payload(next_write),
                ));
                next_write += 1;
            }
            Some(p) => cmds.push(Command::read(library, LIBRARY_BLOCK, p)),
        }
    }
    engine.sq().submit_owned(cmds).unwrap();
    let completions = engine.cq().drain();
    assert!(completions.iter().all(|c| c.result.is_ok()));
    assert_eq!(engine.last_batch().commands, 1 + WRITES + READS);
    assert!(engine.last_batch().device_latency_s > 0.0);
    assert!(engine.last_batch().energy_j > 0.0);
    completions.len()
}

/// The same 64 page operations as sequential per-page `execute()`
/// calls, in the host's order.
fn run_sequential(
    engine: &mut StorageEngine,
    ingest: ServiceHandle,
    library: ServiceHandle,
) -> usize {
    engine
        .execute(Command::erase(ingest, INGEST_BLOCK))
        .unwrap();
    let mut done = 1;
    let mut next_write = 0usize;
    for slot in host_pattern() {
        match slot {
            None => {
                engine
                    .execute(Command::write(
                        ingest,
                        INGEST_BLOCK,
                        next_write,
                        payload(next_write),
                    ))
                    .unwrap();
                next_write += 1;
            }
            Some(p) => match engine
                .execute(Command::read(library, LIBRARY_BLOCK, p))
                .unwrap()
            {
                CommandOutput::Read(r) => assert!(r.outcome.is_success()),
                other => panic!("expected read output, got {other:?}"),
            },
        }
        done += 1;
    }
    done
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// One measurement round: `samples` strictly alternating (paired)
/// timings of both workloads, so clock-frequency drift and background
/// noise hit both equally. Returns (batched median, sequential median,
/// median of per-pair differences).
fn measure_round(
    engine: &mut StorageEngine,
    ingest: ServiceHandle,
    library: ServiceHandle,
    seq: &mut (StorageEngine, ServiceHandle, ServiceHandle),
    samples: usize,
) -> (f64, f64, f64) {
    let mut batched = Vec::with_capacity(samples);
    let mut sequential = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(run_batched(engine, ingest, library));
        batched.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(run_sequential(&mut seq.0, seq.1, seq.2));
        sequential.push(start.elapsed().as_secs_f64());
    }
    let diffs: Vec<f64> = sequential
        .iter()
        .zip(&batched)
        .map(|(s, b)| s - b)
        .collect();
    (median(batched), median(sequential), median(diffs))
}

fn bench(c: &mut Criterion) {
    let pages = (WRITES + READS) as f64;

    // --- The recorded baseline: batched vs sequential.
    let (mut engine, ingest, library) = engine_under_test();
    let mut seq = sequential_under_test();
    for _ in 0..3 {
        black_box(run_batched(&mut engine, ingest, library));
        black_box(run_sequential(&mut seq.0, seq.1, seq.2));
    }

    // The structural advantage is deterministic: one schedule
    // derivation per same-wear service batch instead of one per write.
    let batch = *engine.last_batch();
    assert_eq!(
        batch.op_cache_misses, 1,
        "the engine must derive the ingest schedule once per batch"
    );
    assert_eq!(batch.op_cache_hits, WRITES as u64 - 1);
    // Single-die topology: the parallel makespan is the serial sum.
    assert!((batch.parallel_latency_s - batch.device_latency_s).abs() < 1e-12);

    let mut record = BenchResult::new(
        "engine_batch",
        "64-page mixed batch, paired alternating medians vs sequential per-page execute()",
    );
    record.exact = vec![
        ("commands".into(), batch.commands as f64),
        ("op_cache_misses".into(), batch.op_cache_misses as f64),
        ("op_cache_hits".into(), batch.op_cache_hits as f64),
        ("knob_writes".into(), batch.knob_writes as f64),
    ];
    record.modeled = vec![
        ("device_latency_s".into(), batch.device_latency_s),
        ("parallel_latency_s".into(), batch.parallel_latency_s),
        ("energy_j".into(), batch.energy_j),
    ];

    if smoke() {
        // One short paired round for the gate's wall record; the
        // ordering assertion stays full-mode (CI noise is the gate's
        // tolerance band to judge).
        let (batched_s, sequential_s, paired_diff_s) =
            measure_round(&mut engine, ingest, library, &mut seq, 8);
        println!(
            "smoke round: batched {:.3} ms, sequential {:.3} ms, paired diff {:+.0} us",
            batched_s * 1e3,
            sequential_s * 1e3,
            paired_diff_s * 1e6
        );
        record.wall = vec![
            ("batched_s".into(), batched_s),
            ("sequential_s".into(), sequential_s),
        ];
        record.write();
        println!("smoke mode: skipping the full paired rounds and the Criterion pass");
        return;
    }

    // The wall-clock advantage is systematic but small (~1-3%), so a
    // noisy environment can mask a single round: measure paired
    // medians, retrying up to 3 rounds before declaring a regression.
    let mut verdict = None;
    let mut recorded_wall = (0.0, 0.0);
    for round in 0..3 {
        let (batched_s, sequential_s, paired_diff_s) =
            measure_round(&mut engine, ingest, library, &mut seq, 24);
        recorded_wall = (batched_s, sequential_s);
        let batched_pps = pages / batched_s;
        let sequential_pps = pages / sequential_s;
        println!(
            "\n===== engine_batch round {round} — 64-page mixed batch (32 EOL writes x 32 fresh reads, alternating) ====="
        );
        println!(
            "batched   StorageEngine : {:>9.3} ms/batch  {:>9.0} pages/s",
            batched_s * 1e3,
            batched_pps
        );
        println!(
            "sequential per-page exec: {:>9.3} ms/batch  {:>9.0} pages/s",
            sequential_s * 1e3,
            sequential_pps
        );
        println!(
            "batched speedup: {:.1}% (paired-median {:.0} us saved per batch)",
            (sequential_s / batched_s - 1.0) * 100.0,
            paired_diff_s * 1e6
        );
        if paired_diff_s > 0.0 && batched_pps > sequential_pps {
            verdict = Some((batched_pps, sequential_pps));
            break;
        }
        println!("round {round} inconclusive (environment noise?), retrying...");
    }
    let (batched_pps, sequential_pps) =
        verdict.expect("batched submission must beat sequential per-page calls within 3 rounds");
    assert!(batched_pps > sequential_pps);
    record.wall = vec![
        ("batched_s".into(), recorded_wall.0),
        ("sequential_s".into(), recorded_wall.1),
    ];
    record.write();

    // --- Criterion timings for the record.
    let mut group = c.benchmark_group("engine_batch");
    group.throughput(Throughput::Elements(pages as u64));
    let (mut engine, ingest, library) = engine_under_test();
    group.bench_function("batched_submit_drain", |b| {
        b.iter(|| black_box(run_batched(&mut engine, ingest, library)))
    });
    let mut seq = sequential_under_test();
    group.bench_function("sequential_per_page_execute", |b| {
        b.iter(|| black_box(run_sequential(&mut seq.0, seq.1, seq.2)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
