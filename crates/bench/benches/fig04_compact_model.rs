//! Fig. 4 — compact-model staircase fit: prints the reproduced series and
//! times the single-cell ISPP ramp simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig04;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig04::generate();
    mlcx_bench::banner(
        "Fig. 4 — VTH vs VCG staircase",
        &fig04::table(&rows).render(),
    );
    println!("fit RMS error: {:.3} V", fig04::rms_error_v());

    c.bench_function("fig04/staircase_simulation", |b| {
        b.iter(|| black_box(fig04::generate()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
