//! Fig. 5 — RBER vs. P/E cycles for ISPP-SV and ISPP-DV: prints both
//! curves (the one-order-of-magnitude gap) and times the generator plus
//! a Monte-Carlo validation page.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig05;
use mlcx_nand::array::ArraySimulator;
use mlcx_nand::ProgramAlgorithm;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig05::generate(&model);
    mlcx_bench::banner("Fig. 5 — RBER vs P/E cycles", &fig05::table(&rows).render());

    c.bench_function("fig05/analytic_curves", |b| {
        b.iter(|| black_box(fig05::generate(&model)))
    });

    let sim = ArraySimulator::date2012();
    c.bench_function("fig05/monte_carlo_page_eol", |b| {
        b.iter(|| black_box(sim.run_page(ProgramAlgorithm::IsppSv, 1_000_000, 4096, 3)))
    });
}

criterion_group! {
    name = benches;
    // Functional-codec / Monte-Carlo iterations cost milliseconds each:
    // keep the sample count modest so the full suite stays fast.
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
