//! Fig. 6 — program power for {SV, DV} x {L1, L2, L3}: prints the six
//! series (DV-SV shift ~7.5 mW) and times the pump-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig06;
use mlcx_hv::HvSubsystem;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig06::generate(&model);
    mlcx_bench::banner("Fig. 6 — program power [W]", &fig06::table(&rows).render());

    c.bench_function("fig06/power_series", |b| {
        b.iter(|| black_box(fig06::generate(&model)))
    });

    let hv = HvSubsystem::date2012();
    c.bench_function("fig06/pump_phase_power", |b| {
        b.iter(|| black_box(hv.pulse_power_w(16.5) + hv.verify_power_w()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
