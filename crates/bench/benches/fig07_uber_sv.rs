//! Fig. 7 — UBER vs. RBER for the ISPP-SV capability set {3, 4, 27, 30,
//! 65}: prints the curves and the working points (the paper's x-ticks),
//! and times the eq.-1 evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig07;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig07::generate(&model);
    mlcx_bench::banner(
        "Fig. 7 — UBER vs RBER (ISPP-SV)",
        &fig07::table(&rows).render(),
    );
    println!("working points at UBER=1e-11:");
    for (t, rber) in fig07::working_points(&model) {
        println!("  t={t:>2} -> RBER {rber:.3e}");
    }

    c.bench_function("fig07/uber_curves", |b| {
        b.iter(|| black_box(fig07::generate(&model)))
    });
    c.bench_function("fig07/working_points", |b| {
        b.iter(|| black_box(fig07::working_points(&model)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
