//! The camera-ready's lost "Fig. ??" — UBER vs. RBER for the ISPP-DV
//! capability set {3, 4, 9, 14}: prints the reconstructed curves and
//! times the generator.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig07dv;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig07dv::generate(&model);
    mlcx_bench::banner(
        "Fig. ?? — UBER vs RBER (ISPP-DV)",
        &fig07dv::table(&rows).render(),
    );
    println!("working points at UBER=1e-11:");
    for (t, rber) in fig07dv::working_points(&model) {
        println!("  t={t:>2} -> RBER {rber:.3e}");
    }

    c.bench_function("fig07dv/uber_curves", |b| {
        b.iter(|| black_box(fig07dv::generate(&model)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
