//! Fig. 8 — ECC encode/decode latency over lifetime at 80 MHz: prints the
//! four curves and times both the cycle model and the *functional* codec
//! at the paper's extreme configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcx_bch::AdaptiveBch;
use mlcx_core::experiments::fig08;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig08::generate(&model);
    mlcx_bench::banner("Fig. 8 — ECC latency [us]", &fig08::table(&rows).render());

    c.bench_function("fig08/latency_schedule", |b| {
        b.iter(|| black_box(fig08::generate(&model)))
    });

    // Functional codec timings at the schedule's endpoints.
    let mut codec = AdaptiveBch::date2012().unwrap();
    let msg: Vec<u8> = (0..4096).map(|i| (i * 37) as u8).collect();
    for t in [3u32, 14, 65] {
        codec.set_correction(t).unwrap();
        let parity = codec.encode(&msg).unwrap();
        c.bench_with_input(BenchmarkId::new("fig08/encode_4k", t), &t, |b, _| {
            b.iter(|| black_box(codec.code().unwrap().encode(&msg).unwrap()))
        });
        let mut recv = msg.clone();
        for i in 0..t as usize {
            recv[i * 61] ^= 0x10;
        }
        c.bench_with_input(
            BenchmarkId::new("fig08/decode_4k_t_errors", t),
            &t,
            |b, _| {
                b.iter(|| {
                    let mut m = recv.clone();
                    let mut p = parity.clone();
                    black_box(codec.code().unwrap().decode(&mut m, &mut p).unwrap())
                })
            },
        );
    }
}

criterion_group! {
    name = benches;
    // Functional-codec / Monte-Carlo iterations cost milliseconds each:
    // keep the sample count modest so the full suite stays fast.
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
