//! Fig. 9 — write-throughput loss of the cross-layer configuration
//! (~40 % fresh to ~48 % at end of life): prints the curve and times the
//! write-path evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig09;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig09::generate(&model);
    mlcx_bench::banner(
        "Fig. 9 — write throughput loss [%]",
        &fig09::table(&rows).render(),
    );

    c.bench_function("fig09/write_loss_curve", |b| {
        b.iter(|| black_box(fig09::generate(&model)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
