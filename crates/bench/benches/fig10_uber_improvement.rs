//! Fig. 10 — UBER of the nominal configuration vs. the physical-layer
//! modification (ISPP-DV at the nominal ECC schedule): prints both curves
//! and times the log-domain eq.-1 sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::fig10;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig10::generate(&model);
    mlcx_bench::banner("Fig. 10 — UBER improvement", &fig10::table(&rows).render());

    c.bench_function("fig10/uber_curves", |b| {
        b.iter(|| black_box(fig10::generate(&model)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
