//! Fig. 11 — read-throughput gain of the cross-layer optimization (up to
//! ~30 % at end of life, at constant UBER): prints the curve and times
//! the read-path evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_core::experiments::{fig11, power_budget};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = mlcx_bench::model();
    let rows = fig11::generate(&model);
    mlcx_bench::banner(
        "Fig. 11 — read throughput gain [%]",
        &fig11::table(&rows).render(),
    );
    mlcx_bench::banner(
        "Section 6.3.2 — power budget [mW]",
        &power_budget::table(&power_budget::generate(&model)).render(),
    );

    c.bench_function("fig11/read_gain_curve", |b| {
        b.iter(|| black_box(fig11::generate(&model)))
    });
    c.bench_function("fig11/power_budget", |b| {
        b.iter(|| black_box(power_budget::generate(&model)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
