//! Monte-Carlo ISPP engine performance: full-page program simulation for
//! both algorithms (not a paper figure; the simulator's own speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcx_nand::ispp::{IsppConfig, IsppEngine, ProgramAlgorithm};
use mlcx_nand::levels::{MlcLevel, ThresholdSpec};
use mlcx_nand::variability::VariabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let engine = IsppEngine::new(
        IsppConfig::date2012(),
        ThresholdSpec::date2012(),
        VariabilityModel::date2012(),
    );
    let targets: Vec<MlcLevel> = (0..4096).map(|i| MlcLevel::from_index(i % 4)).collect();

    for alg in ProgramAlgorithm::ALL {
        c.bench_with_input(
            BenchmarkId::new("ispp/program_4k_cells", alg.to_string()),
            &alg,
            |b, &alg| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(5);
                    let mut cells = engine.erased_page(&targets, &mut rng);
                    black_box(engine.program(&mut cells, alg, 0.05, &mut rng))
                })
            },
        );
    }
}

criterion_group! {
    name = benches;
    // Functional-codec / Monte-Carlo iterations cost milliseconds each:
    // keep the sample count modest so the full suite stays fast.
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
