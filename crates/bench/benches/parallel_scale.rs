//! Parallel-datapath scaling baseline: the *same* seeded workload run on
//! 1-, 2- and 4-channel topologies of an identical 32-block bank, with
//! the modeled per-batch latency (the channel scheduler's makespan)
//! recorded for each. On one channel the makespan is exactly the serial
//! latency sum; on four channels the batch's operations overlap across
//! dies and the makespan collapses.
//!
//! Everything asserted here is deterministic: the workload is a fixed
//! function of the seed, the per-command functional datapath is
//! identical across topologies, and the speedup is a paired median of
//! per-batch makespan ratios (batch `i` on 1 channel vs batch `i` on 4
//! channels), so the committed baseline under
//! `crates/bench/baselines/parallel_scale.json` gates CI regardless of
//! container noise. `MLCX_SMOKE=1` skips only the Criterion timing pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::ControllerConfig;
use mlcx_core::engine::{BatchReport, Command, EngineBuilder, StorageEngine};
use mlcx_core::Objective;
use mlcx_nand::{DeviceGeometry, Topology};
use std::hint::black_box;

const BLOCKS: usize = 32;
const PAGES_PER_BLOCK: usize = 16;
const BATCHES: usize = 8;
const BLOCKS_PER_BATCH: usize = 8;
const PAGES_PER_OP_BLOCK: usize = 4;
const SEED: u64 = 2012;

/// Commands per batch: erase + 4 writes + 4 reads per touched block.
const CMDS_PER_BATCH: usize = BLOCKS_PER_BATCH * (1 + 2 * PAGES_PER_OP_BLOCK);

fn engine(channels: usize) -> StorageEngine {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks: BLOCKS,
        pages_per_block: PAGES_PER_BLOCK,
        topology: Topology::new(channels, 1),
        ..config.geometry
    };
    let mut engine = EngineBuilder::date2012()
        .controller_config(config)
        .seed(SEED)
        .build()
        .expect("bench engine must build");
    engine
        .register_service("tenant", Objective::Baseline, 0..BLOCKS)
        .expect("service must register");
    // Mid-life bank: the schedule is non-trivial but identical across
    // topologies (wear is uniform).
    engine.controller_mut().age_all(100_000);
    engine
}

fn payload(block: usize, page: usize, batch: usize) -> Vec<u8> {
    (0..4096)
        .map(|i| ((i * 13 + block * 31 + page * 131 + batch * 7) % 256) as u8)
        .collect()
}

/// The blocks batch `b` touches: strided across the whole bank, so on a
/// multi-die topology every batch hits every die.
fn batch_blocks(b: usize) -> impl Iterator<Item = usize> {
    (0..BLOCKS_PER_BATCH).map(move |i| (i * (BLOCKS / BLOCKS_PER_BATCH) + b % 4) % BLOCKS)
}

/// Runs the whole seeded workload, returning one report per batch.
fn run_workload(engine: &mut StorageEngine) -> Vec<BatchReport> {
    let tenant = engine.service("tenant").expect("service exists");
    let mut reports = Vec::with_capacity(BATCHES);
    for b in 0..BATCHES {
        let mut cmds = Vec::with_capacity(CMDS_PER_BATCH);
        for block in batch_blocks(b) {
            cmds.push(Command::erase(tenant, block));
            for p in 0..PAGES_PER_OP_BLOCK {
                cmds.push(Command::write(tenant, block, p, payload(block, p, b)));
            }
            for p in 0..PAGES_PER_OP_BLOCK {
                cmds.push(Command::read(tenant, block, p));
            }
        }
        assert_eq!(cmds.len(), CMDS_PER_BATCH);
        engine.sq().submit_owned(cmds).expect("batch must submit");
        let completions = engine.cq().drain();
        assert!(
            completions.iter().all(|c| c.result.is_ok()),
            "batch {b} had failures"
        );
        reports.push(*engine.last_batch());
    }
    reports
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

fn bench(c: &mut Criterion) {
    let mut by_channels = Vec::new();
    for channels in [1usize, 2, 4] {
        let mut e = engine(channels);
        let reports = run_workload(&mut e);
        by_channels.push((channels, reports));
    }
    let reports_of =
        |ch: usize| -> &Vec<BatchReport> { &by_channels.iter().find(|(c, _)| *c == ch).unwrap().1 };

    // The serial (functional) latency sum is topology-independent: the
    // same commands run the same datapath.
    let serial: Vec<f64> = reports_of(1).iter().map(|r| r.device_latency_s).collect();
    for (channels, reports) in &by_channels {
        for (b, r) in reports.iter().enumerate() {
            assert!(
                (r.device_latency_s - serial[b]).abs() < 1e-12,
                "{channels}ch batch {b}: serial sum drifted"
            );
        }
    }
    // One channel cannot overlap: makespan == serial sum, exactly.
    for (b, r) in reports_of(1).iter().enumerate() {
        assert!(
            (r.parallel_latency_s - r.device_latency_s).abs() < 1e-12,
            "1ch batch {b} must serialize"
        );
    }

    // Paired per-batch medians: batch latency and speedup vs 1 channel.
    let makespans = |ch: usize| -> Vec<f64> {
        reports_of(ch)
            .iter()
            .map(|r| r.parallel_latency_s)
            .collect()
    };
    let m1 = makespans(1);
    let m2 = makespans(2);
    let m4 = makespans(4);
    let paired_speedup =
        |fast: &[f64]| -> f64 { median(m1.iter().zip(fast).map(|(a, b)| a / b).collect()) };
    let speedup2 = paired_speedup(&m2);
    let speedup4 = paired_speedup(&m4);
    let parallelism4 = median(
        reports_of(4)
            .iter()
            .map(|r| r.achieved_parallelism())
            .collect(),
    );

    println!("\n===== parallel_scale — same seeded workload, channels 1 -> 2 -> 4 =====");
    println!(
        "{:>8} {:>16} {:>16} {:>12} {:>12}",
        "channels", "batch p50 (ms)", "makespan sum", "speedup", "utilization"
    );
    for (channels, reports) in &by_channels {
        let p50 = median(reports.iter().map(|r| r.parallel_latency_s).collect());
        let sum: f64 = reports.iter().map(|r| r.parallel_latency_s).sum();
        let util = median(reports.iter().map(|r| r.channel_utilization()).collect());
        println!(
            "{:>8} {:>16.3} {:>16.3} {:>12.2} {:>12.3}",
            channels,
            p50 * 1e3,
            sum * 1e3,
            median(m1.clone()) / p50,
            util
        );
    }
    println!(
        "paired-median batch-latency speedup: 2ch {speedup2:.2}x, 4ch {speedup4:.2}x \
         (achieved parallelism on 4ch: {parallelism4:.2}x)"
    );

    // The acceptance bar: batch latency improves monotonically 1->2->4,
    // and 4 channels beat 1 channel by a sound margin on every batch.
    assert!(speedup2 > 1.2, "2ch speedup = {speedup2}");
    assert!(speedup4 > 1.5, "4ch speedup = {speedup4}");
    assert!(speedup4 > speedup2, "scaling must be monotone");
    for b in 0..BATCHES {
        assert!(m4[b] < m2[b] && m2[b] < m1[b], "batch {b} must scale");
    }

    // The gate record (modeled metrics are identical in smoke and full
    // mode — the workload does not scale down, only the Criterion pass
    // is skipped — so the record is mode-independent).
    let mut record = BenchResult::new(
        "parallel_scale",
        "paired per-batch medians over the seeded workload",
    );
    record.mode = "any".into();
    record.exact = vec![
        ("batches".into(), BATCHES as f64),
        ("commands_per_batch".into(), CMDS_PER_BATCH as f64),
    ];
    record.modeled = vec![
        ("batch_latency_1ch_s".into(), median(m1.clone())),
        ("batch_latency_2ch_s".into(), median(m2.clone())),
        ("batch_latency_4ch_s".into(), median(m4.clone())),
        ("speedup_2ch".into(), speedup2),
        ("speedup_4ch".into(), speedup4),
        ("parallelism_4ch".into(), parallelism4),
    ];
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("parallel_scale");
    for channels in [1usize, 4] {
        let mut e = engine(channels);
        group.bench_function(&format!("workload_{channels}ch"), |b| {
            b.iter(|| black_box(run_workload(&mut e).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
