//! Program-interference baseline: the victim-UBER price of a
//! write-hammer neighbour attack, and what each mitigation buys back.
//!
//! Two seeded scenario presets drive the interference subsystem end to
//! end:
//!
//! * `write_hammer` — an attacker tenant floods its own block range
//!   with write bursts while a victim tenant's parked data sits
//!   read-only on the *same die*. Die-level program disturb presses the
//!   victim's blocks until its reads fail. The identical workload runs
//!   under every mitigation arm: unmitigated, interference-pressure
//!   scrub, stepped read-retry, and both. Reported per arm: the
//!   victim's closing `log10(UBER)` at its worst block's effective
//!   interference RBER, its ECC failures, and the mitigation's own
//!   currency (relocations vs extra senses).
//! * `program_interference` — a self-interfering tenant under a 2%
//!   power-loss fault schedule; its partial-program, reclaim and
//!   failure counters pin the injection path.
//!
//! Everything recorded is deterministic (seeded schedules, modeled
//! time), so the committed baseline under
//! `crates/bench/baselines/program_interference.json` gates CI
//! bit-for-bit on the counters and within tolerance on the modeled
//! UBERs. The headline assertions: the unmitigated victim loses more
//! than a decade of model UBER, and scrub or retry alone each recover
//! at least one decade of it — the PR's acceptance bar. `MLCX_SMOKE=1`
//! skips only the Criterion pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_core::sim::presets::{program_interference, write_hammer, MitigationMode};
use mlcx_core::sim::{PhaseReport, ScenarioReport, ServicePhaseReport};
use std::hint::black_box;

/// The preset seed the recovery guarantees were calibrated at.
const SEED: u64 = 7;

fn phase<'a>(report: &'a ScenarioReport, name: &str) -> &'a PhaseReport {
    report
        .phases
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("phase {name} must exist"))
}

fn victim<'a>(report: &'a ScenarioReport, ph: &str) -> &'a ServicePhaseReport {
    phase(report, ph)
        .services
        .iter()
        .find(|s| s.service == "victim")
        .expect("victim service must exist")
}

fn bench(c: &mut Criterion) {
    let arms = [
        ("none", MitigationMode::None),
        ("scrub", MitigationMode::ScrubOnly),
        ("retry", MitigationMode::RetryOnly),
        ("both", MitigationMode::Both),
    ];
    let reports: Vec<(&str, ScenarioReport)> = arms
        .iter()
        .map(|&(name, mode)| {
            (
                name,
                write_hammer(SEED, mode).run().expect("preset must run"),
            )
        })
        .collect();
    let by_name =
        |name: &str| -> &ScenarioReport { &reports.iter().find(|(n, _)| *n == name).unwrap().1 };
    let none = by_name("none");
    let scrub = by_name("scrub");
    let retry = by_name("retry");

    // The attack lands: the unmitigated victim's parked blocks carry
    // attacker-earned interference RBER and its reads start failing.
    let v_hammer = victim(none, "hammer");
    assert!(
        v_hammer.model_interference_rber > 1e-3,
        "attacker must press the victim: {:e}",
        v_hammer.model_interference_rber
    );
    assert!(v_hammer.read_failures > 0, "victim reads must fail");
    assert_eq!(v_hammer.writes, 0, "the victim is read-only by design");

    // The damage and the recovery, in model-UBER decades at the
    // closing sweep.
    let vv_none = victim(none, "verify");
    let decades_lost = vv_none.model_log10_uber_disturbed - vv_none.model_log10_uber;
    assert!(
        decades_lost > 1.0,
        "the unmitigated victim must lose > 1 decade, lost {decades_lost:.2}"
    );
    let recovered = |arm: &ScenarioReport| {
        vv_none.model_log10_uber_disturbed - victim(arm, "verify").model_log10_uber_disturbed
    };
    let recovered_scrub = recovered(scrub);
    let recovered_retry = recovered(retry);
    // The acceptance bar: either mitigation alone buys back >= 1 decade
    // of the victim's UBER, each paid in its own currency.
    for (name, decades) in [("scrub", recovered_scrub), ("retry", recovered_retry)] {
        assert!(
            decades >= 1.0,
            "{name} must recover >= 1 decade of victim UBER, got {decades:.2}"
        );
    }
    assert!(scrub.total_scrub_relocations > 0, "scrub pays in moves");
    assert!(retry.total_retried_reads > 0, "retry pays in senses");
    assert!(
        retry.read_failures < none.read_failures,
        "retry must recover failing victim reads: {} vs {}",
        retry.read_failures,
        none.read_failures
    );
    // No fault plan on this preset: interference only, zero injections.
    assert_eq!(none.total_injected_partial_programs, 0);

    // The power-loss schedule, pinned by its own preset: programs
    // interrupted, damaged blocks reclaimed under explicit attribution,
    // and the corrupted pages counted as the data loss they are.
    let inj = program_interference(SEED).run().expect("preset must run");
    assert!(inj.total_injected_partial_programs > 0);
    let interference_reclaims: u64 = inj
        .service_reports()
        .map(|s| s.ftl.interference_reclaims)
        .sum();
    assert!(interference_reclaims > 0);

    println!("\n===== program_interference — write-hammer victim, per mitigation arm =====");
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "arm", "i-rber", "lg-uber+d", "rf", "reloc", "retried", "senses", "recovered"
    );
    for (name, report) in &reports {
        let vv = victim(report, "verify");
        println!(
            "{:>6} {:>12.3e} {:>10.2} {:>8} {:>8} {:>8} {:>8} {:>12.2}",
            name,
            victim(report, "hammer").model_interference_rber,
            vv.model_log10_uber_disturbed,
            report.read_failures,
            report.total_scrub_relocations,
            report.total_retried_reads,
            report.total_retry_senses,
            vv_none.model_log10_uber_disturbed - vv.model_log10_uber_disturbed,
        );
    }
    println!(
        "unmitigated victim lost {decades_lost:.2} decades; scrub recovered \
         {recovered_scrub:.2}, retry {recovered_retry:.2}; power-loss preset injected {} \
         partial programs, {} interference reclaims, {} read failures",
        inj.total_injected_partial_programs, interference_reclaims, inj.read_failures
    );

    // The gate record (modeled metrics are identical in smoke and full
    // mode — only the Criterion pass is skipped).
    let mut record = BenchResult::new(
        "program_interference",
        "write-hammer victim UBER per mitigation arm + power-loss injection counters",
    );
    record.mode = "any".into();
    record.exact = vec![
        ("read_failures_none".into(), none.read_failures as f64),
        ("read_failures_scrub".into(), scrub.read_failures as f64),
        ("read_failures_retry".into(), retry.read_failures as f64),
        (
            "interference_reads_none".into(),
            none.total_interference_reads as f64,
        ),
        (
            "scrub_relocations_scrub".into(),
            scrub.total_scrub_relocations as f64,
        ),
        (
            "retried_reads_retry".into(),
            retry.total_retried_reads as f64,
        ),
        ("retry_senses_retry".into(), retry.total_retry_senses as f64),
        (
            "injected_partial_programs".into(),
            inj.total_injected_partial_programs as f64,
        ),
        ("interference_reclaims".into(), interference_reclaims as f64),
        ("read_failures_inj".into(), inj.read_failures as f64),
    ];
    record.modeled = vec![
        (
            "victim_rber_none".into(),
            victim(none, "hammer").model_interference_rber,
        ),
        (
            "victim_uber_none_log10".into(),
            vv_none.model_log10_uber_disturbed,
        ),
        (
            "victim_uber_scrub_log10".into(),
            victim(scrub, "verify").model_log10_uber_disturbed,
        ),
        (
            "victim_uber_retry_log10".into(),
            victim(retry, "verify").model_log10_uber_disturbed,
        ),
        ("decades_lost".into(), decades_lost),
        ("decades_recovered_scrub".into(), recovered_scrub),
        ("decades_recovered_retry".into(), recovered_retry),
    ];
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("program_interference");
    for (name, mode) in arms {
        group.bench_function(&format!("hammer_{name}"), |b| {
            b.iter(|| {
                black_box(
                    write_hammer(SEED, mode)
                        .run()
                        .expect("preset must run")
                        .total_commands,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
