//! Multi-tenant tail-latency baseline: weighted-fair dispatch vs FIFO
//! arrival order on one bank.
//!
//! Three tenant classes (gold weight 8, silver 2, bronze 1) share a
//! single-channel/single-die bank. Every round, each tenant submits a
//! small read burst — bronze first, then silver, then gold, so under
//! FIFO the latency-sensitive gold burst always arrives behind the
//! best-effort backlog. The identical seeded workload runs twice, once
//! under [`SchedPolicy::FifoArrival`] and once under
//! [`SchedPolicy::WeightedFair`], and per-class flow-latency tails
//! (p50/p99/p99.9 of completion-minus-arrival on the virtual clock)
//! are computed from the engine's completion stamps.
//!
//! Everything recorded is deterministic (modeled device time on one
//! virtual clock), so the committed baseline under
//! `crates/bench/baselines/qos_tail.json` gates CI bit-for-bit on the
//! exact counters and within the tolerance band on the modeled tails.
//! The headline assertion: weighted-fair must measurably shrink gold's
//! p99.9 vs FIFO while completing the identical command set.
//! `MLCX_SMOKE=1` skips only the Criterion pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::ControllerConfig;
use mlcx_core::engine::{Command, EngineBuilder, ServiceHandle, StorageEngine};
use mlcx_core::{Objective, QosSpec, SchedPolicy};
use mlcx_nand::DeviceGeometry;
use std::hint::black_box;

const CLASSES: [(&str, f64, usize); 3] =
    [("bronze", 1.0, 12), ("silver", 2.0, 8), ("gold", 8.0, 4)];
const READS_PER_BURST: usize = 2;
const ROUNDS: usize = 40;
const SEED: u64 = 2012;

fn tenant_count() -> usize {
    CLASSES.iter().map(|(_, _, n)| n).sum()
}

fn payload(block: usize, page: usize) -> Vec<u8> {
    (0..4096)
        .map(|i| ((i * 11 + block * 131 + page * 17) % 256) as u8)
        .collect()
}

/// One engine per arm: `tenants` one-block services in class
/// registration order bronze, silver, gold.
fn engine(policy: SchedPolicy) -> (StorageEngine, Vec<(usize, ServiceHandle)>) {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks: tenant_count(),
        pages_per_block: 8,
        ..config.geometry
    };
    let mut engine = EngineBuilder::date2012()
        .controller_config(config)
        .sched_policy(policy)
        .seed(SEED)
        .build()
        .expect("bench engine must build");
    let mut tenants = Vec::new();
    let mut block = 0usize;
    for (class_ix, (class, weight, count)) in CLASSES.iter().enumerate() {
        for i in 0..*count {
            let h = engine
                .register_service_with_qos(
                    &format!("{class}-{i:02}"),
                    Objective::Baseline,
                    block..block + 1,
                    QosSpec::weighted(*weight),
                )
                .expect("service must register");
            tenants.push((class_ix, h));
            block += 1;
        }
    }
    (engine, tenants)
}

/// Runs the seeded workload under one policy; returns per-class flow
/// latencies (seconds) and the total completion count.
fn run_arm(policy: SchedPolicy) -> ([Vec<f64>; 3], usize) {
    let (mut engine, tenants) = engine(policy);

    // Prefill every tenant's block through the engine.
    let mut cmds = Vec::new();
    for &(_, h) in &tenants {
        let block = h.index() as usize;
        cmds.push(Command::erase(h, block));
        for p in 0..READS_PER_BURST {
            cmds.push(Command::write(h, block, p, payload(block, p)));
        }
    }
    engine.sq().submit_owned(cmds).expect("prefill submits");
    assert!(engine.cq().drain().iter().all(|c| c.result.is_ok()));

    let mut flows: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut completed = 0usize;
    for _round in 0..ROUNDS {
        // Arrival order: bronze backlog first, gold burst last.
        for &(_, h) in &tenants {
            let block = h.index() as usize;
            let burst: Vec<Command> = (0..READS_PER_BURST)
                .map(|p| Command::read(h, block, p))
                .collect();
            engine.sq().submit_owned(burst).expect("burst submits");
        }
        for c in engine.cq().drain() {
            assert!(c.result.is_ok());
            let class_ix = tenants[c.service.index() as usize].0;
            flows[class_ix].push(c.flow_s());
            completed += 1;
        }
    }
    for class in &mut flows {
        class.sort_by(|a, b| a.total_cmp(b));
    }
    (flows, completed)
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[(((q * sorted.len() as f64).ceil() as usize).max(1) - 1).min(sorted.len() - 1)]
}

fn bench(c: &mut Criterion) {
    let (fifo, fifo_n) = run_arm(SchedPolicy::FifoArrival);
    let (wf, wf_n) = run_arm(SchedPolicy::WeightedFair);

    // Both arms complete the identical command set.
    let expect = tenant_count() * READS_PER_BURST * ROUNDS;
    assert_eq!(fifo_n, expect);
    assert_eq!(wf_n, expect);
    for (class_ix, (_, _, count)) in CLASSES.iter().enumerate() {
        assert_eq!(fifo[class_ix].len(), count * READS_PER_BURST * ROUNDS);
        assert_eq!(wf[class_ix].len(), count * READS_PER_BURST * ROUNDS);
    }

    println!("\n===== qos_tail — 24 tenants, weighted-fair vs FIFO on one bank =====");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "class", "wt", "fifo p50", "fifo p99", "fifo p999", "wf p50", "wf p99", "wf p999"
    );
    let mut modeled = Vec::new();
    for (class_ix, (class, weight, _)) in CLASSES.iter().enumerate() {
        let row: Vec<f64> = [&fifo[class_ix], &wf[class_ix]]
            .iter()
            .flat_map(|s| [0.50, 0.99, 0.999].map(|q| percentile(s, q)))
            .collect();
        println!(
            "{:>8} {:>6.0} {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>11.3}ms {:>11.3}ms",
            class,
            weight,
            row[0] * 1e3,
            row[1] * 1e3,
            row[2] * 1e3,
            row[3] * 1e3,
            row[4] * 1e3,
            row[5] * 1e3
        );
        for (tag, v) in [
            "fifo_p50",
            "fifo_p99",
            "fifo_p999",
            "wf_p50",
            "wf_p99",
            "wf_p999",
        ]
        .iter()
        .zip(&row)
        {
            modeled.push((format!("{class}_{tag}_s"), *v));
        }
    }

    let gold = CLASSES.len() - 1;
    let fifo_gold_p999 = percentile(&fifo[gold], 0.999);
    let wf_gold_p999 = percentile(&wf[gold], 0.999);
    let improvement_pct = (1.0 - wf_gold_p999 / fifo_gold_p999) * 100.0;
    println!(
        "gold p99.9: fifo {:.3} ms -> weighted-fair {:.3} ms ({improvement_pct:+.1}%)",
        fifo_gold_p999 * 1e3,
        wf_gold_p999 * 1e3
    );

    // The headline: weighted-fair must measurably shrink the favored
    // class's p99.9 (>= 20% on this workload), without losing work.
    assert!(
        wf_gold_p999 < fifo_gold_p999 * 0.8,
        "weighted-fair must cut gold's p99.9 by >= 20%: fifo {fifo_gold_p999}, wf {wf_gold_p999}"
    );
    // And the flip side is bounded starvation, not loss: bronze still
    // completes everything (asserted above) at a worse tail.
    assert!(percentile(&wf[0], 0.999) >= percentile(&fifo[0], 0.999));

    let mut record = BenchResult::new(
        "qos_tail",
        "24 tenants in 3 classes, per-class flow tails, weighted-fair vs FIFO",
    );
    record.mode = "any".into();
    record.exact = vec![
        ("tenants".into(), tenant_count() as f64),
        ("rounds".into(), ROUNDS as f64),
        ("completions_fifo".into(), fifo_n as f64),
        ("completions_wf".into(), wf_n as f64),
    ];
    modeled.push(("gold_p999_improvement_pct".into(), improvement_pct));
    record.modeled = modeled;
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("qos_tail");
    for (name, policy) in [
        ("fifo", SchedPolicy::FifoArrival),
        ("weighted_fair", SchedPolicy::WeightedFair),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run_arm(policy).1)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
