//! Read-retry baseline: the read-latency price — and the UBER payoff —
//! of stepped read-reference retry on retention-shifted data.
//!
//! The same seeded read-serve runs twice against a mid-life bank whose
//! working set was parked 20,000 hours under a (demo-scaled) retention
//! model harsh enough that nominal-reference reads come back
//! uncorrectable: once with retry disabled (every read of parked data
//! fails), once with the date2012 ladder walking each failing block to
//! its shifted optimum and learning the offset so steady state is
//! single-sense. Reported per arm:
//!
//! * p50/p95 host read latency (per-command modeled latency, retry
//!   senses included);
//! * the model `log10(UBER)` at the worst block's endurance + effective
//!   disturb RBER — *effective* meaning at each block's learned read
//!   reference, so the retry arm's recovery is visible (>= 1 decade is
//!   the PR's acceptance bar);
//! * uncorrectable decodes actually hit by the functional datapath.
//!
//! Everything asserted is deterministic (seeded injection, modeled
//! time), so the committed baseline under
//! `crates/bench/baselines/read_retry.json` gates CI regardless of
//! container noise. `MLCX_SMOKE=1` skips only the Criterion pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::retry::RetryPolicy;
use mlcx_controller::ControllerConfig;
use mlcx_core::engine::{Command, EngineBuilder, StorageEngine};
use mlcx_core::Objective;
use mlcx_nand::disturb::DisturbModel;
use mlcx_nand::DeviceGeometry;
use std::hint::black_box;

const BLOCKS: usize = 16;
const PAGES_PER_BLOCK: usize = 16;
const HOT_BLOCKS: usize = 4;
const BATCHES: usize = 12;
const READS_PER_BATCH: usize = 32;
const SEED: u64 = 2012;
const MID_LIFE_CYCLES: u64 = 100_000;
const PARK_HOURS: f64 = 20_000.0;

fn engine(retry: bool) -> StorageEngine {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks: BLOCKS,
        pages_per_block: PAGES_PER_BLOCK,
        ..config.geometry
    };
    config.disturb = DisturbModel {
        // Demo-scaled retention: after the park the working set carries
        // ~2.7e-3 additive RBER (~90 raw errors per codeword —
        // uncorrectable at the mid-life schedule), a Vth shift of ~2.7
        // reference steps — within the date2012 ladder's +/-4 reach.
        retention_scale: 2e-3,
        rber_per_step: 1e-3,
        ..DisturbModel::disabled()
    };
    let mut builder = EngineBuilder::date2012()
        .controller_config(config)
        .seed(SEED);
    if retry {
        builder = builder.retry_policy(RetryPolicy::date2012());
    }
    let mut engine = builder.build().expect("bench engine must build");
    engine
        .register_service("serving", Objective::Baseline, 0..BLOCKS)
        .expect("service must register");
    // Mid-life wear *before* the writes: retention acceleration keys
    // off program-time wear, and the schedule still has ladder-reach
    // margin (at end of life the shift would outrun +/-4 steps).
    engine.controller_mut().age_all(MID_LIFE_CYCLES);
    engine
}

fn payload(block: usize, page: usize) -> Vec<u8> {
    (0..4096)
        .map(|i| ((i * 17 + block * 31 + page * 131) % 256) as u8)
        .collect()
}

struct ArmResult {
    read_latencies_s: Vec<f64>,
    retry_reads: u64,
    retry_senses: u64,
    retry_latency_s: f64,
    uncorrectable: u64,
    worst_effective_rber: f64,
}

/// Writes the hot working set, parks it, then serves seeded random
/// reads against the shifted data.
fn run_workload(engine: &mut StorageEngine) -> ArmResult {
    let svc = engine.service("serving").expect("service exists");
    let mut cmds = Vec::new();
    for block in 0..HOT_BLOCKS {
        cmds.push(Command::erase(svc, block));
        for page in 0..PAGES_PER_BLOCK {
            cmds.push(Command::write(svc, block, page, payload(block, page)));
        }
    }
    engine.sq().submit_owned(cmds).expect("prefill submits");
    assert!(engine.cq().drain().iter().all(|c| c.result.is_ok()));
    // Park: the stored pages age against the retention model.
    engine.advance_hours(PARK_HOURS);

    let mut out = ArmResult {
        read_latencies_s: Vec::with_capacity(BATCHES * READS_PER_BATCH),
        retry_reads: 0,
        retry_senses: 0,
        retry_latency_s: 0.0,
        uncorrectable: 0,
        worst_effective_rber: 0.0,
    };
    // Deterministic page picker (xorshift), identical across the arms.
    let mut state = SEED | 1;
    let mut next = |modulo: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % modulo
    };

    for _batch in 0..BATCHES {
        let mut cmds = Vec::with_capacity(READS_PER_BATCH);
        for _ in 0..READS_PER_BATCH {
            cmds.push(Command::read(svc, next(HOT_BLOCKS), next(PAGES_PER_BLOCK)));
        }
        engine.sq().submit_owned(cmds).expect("batch submits");
        for c in engine.cq().drain() {
            match c.result.expect("commands succeed") {
                mlcx_core::engine::CommandOutput::Read(r) => {
                    out.read_latencies_s.push(r.latency_s);
                    if !r.outcome.is_success() {
                        out.uncorrectable += 1;
                    }
                }
                other => panic!("read produced {other:?}"),
            }
        }
        let batch = engine.last_batch();
        out.retry_reads += batch.retry_reads;
        out.retry_senses += batch.retry_senses;
        out.retry_latency_s += batch.retry_latency_s;
    }
    let ctrl = engine.controller();
    out.worst_effective_rber = (0..BLOCKS)
        .map(|b| ctrl.block_effective_disturb_rber(b).unwrap())
        .fold(0.0, f64::max);
    out
}

fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(((q * sorted.len() as f64).ceil() as usize).max(1) - 1).min(sorted.len() - 1)]
}

fn bench(c: &mut Criterion) {
    let mut e_off = engine(false);
    let off = run_workload(&mut e_off);
    let mut e_on = engine(true);
    let on = run_workload(&mut e_on);

    assert_eq!(off.retry_reads, 0);
    assert!(
        off.uncorrectable > 0,
        "parked reads must fail without retry"
    );
    assert!(on.retry_reads > 0, "the ladder must have walked");
    assert!(on.retry_senses >= on.retry_reads);
    assert!(
        on.uncorrectable < off.uncorrectable / 4,
        "retry must recover most failing reads: {} vs {}",
        on.uncorrectable,
        off.uncorrectable
    );
    let learned = e_on.controller().read_offsets().len() as u64;
    assert!(learned > 0, "successful walks must learn offsets");

    // The model UBER at the worst block's endurance + *effective*
    // disturb RBER (at the learned read reference, where one exists).
    let model = e_off.model();
    let op = model.configure(Objective::Baseline, MID_LIFE_CYCLES);
    let endurance = model.rber(op.algorithm, MID_LIFE_CYCLES);
    let uber_off = model.log10_uber_at_rber(&op, endurance + off.worst_effective_rber);
    let uber_on = model.log10_uber_at_rber(&op, endurance + on.worst_effective_rber);
    let recovery = uber_off - uber_on;

    let p95_off = percentile(&off.read_latencies_s, 0.95);
    let p95_on = percentile(&on.read_latencies_s, 0.95);
    let p50_off = percentile(&off.read_latencies_s, 0.50);
    let p50_on = percentile(&on.read_latencies_s, 0.50);
    let total_off: f64 = off.read_latencies_s.iter().sum();
    let total_on: f64 = on.read_latencies_s.iter().sum();

    println!("\n===== read_retry — parked working set, retry off vs on =====");
    println!(
        "{:>6} {:>13} {:>13} {:>8} {:>8} {:>13} {:>14} {:>10}",
        "arm",
        "p50 read(us)",
        "p95 read(us)",
        "uncorr",
        "senses",
        "retry t(ms)",
        "eff d-rber",
        "lg-uber"
    );
    for (name, arm, uber) in [("off", &off, uber_off), ("on", &on, uber_on)] {
        println!(
            "{:>6} {:>13.2} {:>13.2} {:>8} {:>8} {:>13.3} {:>14.2e} {:>10.2}",
            name,
            percentile(&arm.read_latencies_s, 0.50) * 1e6,
            percentile(&arm.read_latencies_s, 0.95) * 1e6,
            arm.uncorrectable,
            arm.retry_senses,
            arm.retry_latency_s * 1e3,
            arm.worst_effective_rber,
            uber
        );
    }
    println!(
        "retry recovered {recovery:.1} decades of model UBER and {} of {} \
         failed reads for {:.3} ms of extra senses ({} offsets learned)",
        off.uncorrectable - on.uncorrectable,
        off.uncorrectable,
        on.retry_latency_s * 1e3,
        learned
    );

    // The acceptance bar: >= 1 decade of model UBER recovered, paid in
    // read latency (extra senses), with zero data movement.
    assert!(
        recovery >= 1.0,
        "retry must recover >= 1 decade of model UBER, got {recovery:.2}"
    );
    assert!(
        total_on > total_off,
        "retry senses must show up in total read time: on {total_on} vs off {total_off}"
    );
    assert!(on.retry_latency_s > 0.0);

    // The gate record (modeled metrics are identical in smoke and full
    // mode — only the Criterion pass is skipped).
    let mut record = BenchResult::new(
        "read_retry",
        "parked working set, retry off vs on, p95 host read latency",
    );
    record.mode = "any".into();
    record.exact = vec![
        ("batches".into(), BATCHES as f64),
        ("reads_per_batch".into(), READS_PER_BATCH as f64),
        ("uncorrectable_off".into(), off.uncorrectable as f64),
        ("uncorrectable_on".into(), on.uncorrectable as f64),
        ("retry_reads_on".into(), on.retry_reads as f64),
        ("retry_senses_on".into(), on.retry_senses as f64),
        ("offsets_learned_on".into(), learned as f64),
    ];
    record.modeled = vec![
        ("p50_read_off_s".into(), p50_off),
        ("p50_read_on_s".into(), p50_on),
        ("p95_read_off_s".into(), p95_off),
        ("p95_read_on_s".into(), p95_on),
        ("retry_latency_on_s".into(), on.retry_latency_s),
        ("uber_off_log10".into(), uber_off),
        ("uber_on_log10".into(), uber_on),
        ("uber_recovery_decades".into(), recovery),
    ];
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("read_retry");
    for (name, retry) in [("off", false), ("on", true)] {
        group.bench_function(&format!("serve_{name}"), |b| {
            b.iter(|| {
                let mut e = engine(retry);
                black_box(run_workload(&mut e).read_latencies_s.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
