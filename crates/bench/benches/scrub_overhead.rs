//! Scrub-overhead baseline: the host-visible cost — and the UBER payoff
//! — of background read-reclaim under a read-hot workload.
//!
//! The same seeded read-hammer runs twice on an end-of-life bank with an
//! (aggressive, demo-scaled) read-disturb model: once with the scrubber
//! off, once with a read-threshold scrubber that relocates and erases
//! the hottest block between batches, its maintenance commands riding
//! the *next* host batch — so scrub traffic genuinely competes with host
//! reads for the device. Reported per arm:
//!
//! * host-visible p95 batch-completion latency (the engine's modeled
//!   batch makespan — what a polling host actually waits);
//! * the model `log10(UBER)` at the worst block's endurance + disturb
//!   RBER (the scrubber must recover >= 1 decade — the PR's acceptance
//!   bar);
//! * uncorrectable decodes actually hit by the functional datapath
//!   (unscrubbed hammering drives the raw error count past `t = 65`).
//!
//! Everything asserted is deterministic (seeded injection, modeled
//! time), so the committed baseline under
//! `crates/bench/baselines/scrub_overhead.json` gates CI regardless of
//! container noise. `MLCX_SMOKE=1` skips only the Criterion pass.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::scrub::{ScrubPolicy, Scrubber};
use mlcx_controller::ControllerConfig;
use mlcx_core::engine::{Command, EngineBuilder, StorageEngine};
use mlcx_core::Objective;
use mlcx_nand::disturb::DisturbModel;
use mlcx_nand::DeviceGeometry;
use std::hint::black_box;

const BLOCKS: usize = 16;
const PAGES_PER_BLOCK: usize = 16;
const HOT_BLOCKS: usize = 4;
const BATCHES: usize = 24;
const READS_PER_BATCH: usize = 48;
const SEED: u64 = 2012;
const READ_THRESHOLD: u64 = 60;

fn engine() -> StorageEngine {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks: BLOCKS,
        pages_per_block: PAGES_PER_BLOCK,
        ..config.geometry
    };
    config.disturb = DisturbModel {
        // Demo-scaled so ~100 reads matter (the date2012 constant needs
        // ~100k); everything downstream is relative between the arms.
        read_disturb_per_read: 1.5e-6,
        ..DisturbModel::disabled()
    };
    let mut engine = EngineBuilder::date2012()
        .controller_config(config)
        .seed(SEED)
        .build()
        .expect("bench engine must build");
    engine
        .register_service("serving", Objective::Baseline, 0..BLOCKS)
        .expect("service must register");
    // End of life: the SV schedule runs at t = 65 with ~37 mean raw
    // errors per read — real margin for disturb to eat.
    engine.controller_mut().age_all(1_000_000);
    engine
}

fn payload(block: usize, page: usize) -> Vec<u8> {
    (0..4096)
        .map(|i| ((i * 17 + block * 31 + page * 131) % 256) as u8)
        .collect()
}

struct ArmResult {
    batch_latencies_s: Vec<f64>,
    scrub_relocations: u64,
    scrub_erases: u64,
    uncorrectable: u64,
    worst_disturb_rber: f64,
}

/// Runs the seeded read-hammer, optionally with read-reclaim between
/// batches. Hot data lives on `HOT_BLOCKS` physical blocks that reclaim
/// migrates around the bank; the remaining blocks are erased spares.
fn run_workload(engine: &mut StorageEngine, scrub: bool) -> ArmResult {
    let svc = engine.service("serving").expect("service exists");
    // Prefill the hot set; the rest of the bank stays erased.
    let mut cmds = Vec::new();
    for block in 0..BLOCKS {
        cmds.push(Command::erase(svc, block));
    }
    for block in 0..HOT_BLOCKS {
        for page in 0..PAGES_PER_BLOCK {
            cmds.push(Command::write(svc, block, page, payload(block, page)));
        }
    }
    engine.sq().submit_owned(cmds).expect("prefill submits");
    assert!(engine.cq().drain().iter().all(|c| c.result.is_ok()));

    // Current physical home of each hot slot, and the erased spares.
    let mut hot: Vec<usize> = (0..HOT_BLOCKS).collect();
    let mut spares: VecDeque<usize> = (HOT_BLOCKS..BLOCKS).collect();
    let scrubber = Scrubber::new(ScrubPolicy {
        read_threshold: READ_THRESHOLD,
        retention_age_hours: f64::INFINITY,
        interference_rber_threshold: f64::INFINITY,
        max_blocks_per_pass: 1,
    });

    let mut out = ArmResult {
        batch_latencies_s: Vec::with_capacity(BATCHES),
        scrub_relocations: 0,
        scrub_erases: 0,
        uncorrectable: 0,
        worst_disturb_rber: 0.0,
    };
    // Deterministic page picker (xorshift), identical across the arms.
    let mut state = SEED | 1;
    let mut next = |modulo: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % modulo
    };

    for _batch in 0..BATCHES {
        let mut cmds = Vec::new();
        if scrub {
            // Maintenance planned against the drained state rides ahead
            // of this batch's host reads, competing for the device.
            let candidates = scrubber.candidates(engine.controller().device(), 0..BLOCKS);
            if let Some(&victim) = candidates.first() {
                let spare = spares.pop_front().expect("a spare block is always free");
                for page in 0..PAGES_PER_BLOCK {
                    cmds.push(Command::relocate(svc, (victim, page), (spare, page)));
                }
                cmds.push(Command::scrub_erase(svc, victim));
                let slot = hot
                    .iter()
                    .position(|&b| b == victim)
                    .expect("victim is hot");
                hot[slot] = spare;
                spares.push_back(victim);
            }
        }
        for _ in 0..READS_PER_BATCH {
            let block = hot[next(HOT_BLOCKS)];
            let page = next(PAGES_PER_BLOCK);
            cmds.push(Command::read(svc, block, page));
        }
        engine.sq().submit_owned(cmds).expect("batch submits");
        for c in engine.cq().drain() {
            match c.result.expect("commands succeed") {
                mlcx_core::engine::CommandOutput::Read(r) if !r.outcome.is_success() => {
                    out.uncorrectable += 1;
                }
                mlcx_core::engine::CommandOutput::Relocate { read_ok: false, .. } => {
                    out.uncorrectable += 1;
                }
                _ => {}
            }
        }
        let batch = engine.last_batch();
        out.batch_latencies_s.push(batch.parallel_latency_s);
        out.scrub_relocations += batch.scrub_relocations;
        out.scrub_erases += batch.scrub_erases;
    }
    let device = engine.controller().device();
    out.worst_disturb_rber = (0..BLOCKS)
        .map(|b| device.block_disturb_rber(b).unwrap())
        .fold(0.0, f64::max);
    out
}

fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[(((q * sorted.len() as f64).ceil() as usize).max(1) - 1).min(sorted.len() - 1)]
}

fn bench(c: &mut Criterion) {
    let mut e_off = engine();
    let off = run_workload(&mut e_off, false);
    let mut e_on = engine();
    let on = run_workload(&mut e_on, true);

    assert_eq!(off.scrub_relocations, 0);
    assert!(on.scrub_relocations > 0, "the scrubber must have run");
    assert!(on.scrub_erases > 0);

    // The model UBER at the worst block's endurance + disturb RBER.
    let model = e_off.model();
    let op = model.configure(Objective::Baseline, 1_000_000);
    let endurance = model.rber(op.algorithm, 1_000_000);
    let uber_off = model.log10_uber_at_rber(&op, endurance + off.worst_disturb_rber);
    let uber_on = model.log10_uber_at_rber(&op, endurance + on.worst_disturb_rber);
    let recovery = uber_off - uber_on;

    let p95_off = percentile(&off.batch_latencies_s, 0.95);
    let p95_on = percentile(&on.batch_latencies_s, 0.95);
    let p50_off = percentile(&off.batch_latencies_s, 0.50);
    let p50_on = percentile(&on.batch_latencies_s, 0.50);
    let overhead_pct = (p95_on / p95_off - 1.0) * 100.0;

    println!("\n===== scrub_overhead — read-hot hammer, scrubber off vs on =====");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "arm", "p50 batch(ms)", "p95 batch(ms)", "reloc", "erases", "worst d-rber", "lg-uber"
    );
    for (name, arm, uber) in [("off", &off, uber_off), ("on", &on, uber_on)] {
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>12} {:>12} {:>14.2e} {:>12.2}",
            name,
            percentile(&arm.batch_latencies_s, 0.50) * 1e3,
            percentile(&arm.batch_latencies_s, 0.95) * 1e3,
            arm.scrub_relocations,
            arm.scrub_erases,
            arm.worst_disturb_rber,
            uber
        );
    }
    println!(
        "host-visible p95 overhead: {overhead_pct:+.1}%; model UBER recovered: \
         {recovery:.1} decades; uncorrectable reads off/on: {}/{}",
        off.uncorrectable, on.uncorrectable
    );

    // The acceptance bar: >= 1 decade of model UBER recovered, at a
    // visible (reported) host-latency cost.
    assert!(
        recovery >= 1.0,
        "scrubbing must recover >= 1 decade of model UBER, got {recovery:.2}"
    );
    assert!(
        p95_on > p95_off,
        "maintenance must show up in the host-visible p95: on {p95_on} vs off {p95_off}"
    );
    assert!(
        on.worst_disturb_rber < off.worst_disturb_rber,
        "reclaim must bound the disturb accumulator"
    );
    assert!(
        on.uncorrectable <= off.uncorrectable,
        "scrubbing must not create decode failures"
    );

    // The gate record (modeled metrics are identical in smoke and full
    // mode — only the Criterion pass is skipped).
    let mut record = BenchResult::new(
        "scrub_overhead",
        "read-hot hammer, scrubber off vs on, p95 batch completion",
    );
    record.mode = "any".into();
    record.exact = vec![
        ("batches".into(), BATCHES as f64),
        ("reads_per_batch".into(), READS_PER_BATCH as f64),
        ("scrub_relocations_on".into(), on.scrub_relocations as f64),
        ("scrub_erases_on".into(), on.scrub_erases as f64),
        ("uncorrectable_off".into(), off.uncorrectable as f64),
        ("uncorrectable_on".into(), on.uncorrectable as f64),
    ];
    record.modeled = vec![
        ("p50_batch_off_s".into(), p50_off),
        ("p50_batch_on_s".into(), p50_on),
        ("p95_batch_off_s".into(), p95_off),
        ("p95_batch_on_s".into(), p95_on),
        ("p95_overhead_pct".into(), overhead_pct),
        ("uber_off_log10".into(), uber_off),
        ("uber_on_log10".into(), uber_on),
        ("uber_recovery_decades".into(), recovery),
    ];
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }
    let mut group = c.benchmark_group("scrub_overhead");
    for (name, scrub) in [("off", false), ("on", true)] {
        group.bench_function(&format!("hammer_{name}"), |b| {
            b.iter(|| {
                let mut e = engine();
                black_box(run_workload(&mut e, scrub).batch_latencies_s.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
