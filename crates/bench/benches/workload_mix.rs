//! Workload-mix baseline: a two-service trace-driven scenario (zipf
//! key-value store + sequential log) run through the simulator under
//! two operating-point memoization policies — `WearBucketing::Log2`
//! (power-of-two wear buckets) vs the legacy `PerPage` re-derivation.
//!
//! Unlike the engine_batch bench — where same-wear batches make the
//! memoization win systematic — FTL traffic churns the wear of every
//! block (each GC erase bumps its cycle count), so the *wall-clock*
//! delta between the policies sits near the noise floor of a container:
//! the BCH datapath dominates. The recorded baseline therefore asserts
//! the **deterministic structural counters** (Log2 must collapse the
//! model derivations by an order of magnitude) and reports the paired
//! wall-clock medians without failing on their sign; both policies must
//! of course execute identical traffic with zero integrity violations.
//!
//! Timings use strictly alternating paired samples and medians (clock
//! drift on this container hits both workloads equally; see
//! engine_batch).
//!
//! Set `MLCX_SMOKE=1` to run a single tiny iteration (the CI bit-rot
//! guard): wall-clock sampling shrinks to one short paired round, the
//! Criterion pass is skipped, every functional assertion still runs.
//! Each run writes a machine-readable record the `bench_gate` binary
//! compares against `crates/bench/baselines/workload_mix.json`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mlcx_bench::{smoke, BenchResult};
use mlcx_controller::ControllerConfig;
use mlcx_core::engine::{EngineBuilder, WearBucketing};
use mlcx_core::sim::{Scenario, ScenarioReport, TraceKind};
use mlcx_core::Objective;
use mlcx_nand::DeviceGeometry;
use std::hint::black_box;

/// The scenario under test: two services, two lifetime phases with a
/// fast-forward to end of life between them.
fn scenario(bucketing: WearBucketing, ops: usize) -> Scenario {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks: 16,
        pages_per_block: 16,
        ..config.geometry
    };
    Scenario::builder()
        .engine(EngineBuilder::date2012().controller_config(config))
        .wear_bucketing(bucketing)
        .seed(4096)
        .batch_size(64)
        .prefill(true)
        .service("kv", Objective::Baseline, 0..8, TraceKind::zipfian())
        .service(
            "log",
            Objective::MaxReadThroughput,
            8..16,
            TraceKind::Sequential,
        )
        .phase("fresh", ops, 1_000_000)
        .phase("eol", ops, 0)
        .build()
        .expect("bench scenario must validate")
}

fn run(bucketing: WearBucketing, ops: usize) -> ScenarioReport {
    let report = scenario(bucketing, ops).run().expect("scenario must run");
    assert_eq!(report.integrity_violations, 0, "workload corrupted data");
    assert_eq!(report.read_failures, 0, "ECC failed under the workload");
    report
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// One round of strictly alternating paired timings. Returns
/// (log2 median, per-page median, median per-pair difference).
fn measure_round(ops: usize, samples: usize) -> (f64, f64, f64) {
    let mut log2 = Vec::with_capacity(samples);
    let mut perpage = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(run(WearBucketing::Log2, ops));
        log2.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        black_box(run(WearBucketing::PerPage, ops));
        perpage.push(start.elapsed().as_secs_f64());
    }
    let diffs: Vec<f64> = perpage.iter().zip(&log2).map(|(p, e)| p - e).collect();
    (median(log2), median(perpage), median(diffs))
}

fn bench(c: &mut Criterion) {
    let ops = if smoke() { 12 } else { 120 };

    // Functional record (and the whole CI smoke path): the scenario
    // runs clean and reproduces exactly; both policies execute the
    // identical traffic; Log2 absorbs the derivation pressure.
    let log2_report = run(WearBucketing::Log2, ops);
    assert_eq!(
        log2_report,
        run(WearBucketing::Log2, ops),
        "scenario must reproduce deterministically"
    );
    let perpage_report = run(WearBucketing::PerPage, ops);
    println!("\n===== workload_mix — 2-service trace scenario (zipf kv + sequential log) =====");
    println!("{}", log2_report.render());
    assert_eq!(log2_report.total_commands, perpage_report.total_commands);
    assert_eq!(perpage_report.op_cache_hits, 0, "PerPage never memoizes");
    assert!(
        log2_report.op_cache_misses * 10 <= perpage_report.op_cache_misses,
        "Log2 buckets must collapse derivations >=10x: {} vs {}",
        log2_report.op_cache_misses,
        perpage_report.op_cache_misses,
    );
    println!(
        "operating-point derivations: {} (PerPage) -> {} (Log2), {} cache hits",
        perpage_report.op_cache_misses, log2_report.op_cache_misses, log2_report.op_cache_hits,
    );

    let kv_eol = log2_report
        .phases
        .iter()
        .find(|p| p.name == "eol")
        .expect("eol phase")
        .services
        .first()
        .expect("kv service");
    let mut record = BenchResult::new(
        "workload_mix",
        "2-service trace scenario, Log2 memoization vs PerPage re-derivation",
    );
    record.exact = vec![
        ("ops_per_service_per_phase".into(), ops as f64),
        (
            "op_derivations_log2".into(),
            log2_report.op_cache_misses as f64,
        ),
        (
            "op_derivations_perpage".into(),
            perpage_report.op_cache_misses as f64,
        ),
        ("total_commands".into(), log2_report.total_commands as f64),
        ("verified_pages".into(), log2_report.verified_pages as f64),
        (
            "integrity_violations".into(),
            log2_report.integrity_violations as f64,
        ),
        ("read_failures".into(), log2_report.read_failures as f64),
    ];
    record.modeled = vec![
        ("device_time_s".into(), log2_report.total_device_time_s),
        ("parallel_time_s".into(), log2_report.total_parallel_time_s),
        ("total_energy_j".into(), log2_report.total_energy_j),
        (
            "kv_eol_write_amplification".into(),
            kv_eol.write_amplification,
        ),
    ];

    // Paired wall-clock record (reported, not asserted — the BCH
    // datapath dominates and the delta sits near the noise floor). The
    // smoke run keeps one short round so the gate tracks gross
    // slowdowns of the whole simulator path.
    let samples = if smoke() { 2 } else { 7 };
    let (log2_s, perpage_s, paired_diff_s) = measure_round(ops, samples);
    println!("\n===== workload_mix paired timings =====");
    println!("memoized (Log2)    : {:>9.3} ms/scenario", log2_s * 1e3);
    println!("re-derive (PerPage): {:>9.3} ms/scenario", perpage_s * 1e3);
    println!(
        "memoization delta: {:+.1}% (paired-median {:+.0} us)",
        (perpage_s / log2_s - 1.0) * 100.0,
        paired_diff_s * 1e6
    );
    record.wall = vec![("log2_s".into(), log2_s), ("perpage_s".into(), perpage_s)];
    record.write();

    if smoke() {
        println!("smoke mode: skipping the Criterion pass");
        return;
    }

    // Criterion timing for the record.
    let mut group = c.benchmark_group("workload_mix");
    group.bench_function("scenario_log2", |b| {
        b.iter(|| black_box(run(WearBucketing::Log2, ops)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
