//! The bench-regression gate.
//!
//! Compares the records the performance benches wrote under
//! `target/bench-results/` against the committed baselines under
//! `crates/bench/baselines/`, and exits non-zero on a regression:
//!
//! * `exact` metrics (structural counters) must match bit-for-bit;
//! * `modeled` metrics (deterministic modeled time/energy/speedup) must
//!   stay within the baseline's `modeled_tolerance_pct` band — a
//!   deliberate model change fails loudly until the baselines are
//!   refreshed;
//! * `wall` metrics (paired-median wall-clock) are flagged when
//!   *slower* than the baseline by more than `wall_tolerance_pct` —
//!   but as a **warning** by default: absolute wall-clock baselines
//!   are calibrated to the machine that recorded them and do not
//!   transfer to a differently-provisioned runner. Pass `--strict-wall`
//!   (e.g. on a runner whose baselines were recorded on that same
//!   hardware class) to make wall overruns fail the gate too. Noise
//!   within the band and improvements always pass.
//!
//! Usage (see EXPERIMENTS.md):
//!
//! ```text
//! MLCX_SMOKE=1 cargo bench -p mlcx-bench --bench workload_mix \
//!     --bench engine_batch --bench parallel_scale
//! cargo run -p mlcx-bench --bin bench_gate            # compare
//! cargo run -p mlcx-bench --bin bench_gate -- --update  # refresh baselines
//! ```
//!
//! `--update` also *creates* baselines for result records that have no
//! committed counterpart yet, so a newly added bench is gated from its
//! first refresh; a plain run warns about such ungated results.

use std::process::ExitCode;

use mlcx_bench::{baselines_dir, results_dir, BenchResult};

/// One metric comparison's outcome.
struct Check {
    metric: String,
    baseline: f64,
    actual: f64,
    ok: bool,
    rule: &'static str,
}

/// Result metric keys the baseline does not know about (a metric added
/// to a bench after the last refresh): reported so a new metric is
/// never silently ungated.
fn ungated_metrics(baseline: &BenchResult, result: &BenchResult) -> Vec<String> {
    let sections = [
        ("exact", &baseline.exact, &result.exact),
        ("modeled", &baseline.modeled, &result.modeled),
        ("wall", &baseline.wall, &result.wall),
    ];
    let mut extra = Vec::new();
    for (rule, base, res) in sections {
        for (key, _) in res.iter() {
            if !base.iter().any(|(k, _)| k == key) {
                extra.push(format!("{rule}.{key}"));
            }
        }
    }
    extra
}

fn compare(baseline: &BenchResult, result: &BenchResult) -> Result<Vec<Check>, String> {
    if baseline.mode != result.mode {
        return Err(format!(
            "baseline recorded in {:?} mode but the bench ran in {:?} mode \
             (set MLCX_SMOKE=1 to match the committed baselines)",
            baseline.mode, result.mode
        ));
    }
    let lookup = |set: &[(String, f64)], key: &str| -> Option<f64> {
        set.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    };
    let mut checks = Vec::new();
    for &(ref key, expect) in &baseline.exact {
        let actual = lookup(&result.exact, key)
            .ok_or_else(|| format!("result is missing exact metric {key:?}"))?;
        checks.push(Check {
            metric: key.clone(),
            baseline: expect,
            actual,
            ok: (actual - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            rule: "exact",
        });
    }
    for &(ref key, expect) in &baseline.modeled {
        let actual = lookup(&result.modeled, key)
            .ok_or_else(|| format!("result is missing modeled metric {key:?}"))?;
        let band = baseline.modeled_tolerance_pct / 100.0;
        // mlcx-lint: allow(float-eq, reason = "exact zero sentinel guards the division below; any nonzero baseline takes the relative branch")
        let ok = if expect == 0.0 {
            actual.abs() <= band
        } else {
            ((actual - expect) / expect).abs() <= band
        };
        checks.push(Check {
            metric: key.clone(),
            baseline: expect,
            actual,
            ok,
            rule: "modeled",
        });
    }
    for &(ref key, expect) in &baseline.wall {
        let actual = lookup(&result.wall, key)
            .ok_or_else(|| format!("result is missing wall metric {key:?}"))?;
        // Lower is better; only a slowdown beyond the band fails.
        let ok = actual <= expect * (1.0 + baseline.wall_tolerance_pct / 100.0);
        checks.push(Check {
            metric: key.clone(),
            baseline: expect,
            actual,
            ok,
            rule: "wall",
        });
    }
    Ok(checks)
}

/// Renders the failed checks of one bench as a per-field diff table —
/// baseline vs current value, absolute and relative delta — so a gate
/// failure in CI is diagnosable from the log alone.
fn render_diff_table(bench: &str, failed: &[&Check]) -> String {
    let mut out = format!(
        "  {bench}: {} metric(s) outside their baseline bands:\n  {:7} {:40} {:>14} {:>14} {:>14} {:>10}\n",
        failed.len(),
        "rule",
        "metric",
        "baseline",
        "current",
        "delta",
        "rel"
    );
    for c in failed {
        let delta = c.actual - c.baseline;
        // mlcx-lint: allow(float-eq, reason = "exact zero sentinel guards the relative-delta division below")
        let rel = if c.baseline == 0.0 {
            "n/a".to_string()
        } else {
            format!("{:+.3}%", delta / c.baseline * 100.0)
        };
        out.push_str(&format!(
            "  {:7} {:40} {:>14.6} {:>14.6} {:>+14.6} {:>10}\n",
            c.rule, c.metric, c.baseline, c.actual, delta, rel
        ));
    }
    out
}

fn load(path: &std::path::Path) -> Result<BenchResult, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    BenchResult::from_json(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// JSON files of a directory, sorted (empty when the dir is absent).
fn json_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    entries
}

fn run(update: bool, strict_wall: bool) -> Result<bool, String> {
    let baselines = baselines_dir();
    let results = results_dir();
    let entries = json_files(&baselines);
    if entries.is_empty() && !update {
        return Err(format!("no baselines under {}", baselines.display()));
    }

    let mut all_ok = true;
    let mut missing = Vec::new();
    let mut covered = Vec::new();
    for baseline_path in &entries {
        let baseline = load(baseline_path)?;
        let result_path = results.join(format!("{}.json", baseline.bench));
        if !result_path.exists() {
            missing.push(baseline.bench.clone());
            continue;
        }
        covered.push(baseline.bench.clone());
        let result = load(&result_path)?;
        if update {
            // Re-serialize through the shared `mlcx_bench::json` writer
            // (rather than copying bytes) so refreshed baselines always
            // carry the canonical dialect, whatever wrote the record.
            std::fs::write(baseline_path, result.to_json())
                .map_err(|e| format!("update {}: {e}", baseline_path.display()))?;
            println!(
                "refreshed {} from {}",
                baseline_path.display(),
                result_path.display()
            );
            continue;
        }
        println!("\n== {} (mode: {}) ==", baseline.bench, baseline.mode);
        let checks = compare(&baseline, &result).map_err(|e| format!("{}: {e}", baseline.bench))?;
        let mut failed = Vec::new();
        for c in &checks {
            // Wall overruns are advisory unless --strict-wall: absolute
            // wall baselines are calibrated to the recording machine.
            let fatal = c.rule != "wall" || strict_wall;
            let tag = match (c.ok, fatal) {
                (true, _) => "ok",
                (false, true) => "FAIL",
                (false, false) => "warn",
            };
            println!(
                "  [{}] {:7} {:40} baseline {:>14.6}  actual {:>14.6}",
                tag, c.rule, c.metric, c.baseline, c.actual
            );
            if !c.ok && fatal {
                failed.push(c);
            }
            all_ok &= c.ok || !fatal;
        }
        if !failed.is_empty() {
            print!("{}", render_diff_table(&baseline.bench, &failed));
        }
        for metric in ungated_metrics(&baseline, &result) {
            println!(
                "  [warn] {metric} is in the result but not the baseline — \
                 NOT gated; refresh with `bench_gate -- --update`"
            );
        }
    }
    if !missing.is_empty() {
        return Err(format!(
            "no bench results for {:?} under {} — run the benches first \
             (MLCX_SMOKE=1 cargo bench -p mlcx-bench)",
            missing,
            results.display()
        ));
    }

    // Result records with no committed baseline: a newly added bench.
    // `--update` adopts them as fresh baselines; a plain run warns so
    // the gate is never silently disarmed for a gated-looking bench.
    for result_path in json_files(&results) {
        let result = load(&result_path)?;
        // (`missing` is provably empty here — a baseline without a
        // result already returned Err above.)
        if covered.contains(&result.bench) {
            continue;
        }
        if update {
            let baseline_path = baselines.join(format!("{}.json", result.bench));
            std::fs::write(&baseline_path, result.to_json())
                .map_err(|e| format!("create {}: {e}", baseline_path.display()))?;
            println!(
                "adopted new baseline {} from {}",
                baseline_path.display(),
                result_path.display()
            );
        } else {
            println!(
                "warning: {} has a result record but no committed baseline — \
                 it is NOT gated; adopt it with `bench_gate -- --update`",
                result.bench
            );
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let strict_wall = std::env::args().any(|a| a == "--strict-wall");
    match run(update, strict_wall) {
        Ok(true) => {
            println!("\nbench gate: all baselines hold");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!(
                "\nbench gate: REGRESSION — metrics drifted outside the baseline bands. \
                 If the change is intentional, refresh with \
                 `cargo run -p mlcx-bench --bin bench_gate -- --update` (see EXPERIMENTS.md)."
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
