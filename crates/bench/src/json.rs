//! A minimal JSON reader/writer for the bench-regression gate.
//!
//! The workspace builds offline with std-only stubs (no serde), and the
//! gate only needs flat objects of strings and numbers — so this is a
//! deliberately small recursive-descent parser covering the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals)
//! without any mapping machinery.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object, in source order (duplicate keys are kept as-is).
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    String(String),
    /// A number.
    Number(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes compactly (no whitespace). The single JSON writer for
    /// the workspace: `BenchResult::to_json`, the bench-gate `--update`
    /// path and the `mlcx-lint --update-baseline` path all render
    /// through here, so baseline files can never drift in dialect.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Serializes human-readably: two-space indentation, one entry per
    /// line — the format the committed baseline files use.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_sep, close_sep, item_sep): (String, String, &str) = match indent {
            Some(width) => (
                format!("\n{}", " ".repeat(width * (depth + 1))),
                format!("\n{}", " ".repeat(width * depth)),
                ": ",
            ),
            None => (String::new(), String::new(), ":"),
        };
        match self {
            Json::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_sep);
                    out.push_str(&quote(key));
                    out.push_str(item_sep);
                    value.render_into(out, indent, depth + 1);
                }
                out.push_str(&close_sep);
                out.push('}');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&open_sep);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(&close_sep);
                out.push(']');
            }
            Json::String(s) => out.push_str(&quote(s)),
            Json::Number(n) => out.push_str(&number(*n)),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
        }
    }
}

/// Serializes a string with JSON escaping.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a finite number (integers print without a fraction).
pub fn number(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the failure.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (keys/notes may hold any text).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_gate_schema() {
        let doc = r#"{
            "bench": "workload_mix",
            "exact": {"total_commands": 1217, "violations": 0},
            "modeled": {"device_time_s": 1.21409, "energy": 1.6e-1},
            "empty": {},
            "list": [1, "two", null, true]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("workload_mix"));
        let exact = v.get("exact").unwrap();
        assert_eq!(
            exact.get("total_commands").unwrap().as_number(),
            Some(1217.0)
        );
        let modeled = v.get("modeled").unwrap();
        assert!((modeled.get("energy").unwrap().as_number().unwrap() - 0.16).abs() < 1e-12);
        assert_eq!(v.get("empty").unwrap().as_object(), Some(&[][..]));
        assert_eq!(
            v.get("list").unwrap(),
            &Json::Array(vec![
                Json::Number(1.0),
                Json::String("two".into()),
                Json::Null,
                Json::Bool(true)
            ])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tabs\t quotes\" slashes\\ newlines\n unicode \u{2192}";
        let quoted = quote(original);
        let v = parse(&quoted).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("{\"a\": 1e}").is_err());
    }

    #[test]
    fn render_round_trips_and_pretty_matches_compact() {
        let value = Json::Object(vec![
            (
                "exact".into(),
                Json::Object(vec![
                    ("total_commands".into(), Json::Number(1217.0)),
                    ("violations".into(), Json::Number(0.0)),
                ]),
            ),
            ("empty".into(), Json::Object(vec![])),
            (
                "list".into(),
                Json::Array(vec![Json::Number(1.0), Json::Bool(false), Json::Null]),
            ),
            ("note".into(), Json::String("a \"quoted\" note".into())),
        ]);
        assert_eq!(parse(&value.render()).unwrap(), value);
        assert_eq!(parse(&value.render_pretty()).unwrap(), value);
        assert_eq!(
            value.render(),
            "{\"exact\":{\"total_commands\":1217,\"violations\":0},\"empty\":{},\
             \"list\":[1,false,null],\"note\":\"a \\\"quoted\\\" note\"}"
        );
        let pretty = value.render_pretty();
        assert!(pretty.contains("{\n  \"exact\": {\n    \"total_commands\": 1217,"));
        assert!(pretty.contains("\"empty\": {}"));
    }

    #[test]
    fn number_formatting_is_stable() {
        assert_eq!(number(1217.0), "1217");
        assert_eq!(number(1.25), "1.25");
        assert_eq!(parse(&number(0.161591)).unwrap(), Json::Number(0.161591));
    }
}
