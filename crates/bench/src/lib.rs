//! Shared helpers for the figure benches and the bench-regression gate.
//!
//! The benches themselves live in `benches/`; each regenerates one table
//! or figure of the paper's evaluation (printing the series once) and
//! then lets Criterion time the generator. The performance benches
//! (`engine_batch`, `workload_mix`, `parallel_scale`) additionally write
//! a machine-readable result record ([`BenchResult`]) that the
//! `bench_gate` binary compares against the committed baselines under
//! `crates/bench/baselines/` — the CI regression gate (see
//! EXPERIMENTS.md for the refresh procedure).

#![forbid(unsafe_code)]

use std::path::PathBuf;

use mlcx_core::SubsystemModel;

pub mod json;

/// The model every figure bench runs against.
pub fn model() -> SubsystemModel {
    SubsystemModel::date2012()
}

/// Prints a bench banner with the figure id and its rendered table, once
/// per bench invocation, so `cargo bench` output doubles as the
/// reproduction record.
pub fn banner(figure: &str, table: &str) {
    println!("\n===== {figure} =====");
    println!("{table}");
}

/// Whether the bench runs in CI smoke mode (`MLCX_SMOKE=1`): tiny
/// workloads, trimmed wall-clock sampling, no Criterion pass — every
/// functional assertion still runs, and the result record is written
/// at the scale the committed baselines were recorded at.
pub fn smoke() -> bool {
    std::env::var("MLCX_SMOKE").is_ok_and(|v| v == "1")
}

/// Where bench result records land (`target/bench-results/`). The gate
/// reads them from here; `--update` copies them over the baselines.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("bench-results")
}

/// The committed baselines the gate compares against.
pub fn baselines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines")
}

/// One bench's machine-readable outcome, mirrored by the baseline files.
///
/// Three metric classes with different comparison rules:
///
/// * `exact` — bit-deterministic structural counters (command counts,
///   derivation counts): the gate requires equality.
/// * `modeled` — deterministic modeled quantities (device time, energy,
///   makespans, modeled speedups): compared within
///   `modeled_tolerance_pct` so a deliberate model change fails loudly
///   until the baselines are refreshed.
/// * `wall` — paired-median wall-clock seconds: lower is better, and
///   only a slowdown beyond `wall_tolerance_pct` fails (containers are
///   noisy; improvements always pass).
#[derive(Debug, Clone, Default)]
pub struct BenchResult {
    /// Bench name (= result/baseline file stem).
    pub bench: String,
    /// "smoke" or "full" — the gate refuses to compare across modes.
    pub mode: String,
    /// Free-form provenance note.
    pub recorded: String,
    /// Bit-deterministic counters (equality).
    pub exact: Vec<(String, f64)>,
    /// Deterministic modeled metrics (tolerance band).
    pub modeled: Vec<(String, f64)>,
    /// Allowed relative drift for `modeled`, percent.
    pub modeled_tolerance_pct: f64,
    /// Paired-median wall-clock seconds (regression-only check).
    pub wall: Vec<(String, f64)>,
    /// Allowed slowdown for `wall`, percent.
    pub wall_tolerance_pct: f64,
}

impl BenchResult {
    /// A result skeleton for `bench` in the current smoke/full mode.
    pub fn new(bench: &str, recorded: &str) -> Self {
        BenchResult {
            bench: bench.to_string(),
            mode: if smoke() { "smoke" } else { "full" }.to_string(),
            recorded: recorded.to_string(),
            modeled_tolerance_pct: 1.0,
            wall_tolerance_pct: 100.0,
            ..BenchResult::default()
        }
    }

    /// Serializes the record as the gate's JSON schema, through the
    /// shared [`json::Json::render_pretty`] writer (the same serializer
    /// the `mlcx-lint` ratchet baseline uses).
    pub fn to_json(&self) -> String {
        use json::Json;
        let section = |pairs: &[(String, f64)]| {
            Json::Object(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Number(*v)))
                    .collect(),
            )
        };
        let obj = Json::Object(vec![
            ("bench".into(), Json::String(self.bench.clone())),
            ("mode".into(), Json::String(self.mode.clone())),
            ("recorded".into(), Json::String(self.recorded.clone())),
            (
                "modeled_tolerance_pct".into(),
                Json::Number(self.modeled_tolerance_pct),
            ),
            (
                "wall_tolerance_pct".into(),
                Json::Number(self.wall_tolerance_pct),
            ),
            ("exact".into(), section(&self.exact)),
            ("modeled".into(), section(&self.modeled)),
            ("wall".into(), section(&self.wall)),
        ]);
        let mut text = obj.render_pretty();
        text.push('\n');
        text
    }

    /// Writes the record to [`results_dir`] (and prints it once, so the
    /// bench log doubles as the record).
    ///
    /// # Panics
    ///
    /// Panics when the results directory cannot be created or written —
    /// a bench without its record would silently disarm the gate.
    pub fn write(&self) {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("bench results dir must be creatable");
        let path = dir.join(format!("{}.json", self.bench));
        std::fs::write(&path, self.to_json()).expect("bench result must be writable");
        println!("bench result recorded: {}", path.display());
    }

    /// Parses a record (result or baseline file) back from JSON.
    ///
    /// # Errors
    ///
    /// A human-readable parse/schema error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let field = |key: &str| -> Result<&json::Json, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(format!("missing key {key:?}"))
        };
        let text_field = |key: &str| -> Result<String, String> {
            Ok(field(key)?
                .as_str()
                .ok_or(format!("{key:?} must be a string"))?
                .to_string())
        };
        let num_field = |key: &str| -> Result<f64, String> {
            field(key)?
                .as_number()
                .ok_or(format!("{key:?} must be a number"))
        };
        let map_field = |key: &str| -> Result<Vec<(String, f64)>, String> {
            field(key)?
                .as_object()
                .ok_or(format!("{key:?} must be an object"))?
                .iter()
                .map(|(k, v)| {
                    v.as_number()
                        .map(|n| (k.clone(), n))
                        .ok_or(format!("{key:?}.{k:?} must be a number"))
                })
                .collect()
        };
        Ok(BenchResult {
            bench: text_field("bench")?,
            mode: text_field("mode")?,
            recorded: text_field("recorded")?,
            modeled_tolerance_pct: num_field("modeled_tolerance_pct")?,
            wall_tolerance_pct: num_field("wall_tolerance_pct")?,
            exact: map_field("exact")?,
            modeled: map_field("modeled")?,
            wall: map_field("wall")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_constructs() {
        let m = super::model();
        assert_eq!(m.tmax, 65);
    }

    #[test]
    fn bench_result_round_trips_through_json() {
        let mut r = BenchResult::new("demo", "unit test");
        r.exact.push(("commands".into(), 1217.0));
        r.modeled.push(("device_time_s".into(), 1.21409));
        r.wall.push(("batch_s".into(), 0.003654));
        let text = r.to_json();
        let back = BenchResult::from_json(&text).unwrap();
        assert_eq!(back.bench, "demo");
        assert_eq!(back.exact, r.exact);
        assert_eq!(back.modeled, r.modeled);
        assert_eq!(back.wall, r.wall);
        assert_eq!(back.modeled_tolerance_pct, 1.0);
    }
}
