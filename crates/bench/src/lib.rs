//! Shared helpers for the figure benches.
//!
//! The benches themselves live in `benches/`; each regenerates one table
//! or figure of the paper's evaluation (printing the series once) and
//! then lets Criterion time the generator.

use mlcx_core::SubsystemModel;

/// The model every figure bench runs against.
pub fn model() -> SubsystemModel {
    SubsystemModel::date2012()
}

/// Prints a bench banner with the figure id and its rendered table, once
/// per bench invocation, so `cargo bench` output doubles as the
/// reproduction record.
pub fn banner(figure: &str, table: &str) {
    println!("\n===== {figure} =====");
    println!("{table}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_constructs() {
        let m = super::model();
        assert_eq!(m.tmax, 65);
    }
}
