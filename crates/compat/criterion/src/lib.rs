//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement API surface the mlcx benches use —
//! [`Criterion`], [`BenchmarkId`], [`Throughput`], benchmark groups and
//! the [`criterion_group!`]/[`criterion_main!`] macros — with a compact
//! wall-clock harness: per benchmark it warms up, times `sample_size`
//! batches, and prints the median time per iteration (plus throughput
//! when configured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);

/// Names one parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit one sample slot.
        let calibrate = Instant::now();
        black_box(routine());
        let once = calibrate.elapsed().max(Duration::from_nanos(1));
        let budget_per_sample = MEASURE_BUDGET / self.sample_size as u32;
        let iters_per_sample =
            (budget_per_sample.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e6) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    fn median_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }
}

fn humanize(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn report(name: &str, median_s: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median_s > 0.0 => {
            format!("  {:.1} MiB/s", b as f64 / median_s / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if median_s > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / median_s)
        }
        _ => String::new(),
    };
    println!("{name:<48} time: {:>12}/iter{rate}", humanize(median_s));
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: impl FnOnce(&mut Bencher),
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, b.median_s(), throughput);
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, None, |b| f(b));
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.full.clone();
        self.run_one(&name, None, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of each benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, |b| f(b));
        self
    }

    /// Benchmarks `f` with an input under `group/function/parameter`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.full);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
