//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the mlcx property suites
//! use — the [`proptest!`] macro, range/tuple/`vec` strategies,
//! `prop_map`, `prop_assume!` and the `prop_assert*` family — as plain
//! randomized testing (deterministically seeded per test, no shrinking).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub mod test_runner;

/// `vec` strategies over element strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// The element-count specification of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The imports a proptest suite expects.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: deterministic, distinct per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines randomized property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                assert!(
                    rejected < 64 * config.cases + 1024,
                    "proptest stub: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match case() {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => rejected += 1,
                }
            }
        }
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts `cond`, failing the whole test on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts `left == right`, failing the whole test on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => assert!(
                *__l == *__r,
                "prop_assert_eq failed: {:?} != {:?}",
                __l,
                __r
            ),
        }
    };
}
