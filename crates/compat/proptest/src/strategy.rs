//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let unit: f64 = rng.random();
        *self.start() + unit * (*self.end() - *self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> u8 {
        rng.random()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> u16 {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random()
    }
}

/// The whole-domain strategy for `T` (`any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
