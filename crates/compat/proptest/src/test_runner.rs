//! Test-runner configuration and case-level control flow.

/// Per-suite configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not count as a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — draw another.
    Reject,
}
