//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand` API the simulator
//! actually uses: a seedable generator ([`rngs::StdRng`], xoshiro256**)
//! and the [`RngExt`] sampling trait (`random`, `random_range`). The
//! generator passes the statistical demands of the Monte-Carlo physics
//! tests (binomial error injection, Box-Muller normals) while keeping the
//! repository fully self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random generators.
pub mod rngs {
    /// A deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 seeding, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64 bits of the stream.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64(seed)
        }
    }

    impl crate::RngExt for StdRng {
        fn gen_u64(&mut self) -> u64 {
            self.next_u64()
        }
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw 64-bit words.
pub trait Random: Sized {
    /// Draws one value from the word source.
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Random for u64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl Random for u32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl Random for u16 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 48) as u16
    }
}

impl Random for u8 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 56) as u8
    }
}

impl Random for usize {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() as usize
    }
}

impl Random for bool {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() >> 63 == 1
    }
}

impl Random for f64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types with uniform range sampling.
pub trait UniformInt: Copy {
    /// Widens to u64 for the unbiased multiply-shift reduction.
    fn to_u64(self) -> u64;
    /// Narrows back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

fn uniform_below(bound: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(bound > 0, "empty sampling range");
    // Lemire multiply-shift reduction; the modulo bias at 64 bits is far
    // below anything the simulation statistics could resolve.
    ((u128::from(next()) * u128::from(bound)) >> 64) as u64
}

impl<T: UniformInt> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + uniform_below(hi - lo, next))
    }
}

impl<T: UniformInt> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample empty range");
        let width = hi - lo;
        if width == u64::MAX {
            return T::from_u64(next());
        }
        T::from_u64(lo + uniform_below(width + 1, next))
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(next);
        self.start + unit * (self.end - self.start)
    }
}

/// The sampling interface (`rand`'s `Rng`, under its 0.9 method names).
pub trait RngExt {
    /// The next raw 64 bits of the stream.
    fn gen_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        let mut next = || self.gen_u64();
        T::sample(&mut next)
    }

    /// A uniformly random value from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.gen_u64();
        range.sample(&mut next)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_mean_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    fn range_sampling_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            let v: usize = rng.random_range(0..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..256 {
            let v: u32 = rng.random_range(3..=65);
            assert!((3..=65).contains(&v));
        }
        let x = rng.random_range(1e-6..5e-5);
        assert!((1e-6..5e-5).contains(&x));
    }
}
