//! The controller page buffer and its data-load strategies.
//!
//! "Data transfers are processed through a dedicated buffer (e.g., an
//! embedded RAM block). Typically, the size of the RAM is equal to the
//! size of one page." Section 6.3.3 additionally points out that the
//! write-throughput overhead of ISPP-DV "can be mitigated by using a
//! two-round data load strategy on the page buffer" — the second half of
//! the page streams in while the first half is already programming.

/// How host data is staged into the page buffer on writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadStrategy {
    /// The whole page is loaded before programming starts.
    #[default]
    OneRound,
    /// The page is loaded in two halves, the second overlapping the
    /// program operation — hides half the load latency.
    TwoRound,
}

impl LoadStrategy {
    /// The load latency visible on the write path, given the raw transfer
    /// time of a full page.
    pub fn exposed_load_time_s(self, full_load_s: f64) -> f64 {
        match self {
            LoadStrategy::OneRound => full_load_s,
            LoadStrategy::TwoRound => 0.5 * full_load_s,
        }
    }
}

/// One-page embedded RAM buffer.
///
/// # Example
///
/// ```
/// use mlcx_controller::buffer::PageBuffer;
///
/// let mut buf = PageBuffer::new(4096);
/// buf.load(&vec![7u8; 4096]).unwrap();
/// assert!(buf.is_full());
/// assert_eq!(buf.contents()[0], 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuffer {
    data: Vec<u8>,
    valid_bytes: usize,
}

impl PageBuffer {
    /// An empty buffer for pages of `page_bytes`.
    pub fn new(page_bytes: usize) -> Self {
        PageBuffer {
            data: vec![0; page_bytes],
            valid_bytes: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently staged.
    pub fn valid_bytes(&self) -> usize {
        self.valid_bytes
    }

    /// `true` when a full page is staged.
    pub fn is_full(&self) -> bool {
        self.valid_bytes == self.data.len()
    }

    /// Loads a whole page.
    ///
    /// # Errors
    ///
    /// Returns the required size when `page` does not fill the buffer
    /// exactly.
    pub fn load(&mut self, page: &[u8]) -> Result<(), usize> {
        if page.len() != self.data.len() {
            return Err(self.data.len());
        }
        self.data.copy_from_slice(page);
        self.valid_bytes = page.len();
        Ok(())
    }

    /// Streams a chunk in (two-round loading); chunks must arrive in
    /// order and fit the remaining space.
    ///
    /// # Errors
    ///
    /// Returns the remaining capacity when the chunk overflows it.
    pub fn load_chunk(&mut self, chunk: &[u8]) -> Result<(), usize> {
        let remaining = self.data.len() - self.valid_bytes;
        if chunk.len() > remaining {
            return Err(remaining);
        }
        self.data[self.valid_bytes..self.valid_bytes + chunk.len()].copy_from_slice(chunk);
        self.valid_bytes += chunk.len();
        Ok(())
    }

    /// The staged page.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not full — programming a half-loaded
    /// buffer is a controller bug (buffer underrun).
    pub fn contents(&self) -> &[u8] {
        assert!(self.is_full(), "page buffer underrun");
        &self.data
    }

    /// Clears the buffer for the next transfer.
    pub fn reset(&mut self) {
        self.valid_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_load() {
        let mut buf = PageBuffer::new(64);
        assert!(!buf.is_full());
        buf.load(&[1u8; 64]).unwrap();
        assert!(buf.is_full());
        assert_eq!(buf.contents().len(), 64);
    }

    #[test]
    fn wrong_size_rejected() {
        let mut buf = PageBuffer::new(64);
        assert_eq!(buf.load(&[0u8; 63]), Err(64));
    }

    #[test]
    fn two_round_chunked_load() {
        let mut buf = PageBuffer::new(64);
        buf.load_chunk(&[1u8; 32]).unwrap();
        assert!(!buf.is_full());
        assert_eq!(buf.valid_bytes(), 32);
        buf.load_chunk(&[2u8; 32]).unwrap();
        assert!(buf.is_full());
        assert_eq!(buf.contents()[0], 1);
        assert_eq!(buf.contents()[63], 2);
    }

    #[test]
    fn chunk_overflow_rejected() {
        let mut buf = PageBuffer::new(64);
        buf.load_chunk(&[0u8; 60]).unwrap();
        assert_eq!(buf.load_chunk(&[0u8; 8]), Err(4));
    }

    #[test]
    #[should_panic(expected = "page buffer underrun")]
    fn reading_partial_buffer_panics() {
        let mut buf = PageBuffer::new(64);
        buf.load_chunk(&[0u8; 10]).unwrap();
        let _ = buf.contents();
    }

    #[test]
    fn reset_empties() {
        let mut buf = PageBuffer::new(16);
        buf.load(&[9u8; 16]).unwrap();
        buf.reset();
        assert_eq!(buf.valid_bytes(), 0);
    }

    #[test]
    fn load_strategies_expose_different_latency() {
        let full = 132e-6;
        assert_eq!(LoadStrategy::OneRound.exposed_load_time_s(full), full);
        assert_eq!(LoadStrategy::TwoRound.exposed_load_time_s(full), full / 2.0);
    }
}
