//! Channel/die busy-time scheduling.
//!
//! The controller executes commands one at a time (the functional
//! datapath — BCH encode/decode, error injection — is deterministic and
//! sequential), but a real multi-channel controller overlaps them: while
//! one die is busy programming, another channel's bus can stream the
//! next codeword. [`ChannelScheduler`] models that overlap as virtual
//! busy-time bookkeeping: every operation is split into a *bus* part
//! (channel occupied: data transfer plus the per-channel ECC engine)
//! and a *cell* part (die occupied: sense, program or erase), and the
//! scheduler advances per-die and per-channel clocks to find the
//! earliest issue slot. The makespan of a batch — when the last die
//! falls idle — is the batch's parallel latency.
//!
//! On a 1-channel/1-die topology every operation serializes behind the
//! single die, so the makespan degenerates to the plain sum of
//! operation latencies: the historical single-target numbers are
//! reproduced exactly.

use mlcx_nand::Topology;

/// One operation's occupancy, split into the channel and die parts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Channel (bus + per-channel ECC engine) occupancy, seconds.
    pub bus_s: f64,
    /// Die (array) occupancy, seconds.
    pub cell_s: f64,
    /// Whether the bus part precedes the cell part (writes stream data
    /// in first; reads sense first and stream out after).
    pub bus_first: bool,
}

impl OpTiming {
    /// A write-shaped operation: bus transfer in, then the die programs.
    pub fn write(bus_s: f64, cell_s: f64) -> Self {
        OpTiming {
            bus_s,
            cell_s,
            bus_first: true,
        }
    }

    /// A read-shaped operation: the die senses, then streams out.
    pub fn read(cell_s: f64, bus_s: f64) -> Self {
        OpTiming {
            bus_s,
            cell_s,
            bus_first: false,
        }
    }

    /// An erase-shaped operation: die-only, no bus traffic.
    pub fn erase(cell_s: f64) -> Self {
        OpTiming {
            bus_s: 0.0,
            cell_s,
            bus_first: false,
        }
    }
}

/// The issue window the scheduler assigned to one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssueSlot {
    /// When the operation starts on the virtual timeline, seconds.
    pub start_s: f64,
    /// When its die falls idle again, seconds.
    pub end_s: f64,
}

/// Virtual-time busy tracker for a [`Topology`] (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use mlcx_controller::channel::{ChannelScheduler, OpTiming};
/// use mlcx_nand::Topology;
///
/// let mut sched = ChannelScheduler::new(Topology::new(2, 1));
/// sched.begin_batch();
/// // Two 1 ms programs on dies behind different channels overlap:
/// sched.issue(0, OpTiming::write(10e-6, 1e-3));
/// sched.issue(1, OpTiming::write(10e-6, 1e-3));
/// assert!(sched.batch_makespan_s() < 1.2e-3); // not 2 ms
/// ```
#[derive(Debug, Clone)]
pub struct ChannelScheduler {
    topology: Topology,
    /// Absolute virtual time each die falls idle.
    die_free_s: Vec<f64>,
    /// Absolute virtual time each channel's bus falls idle.
    chan_free_s: Vec<f64>,
    /// Bus busy time accumulated per channel since `begin_batch`.
    chan_busy_s: Vec<f64>,
    /// Virtual time the current batch opened at.
    batch_start_s: f64,
    /// Operations issued since `begin_batch`.
    batch_ops: u64,
    /// Merged issue window of the operations since `begin_command`
    /// (`None` until the command issues its first operation).
    cmd_window: Option<IssueSlot>,
    /// Earliest virtual time the current command may start (its host
    /// arrival timestamp; 0 when unset).
    cmd_floor_s: f64,
}

impl ChannelScheduler {
    /// A scheduler with all clocks at zero.
    pub fn new(topology: Topology) -> Self {
        ChannelScheduler {
            die_free_s: vec![0.0; topology.total_dies()],
            chan_free_s: vec![0.0; topology.channels],
            chan_busy_s: vec![0.0; topology.channels],
            batch_start_s: 0.0,
            batch_ops: 0,
            cmd_window: None,
            cmd_floor_s: 0.0,
            topology,
        }
    }

    /// The topology being scheduled.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Opens a new batch window: the batch starts once every die from
    /// the previous batch has drained (batches are barriers — the
    /// engine's `poll` is a full drain), and the per-channel busy
    /// counters reset.
    pub fn begin_batch(&mut self) {
        let drained = self
            .die_free_s
            .iter()
            .fold(self.batch_start_s, |a, &b| a.max(b));
        self.batch_start_s = drained;
        for busy in &mut self.chan_busy_s {
            *busy = 0.0;
        }
        self.batch_ops = 0;
        self.cmd_window = None;
        self.cmd_floor_s = 0.0;
    }

    /// Opens a per-command timing window: every subsequent
    /// [`ChannelScheduler::issue`] (until the next `begin_command`)
    /// merges into one [`IssueSlot`] readable from
    /// [`ChannelScheduler::command_window`], and none of those issues
    /// may start before `not_before_s` (the command's host arrival
    /// time). This is the handoff the event-driven engine core uses to
    /// turn the controller's internal multi-issue commands (a
    /// retry-laddered read, a relocate's read + write) into one
    /// completion event with real start/end timestamps.
    ///
    /// A floor at or before the batch opening is a no-op, so
    /// single-submitter drains — where every arrival predates the
    /// barrier — are bit-identical to the floorless schedule.
    pub fn begin_command(&mut self, not_before_s: f64) {
        self.cmd_window = None;
        self.cmd_floor_s = not_before_s;
    }

    /// The merged `(earliest start, latest end)` window of the
    /// operations issued since the last
    /// [`ChannelScheduler::begin_command`] (`None` for a command that
    /// touched no device resource — trim, configure, failed
    /// validation).
    pub fn command_window(&self) -> Option<IssueSlot> {
        self.cmd_window
    }

    /// Schedules one operation on `die` at the earliest slot its die
    /// (and, for the bus part, its channel) is free, and advances the
    /// clocks.
    ///
    /// # Panics
    ///
    /// Panics when `die` is outside the topology (controller-internal
    /// misuse; host-facing layers validate first).
    pub fn issue(&mut self, die: usize, timing: OpTiming) -> IssueSlot {
        let chan = self.topology.channel_of_die(die);
        self.batch_ops += 1;
        let die_free = self.die_free_s[die]
            .max(self.batch_start_s)
            .max(self.cmd_floor_s);
        let slot = if timing.bus_first {
            // Bus transfer gates the die work: wait for both resources.
            let start = die_free.max(self.chan_free_s[chan]);
            let bus_done = start + timing.bus_s;
            self.chan_free_s[chan] = bus_done;
            self.chan_busy_s[chan] += timing.bus_s;
            let end = bus_done + timing.cell_s;
            self.die_free_s[die] = end;
            IssueSlot {
                start_s: start,
                end_s: end,
            }
        } else {
            // Die work first; the bus (if any) streams the result out.
            let start = die_free;
            let cell_done = start + timing.cell_s;
            let end = if timing.bus_s > 0.0 {
                let bus_start = cell_done.max(self.chan_free_s[chan]);
                let bus_done = bus_start + timing.bus_s;
                self.chan_free_s[chan] = bus_done;
                self.chan_busy_s[chan] += timing.bus_s;
                bus_done
            } else {
                cell_done
            };
            // The die holds its page register until the transfer drains.
            self.die_free_s[die] = end;
            IssueSlot {
                start_s: start,
                end_s: end,
            }
        };
        self.cmd_window = Some(match self.cmd_window {
            None => slot,
            Some(w) => IssueSlot {
                start_s: w.start_s.min(slot.start_s),
                end_s: w.end_s.max(slot.end_s),
            },
        });
        slot
    }

    /// Operations issued since the last [`ChannelScheduler::begin_batch`].
    pub fn batch_ops(&self) -> u64 {
        self.batch_ops
    }

    /// The batch's modeled parallel latency: from the batch opening to
    /// the last die falling idle (0 with no operations).
    pub fn batch_makespan_s(&self) -> f64 {
        let end = self
            .die_free_s
            .iter()
            .fold(self.batch_start_s, |a, &b| a.max(b));
        end - self.batch_start_s
    }

    /// Total bus busy time across every channel since the batch opened.
    pub fn batch_channel_busy_s(&self) -> f64 {
        self.chan_busy_s.iter().sum()
    }

    /// Mean fraction of the batch window each channel's bus was busy
    /// (0 with no makespan).
    pub fn batch_channel_utilization(&self) -> f64 {
        let makespan = self.batch_makespan_s();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.batch_channel_busy_s() / (self.topology.channels as f64 * makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn single_die_serializes_to_the_latency_sum() {
        let mut s = ChannelScheduler::new(Topology::single());
        s.begin_batch();
        let ops = [
            OpTiming::write(30e-6, 900e-6),
            OpTiming::read(75e-6, 60e-6),
            OpTiming::erase(2e-3),
            OpTiming::read(75e-6, 120e-6),
        ];
        let mut sum = 0.0;
        for op in ops {
            s.issue(0, op);
            sum += op.bus_s + op.cell_s;
        }
        assert!((s.batch_makespan_s() - sum).abs() < EPS);
        assert_eq!(s.batch_ops(), 4);
    }

    #[test]
    fn independent_channels_overlap_fully() {
        let mut s = ChannelScheduler::new(Topology::new(4, 1));
        s.begin_batch();
        for die in 0..4 {
            s.issue(die, OpTiming::write(10e-6, 1e-3));
        }
        // Four 1.01 ms writes on four channels: makespan is one write.
        assert!((s.batch_makespan_s() - 1.01e-3).abs() < EPS);
        assert!(s.batch_channel_utilization() < 0.05);
    }

    #[test]
    fn shared_channel_serializes_the_bus_but_overlaps_the_cells() {
        let mut s = ChannelScheduler::new(Topology::new(1, 2));
        s.begin_batch();
        s.issue(0, OpTiming::write(100e-6, 1e-3));
        s.issue(1, OpTiming::write(100e-6, 1e-3));
        // Bus transfers serialize (die 1 starts at 100 us), programs
        // overlap: makespan = 200 us + 1 ms, not 2.2 ms.
        assert!((s.batch_makespan_s() - 1.2e-3).abs() < EPS);
    }

    #[test]
    fn same_die_operations_serialize() {
        let mut s = ChannelScheduler::new(Topology::new(2, 2));
        s.begin_batch();
        let a = s.issue(3, OpTiming::write(10e-6, 1e-3));
        let b = s.issue(3, OpTiming::write(10e-6, 1e-3));
        assert!(b.start_s >= a.end_s - EPS);
    }

    #[test]
    fn read_streams_out_after_sensing() {
        let mut s = ChannelScheduler::new(Topology::new(1, 2));
        s.begin_batch();
        // Two reads on dies sharing a channel: senses overlap, the
        // second transfer queues behind the first.
        s.issue(0, OpTiming::read(75e-6, 50e-6));
        s.issue(1, OpTiming::read(75e-6, 50e-6));
        assert!((s.batch_makespan_s() - 175e-6).abs() < EPS);
    }

    #[test]
    fn batches_are_barriers() {
        let mut s = ChannelScheduler::new(Topology::new(2, 1));
        s.begin_batch();
        s.issue(0, OpTiming::erase(2e-3));
        s.issue(1, OpTiming::erase(1e-3));
        assert!((s.batch_makespan_s() - 2e-3).abs() < EPS);
        s.begin_batch();
        assert_eq!(s.batch_makespan_s(), 0.0);
        assert_eq!(s.batch_ops(), 0);
        // The new batch starts after the slow die drained: die 1 cannot
        // start before the previous batch's makespan.
        let slot = s.issue(1, OpTiming::erase(1e-3));
        assert!((slot.start_s - 2e-3).abs() < EPS);
        assert!((s.batch_makespan_s() - 1e-3).abs() < EPS);
    }

    #[test]
    fn command_window_merges_multi_issue_commands() {
        let mut s = ChannelScheduler::new(Topology::single());
        s.begin_batch();
        assert_eq!(s.command_window(), None);
        // A relocate-shaped command: read then write, one window.
        s.begin_command(0.0);
        let read = s.issue(0, OpTiming::read(75e-6, 60e-6));
        let write = s.issue(0, OpTiming::write(30e-6, 900e-6));
        let w = s.command_window().unwrap();
        assert!((w.start_s - read.start_s).abs() < EPS);
        assert!((w.end_s - write.end_s).abs() < EPS);
        // The next command opens a fresh window.
        s.begin_command(0.0);
        assert_eq!(s.command_window(), None);
        let erase = s.issue(0, OpTiming::erase(2e-3));
        assert_eq!(s.command_window(), Some(erase));
    }

    #[test]
    fn command_floor_delays_the_start_only_when_in_the_future() {
        let mut s = ChannelScheduler::new(Topology::single());
        s.begin_batch();
        // A floor behind the die clock is a no-op...
        s.begin_command(0.0);
        let a = s.issue(0, OpTiming::erase(1e-3));
        assert!(a.start_s.abs() < EPS);
        s.begin_command(0.5e-3);
        let b = s.issue(0, OpTiming::erase(1e-3));
        assert!((b.start_s - 1e-3).abs() < EPS, "die still busy");
        // ...a future arrival idles the die until the command arrives.
        s.begin_command(5e-3);
        let c = s.issue(0, OpTiming::erase(1e-3));
        assert!((c.start_s - 5e-3).abs() < EPS);
        assert!((c.end_s - 6e-3).abs() < EPS);
    }
}
