//! The core controller FSM: full write and read datapaths.

use std::collections::BTreeMap;
use std::fmt;

use mlcx_bch::hardware::{EccHardware, EccPowerModel};
use mlcx_bch::{AdaptiveBch, CodecKernel, CodecStats, DecodeOutcome};
use mlcx_hv::HvSubsystem;
use mlcx_nand::device::CodeStore;
use mlcx_nand::disturb::DisturbModel;
use mlcx_nand::ispp::IsppConfig;
use mlcx_nand::{AgingModel, DeviceGeometry, NandDevice, NandTiming, OpReport, ProgramAlgorithm};

use crate::buffer::{LoadStrategy, PageBuffer};
use crate::channel::{ChannelScheduler, OpTiming};
use crate::error::CtrlError;
use crate::flash_if::FlashInterface;
use crate::ocp::OcpSocket;
use crate::regs::{ConfigCommand, RegisterFile, ServiceLevel};
use crate::retry::{ReadOffsetTable, RetryPolicy, RetryStats};

/// Static configuration of the controller instance.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Galois-field degree of the BCH codec.
    pub ecc_m: u32,
    /// Minimum correction capability.
    pub ecc_tmin: u32,
    /// Maximum correction capability.
    pub ecc_tmax: u32,
    /// Codec kernel rung of the BCH datapath. The preset is
    /// [`CodecKernel::Auto`] (the fastest rung); every rung is
    /// bit-identical, so this knob only trades table footprint against
    /// throughput — see `mlcx_bch::kernel` for the ladder.
    pub ecc_kernel: CodecKernel,
    /// Socket interface parameters.
    pub ocp: OcpSocket,
    /// Flash bus parameters.
    pub flash_if: FlashInterface,
    /// Synthesized ECC hardware parameters (latency model).
    pub ecc_hw: EccHardware,
    /// ECC power model.
    pub ecc_power: EccPowerModel,
    /// Device geometry.
    pub geometry: DeviceGeometry,
    /// Read-disturb / retention model installed on the device. The
    /// preset is [`DisturbModel::disabled`] — the paper's evaluation
    /// conditions — so the default datapath is bit-identical with or
    /// without the knob; enable it (with a scrub policy above) to study
    /// the workload-dependent mechanisms.
    pub disturb: DisturbModel,
    /// Read-retry policy applied on uncorrectable reads. The preset is
    /// [`RetryPolicy::disabled`] — a single sense at the nominal
    /// reference, bit-identical to the pre-retry datapath; enable it
    /// (typically [`RetryPolicy::date2012`], with a disturb model that
    /// actually shifts something) to study the voltage-domain
    /// mitigation. See the precedence notes on [`RetryPolicy`] and
    /// [`crate::scrub::ScrubPolicy`] for how retry composes with
    /// background scrubbing.
    pub retry: RetryPolicy,
}

impl ControllerConfig {
    /// The paper's full configuration.
    pub fn date2012() -> Self {
        ControllerConfig {
            ecc_m: 16,
            ecc_tmin: 3,
            ecc_tmax: 65,
            ecc_kernel: CodecKernel::Auto,
            ocp: OcpSocket::date2012(),
            flash_if: FlashInterface::date2012(),
            ecc_hw: EccHardware::date2012(),
            ecc_power: EccPowerModel::date2012(),
            geometry: DeviceGeometry::date2012(),
            disturb: DisturbModel::disabled(),
            retry: RetryPolicy::disabled(),
        }
    }

    /// A fluent builder seeded with the [`ControllerConfig::date2012`]
    /// preset; every knob is overridable before [`ControllerConfigBuilder::build`].
    pub fn builder() -> ControllerConfigBuilder {
        ControllerConfigBuilder {
            config: Self::date2012(),
        }
    }
}

/// Fluent construction of a [`ControllerConfig`], starting from the
/// paper's calibration.
///
/// # Example
///
/// ```
/// use mlcx_controller::ControllerConfig;
///
/// let config = ControllerConfig::builder().ecc_tmax(40).build()?;
/// assert_eq!(config.ecc_tmax, 40);
/// assert_eq!(config.ecc_m, 16); // preset value untouched
/// # Ok::<(), mlcx_controller::CtrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ControllerConfigBuilder {
    config: ControllerConfig,
}

impl ControllerConfigBuilder {
    /// Galois-field degree of the BCH codec.
    pub fn ecc_m(mut self, m: u32) -> Self {
        self.config.ecc_m = m;
        self
    }

    /// Minimum correction capability.
    pub fn ecc_tmin(mut self, t: u32) -> Self {
        self.config.ecc_tmin = t;
        self
    }

    /// Maximum correction capability.
    pub fn ecc_tmax(mut self, t: u32) -> Self {
        self.config.ecc_tmax = t;
        self
    }

    /// Codec kernel rung of the BCH datapath (bit-identical across rungs).
    pub fn ecc_kernel(mut self, kernel: CodecKernel) -> Self {
        self.config.ecc_kernel = kernel;
        self
    }

    /// Socket interface parameters.
    pub fn ocp(mut self, ocp: OcpSocket) -> Self {
        self.config.ocp = ocp;
        self
    }

    /// Flash bus parameters.
    pub fn flash_if(mut self, flash_if: FlashInterface) -> Self {
        self.config.flash_if = flash_if;
        self
    }

    /// ECC hardware latency parameters.
    pub fn ecc_hw(mut self, hw: EccHardware) -> Self {
        self.config.ecc_hw = hw;
        self
    }

    /// ECC power model.
    pub fn ecc_power(mut self, power: EccPowerModel) -> Self {
        self.config.ecc_power = power;
        self
    }

    /// Device geometry.
    pub fn geometry(mut self, geometry: DeviceGeometry) -> Self {
        self.config.geometry = geometry;
        self
    }

    /// Read-disturb / retention model for the device (default
    /// [`DisturbModel::disabled`]).
    pub fn disturb(mut self, disturb: DisturbModel) -> Self {
        self.config.disturb = disturb;
        self
    }

    /// Read-retry policy for uncorrectable reads (default
    /// [`RetryPolicy::disabled`]).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`CtrlError::InvalidConfig`] when the capability range is empty,
    /// the field degree is outside 2..=16, or the geometry is degenerate.
    pub fn build(self) -> Result<ControllerConfig, CtrlError> {
        let c = &self.config;
        if c.ecc_tmin == 0 || c.ecc_tmin > c.ecc_tmax {
            return Err(CtrlError::InvalidConfig {
                reason: format!("empty capability range {}..={}", c.ecc_tmin, c.ecc_tmax),
            });
        }
        if !(2..=16).contains(&c.ecc_m) {
            return Err(CtrlError::InvalidConfig {
                reason: format!("field degree m = {} outside 2..=16", c.ecc_m),
            });
        }
        if let Err(reason) = c.geometry.validate() {
            return Err(CtrlError::InvalidConfig { reason });
        }
        Ok(self.config)
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::date2012()
    }
}

/// Latency/energy breakdown of one page write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteReport {
    /// Total latency, seconds.
    pub latency_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Buffer load exposed on the critical path, seconds.
    pub load_s: f64,
    /// ECC encode time, seconds.
    pub encode_s: f64,
    /// Data-in transfer over the flash bus, seconds.
    pub transfer_s: f64,
    /// ISPP program time, seconds.
    pub program_s: f64,
    /// Correction capability the page was encoded at.
    pub t_used: u32,
    /// Program algorithm used.
    pub algorithm: ProgramAlgorithm,
    /// Whether this program consumed a pending partial-program arm
    /// (power-loss fault injection): the page was left mid-staircase
    /// and reads back corrupt until its block is erased.
    pub injected_partial: bool,
}

/// Result and breakdown of one page read.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadReport {
    /// The (corrected) page data.
    pub data: Vec<u8>,
    /// Decode outcome.
    pub outcome: DecodeOutcome,
    /// Total latency, seconds.
    pub latency_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Array sensing time (tR), seconds.
    pub sense_s: f64,
    /// Codeword transfer time, seconds.
    pub transfer_s: f64,
    /// ECC decode time, seconds.
    pub decode_s: f64,
    /// Correction capability used.
    pub t_used: u32,
    /// Total senses this read issued (1 = no retry; each extra sense is
    /// a full device read charged to the channel scheduler).
    pub senses: u32,
    /// Read-reference offset (steps from nominal) of the *final* sense
    /// — the one `data`/`outcome` came from.
    pub reference_offset: i32,
    /// Latency of the retry senses alone (already included in
    /// `latency_s`); 0.0 when the first sense decoded.
    pub retry_latency_s: f64,
    /// Program-interference RBER the page carried into this read
    /// (neighbor coupling + die program disturb + partial-program
    /// corruption, per the device's [`DisturbModel`]). Exactly 0.0
    /// under a model with the interference terms disabled.
    pub interference_rber: f64,
}

/// The memory controller of the paper's Fig. 1.
///
/// Owns the adaptive BCH codec, the page buffer, both bus interfaces and
/// the flash device; exposes the two cross-layer knobs through
/// [`ConfigCommand`]s.
///
/// # Example
///
/// ```
/// use mlcx_controller::{ConfigCommand, ControllerConfig, MemoryController};
/// use mlcx_nand::ProgramAlgorithm;
///
/// let mut ctrl = MemoryController::new(ControllerConfig::date2012(), 3)?;
/// // Cross-layer reconfiguration at runtime:
/// ctrl.apply(ConfigCommand::SetAlgorithm(ProgramAlgorithm::IsppDv))?;
/// ctrl.apply(ConfigCommand::SetCorrection(14))?;
/// assert_eq!(ctrl.correction(), 14);
/// # Ok::<(), mlcx_controller::CtrlError>(())
/// ```
pub struct MemoryController {
    config: ControllerConfig,
    codec: AdaptiveBch,
    device: NandDevice,
    buffer: PageBuffer,
    regs: RegisterFile,
    load_strategy: LoadStrategy,
    /// ECC capability each written page used (the controller's page
    /// metadata table).
    page_ecc: BTreeMap<(usize, usize), u32>,
    /// Multi-channel/multi-die busy-time model: every datapath
    /// operation registers its bus/cell occupancy here, so batch layers
    /// can read the modeled parallel makespan.
    scheduler: ChannelScheduler,
    /// Read-retry policy (from the config; `disabled()` = the pre-retry
    /// datapath).
    retry: RetryPolicy,
    /// Per-block read-reference offsets learned from successful
    /// retries; entries are forgotten on erase.
    offsets: ReadOffsetTable,
    /// Retry subsystem counters.
    retry_stats: RetryStats,
}

impl MemoryController {
    /// Builds the controller and its device.
    ///
    /// # Errors
    ///
    /// Codec construction errors, or [`CtrlError::SpareOverflow`] when the
    /// worst-case parity cannot fit the spare area.
    pub fn new(config: ControllerConfig, seed: u64) -> Result<Self, CtrlError> {
        config
            .geometry
            .validate()
            .map_err(|reason| CtrlError::InvalidConfig { reason })?;
        let codec = AdaptiveBch::new_with_kernel(
            config.ecc_m,
            config.geometry.page_bytes * 8,
            config.ecc_tmin,
            config.ecc_tmax,
            config.ecc_kernel,
        )?;
        if codec.max_parity_bytes() > config.geometry.spare_bytes {
            return Err(CtrlError::SpareOverflow {
                parity_bytes: codec.max_parity_bytes(),
                spare_bytes: config.geometry.spare_bytes,
            });
        }
        let mut device = NandDevice::with_config(
            config.geometry,
            NandTiming::date2012(),
            IsppConfig::date2012(),
            AgingModel::date2012(),
            HvSubsystem::date2012(),
            CodeStore::dual_rom(),
            seed,
        );
        device.set_disturb_model(config.disturb);
        let buffer = PageBuffer::new(config.geometry.page_bytes);
        let scheduler = ChannelScheduler::new(config.geometry.topology);
        let retry = config.retry.clone();
        Ok(MemoryController {
            config,
            codec,
            device,
            buffer,
            regs: RegisterFile::default(),
            load_strategy: LoadStrategy::OneRound,
            page_ecc: BTreeMap::new(),
            scheduler,
            retry,
            offsets: ReadOffsetTable::new(),
            retry_stats: RetryStats::default(),
        })
    }

    /// The static configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Current correction capability.
    pub fn correction(&self) -> u32 {
        self.codec.correction()
    }

    /// Current program algorithm.
    pub fn algorithm(&self) -> ProgramAlgorithm {
        self.device.algorithm()
    }

    /// Current service level (from the register file).
    pub fn service_level(&self) -> ServiceLevel {
        self.regs.service_level()
    }

    /// The register file (status polling).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Codec feedback counters (for the reliability manager).
    pub fn codec_stats(&self) -> CodecStats {
        self.codec.stats()
    }

    /// The adaptive BCH codec (kernel/capability inspection).
    pub fn codec(&self) -> &AdaptiveBch {
        &self.codec
    }

    /// The underlying device (wear inspection).
    pub fn device(&self) -> &NandDevice {
        &self.device
    }

    /// Mutable device access — for experiment setup (positioning wear,
    /// enabling disturb/retention mechanisms), not for datapath use.
    pub fn device_mut(&mut self) -> &mut NandDevice {
        &mut self.device
    }

    /// The active read-retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Retry subsystem counters accumulated across reads.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// The per-block learned read-offset table.
    pub fn read_offsets(&self) -> &ReadOffsetTable {
        &self.offsets
    }

    /// The additive disturb/retention RBER a read of `block` would see
    /// *through this controller right now*: the device's worst-page
    /// disturb RBER evaluated at the block's learned read-reference
    /// offset. With retry disabled or no offset learned this is exactly
    /// [`mlcx_nand::NandDevice::block_disturb_rber`]; with a learned
    /// offset it is the recovered (effective) figure the upper layers
    /// should plan ECC against.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn block_effective_disturb_rber(&self, block: usize) -> Result<f64, CtrlError> {
        let offset = if self.retry.is_enabled() {
            self.offsets.get(block)
        } else {
            0
        };
        Ok(self.device.block_disturb_rber_at(block, offset)?)
    }

    /// The channel/die busy-time scheduler (batch parallelism model).
    pub fn scheduler(&self) -> &ChannelScheduler {
        &self.scheduler
    }

    /// Mutable scheduler access — batch layers open their timing window
    /// with [`ChannelScheduler::begin_batch`] before a drain.
    pub fn scheduler_mut(&mut self) -> &mut ChannelScheduler {
        &mut self.scheduler
    }

    /// Applies a configuration command received over the socket.
    ///
    /// # Errors
    ///
    /// Knob errors (capability out of range, algorithm not in the code
    /// store) propagate; the register write itself cannot fail.
    pub fn apply(&mut self, cmd: ConfigCommand) -> Result<(), CtrlError> {
        match cmd {
            ConfigCommand::SetCorrection(t) => {
                self.codec.set_correction(t)?;
                self.regs.status_mut().ecc_reconfigured = true;
            }
            ConfigCommand::SetAlgorithm(a) => self.device.select_algorithm(a)?,
            ConfigCommand::SetTwoRoundLoad(enable) => {
                self.load_strategy = if enable {
                    LoadStrategy::TwoRound
                } else {
                    LoadStrategy::OneRound
                };
            }
            ConfigCommand::SetServiceLevel(_) => {}
        }
        self.regs.apply(cmd);
        Ok(())
    }

    /// Erases a block, reporting the device's timing/energy cost.
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn erase_block(&mut self, block: usize) -> Result<OpReport, CtrlError> {
        let report = self.device.erase_block(block)?;
        let die = self.config.geometry.die_of_block(block);
        self.scheduler
            .issue(die, OpTiming::erase(report.duration_s));
        // Page metadata of the erased block is void, and the fresh
        // block's Vth distributions are back at nominal — forget its
        // learned read offset.
        self.page_ecc.retain(|&(b, _), _| b != block);
        self.offsets.forget(block);
        Ok(report)
    }

    /// Drops the ECC metadata of one page (host trim/discard), returning
    /// whether the page was mapped. Subsequent reads of the page fail
    /// with [`CtrlError::UnknownPageConfig`] until it is rewritten.
    pub fn trim_page(&mut self, block: usize, page: usize) -> bool {
        self.page_ecc.remove(&(block, page)).is_some()
    }

    /// Applies a full cross-layer operating point in one command round,
    /// skipping the register writes whose value is already current — the
    /// batch datapath's fast reconfiguration entry point.
    ///
    /// # Errors
    ///
    /// Knob errors propagate exactly as through [`MemoryController::apply`].
    pub fn apply_point(
        &mut self,
        algorithm: ProgramAlgorithm,
        correction: u32,
    ) -> Result<(), CtrlError> {
        if self.algorithm() != algorithm {
            self.apply(ConfigCommand::SetAlgorithm(algorithm))?;
        }
        if self.correction() != correction {
            self.apply(ConfigCommand::SetCorrection(correction))?;
        }
        Ok(())
    }

    /// Batch write entry point: programs `(page, data)` pairs into
    /// `block` under the current configuration, stopping at the first
    /// error.
    ///
    /// # Errors
    ///
    /// The first per-page error aborts the remainder of the batch; pages
    /// programmed before the failure stay programmed (their reports are
    /// not returned — use per-page [`MemoryController::write_page`] or
    /// the engine's completion-per-command model when partial-failure
    /// accounting matters).
    pub fn write_pages(
        &mut self,
        block: usize,
        pages: &[(usize, &[u8])],
    ) -> Result<Vec<WriteReport>, CtrlError> {
        pages
            .iter()
            .map(|&(page, data)| self.write_page(block, page, data))
            .collect()
    }

    /// Batch read entry point: reads the listed pages of `block`,
    /// stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first per-page error aborts the remainder of the batch.
    pub fn read_pages(
        &mut self,
        block: usize,
        pages: &[usize],
    ) -> Result<Vec<ReadReport>, CtrlError> {
        pages
            .iter()
            .map(|&page| self.read_page(block, page))
            .collect()
    }

    /// Ages a block to a wear point (lifetime experiments).
    ///
    /// # Errors
    ///
    /// Device errors propagate.
    pub fn age_block(&mut self, block: usize, cycles: u64) -> Result<(), CtrlError> {
        self.device.age_block(block, cycles)?;
        Ok(())
    }

    /// Ages every block by `cycles` P/E cycles — the lifetime
    /// fast-forward hook of the workload simulator. See
    /// [`mlcx_nand::NandDevice::age_all`] for the retention semantics.
    pub fn age_all(&mut self, cycles: u64) {
        self.device.age_all(cycles);
    }

    /// Ages every block of one die — the die-skew hook of the workload
    /// simulator (dies age independently).
    ///
    /// # Errors
    ///
    /// Device errors propagate ([`mlcx_nand::NandError::DieOutOfRange`]).
    pub fn age_die(&mut self, die: usize, cycles: u64) -> Result<(), CtrlError> {
        self.device.age_die(die, cycles)?;
        Ok(())
    }

    /// Full write datapath: buffer load -> ECC encode -> data-in transfer
    /// -> ISPP program.
    ///
    /// # Errors
    ///
    /// [`CtrlError::BufferSize`] for wrong page sizes; device and codec
    /// errors propagate.
    pub fn write_page(
        &mut self,
        block: usize,
        page: usize,
        data: &[u8],
    ) -> Result<WriteReport, CtrlError> {
        self.buffer.reset();
        self.buffer
            .load(data)
            .map_err(|expected| CtrlError::BufferSize {
                expected,
                actual: data.len(),
            })?;

        let t = self.codec.correction();
        let parity = self.codec.encode(self.buffer.contents())?;
        let r_bits = self.codec.code()?.parity_bits();

        let path = crate::throughput::write_path(
            &self.config.ocp,
            self.load_strategy,
            &self.config.flash_if,
            &self.config.ecc_hw,
            data.len() * 8,
            r_bits,
            0.0, // program time filled from the device report below
        );
        // A pending partial-program arm (fault injection) is consumed by
        // this program; report it so batch layers can count injections.
        let injected_partial = self.device.partial_program_armed();
        let dev_report = self.device.program_page(block, page, data, &parity)?;
        self.page_ecc.insert((block, page), t);
        // Channel model: buffer load + encode + data-in occupy the
        // channel (per-channel ECC engine), the ISPP program the die.
        let die = self.config.geometry.die_of_block(block);
        self.scheduler.issue(
            die,
            OpTiming::write(
                path.load_s + path.encode_s + path.transfer_s,
                dev_report.duration_s,
            ),
        );

        let ecc_energy = self.config.ecc_power.power_w(t) * path.encode_s;
        Ok(WriteReport {
            latency_s: path.load_s + path.encode_s + path.transfer_s + dev_report.duration_s,
            energy_j: dev_report.energy_j + ecc_energy,
            load_s: path.load_s,
            encode_s: path.encode_s,
            transfer_s: path.transfer_s,
            program_s: dev_report.duration_s,
            t_used: t,
            algorithm: self.device.algorithm(),
            injected_partial,
        })
    }

    /// Full read datapath: tR -> codeword transfer -> ECC decode, with
    /// stepped read-reference retry on an uncorrectable outcome when a
    /// [`RetryPolicy`] is enabled.
    ///
    /// The decode is *functionally executed* on the error-injected data:
    /// the outcome reflects real BCH behaviour, including uncorrectable
    /// pages at wear-out when the capability is set too low.
    ///
    /// With retry enabled, the first sense starts at the block's learned
    /// offset (nominal when none); if it fails to decode, the ladder is
    /// walked — every extra sense a full device read charged to the
    /// channel scheduler — until a sense decodes (the offset is learned
    /// for the block) or the sense budget is spent. The returned report
    /// aggregates all senses: `latency_s`/`energy_j` are totals,
    /// `senses`/`retry_latency_s` expose the retry cost, and
    /// `data`/`outcome`/`reference_offset` come from the final sense.
    /// With retry disabled ([`RetryPolicy::disabled`], the default) the
    /// datapath is bit-identical to the pre-retry controller.
    ///
    /// # Errors
    ///
    /// [`CtrlError::UnknownPageConfig`] if the page was not written
    /// through this controller; device errors propagate.
    pub fn read_page(&mut self, block: usize, page: usize) -> Result<ReadReport, CtrlError> {
        let enabled = self.retry.is_enabled();
        let start = if enabled { self.offsets.get(block) } else { 0 };
        let mut report = self.read_page_at_offset(block, page, start)?;
        if enabled && report.outcome == DecodeOutcome::Uncorrectable {
            self.retry_stats.retried_reads += 1;
            let ladder = self.retry.ladder.clone();
            let budget = self.retry.max_senses;
            let mut recovered = false;
            for off in ladder {
                if off == start || report.senses >= budget {
                    continue;
                }
                let next = self.read_page_at_offset(block, page, off)?;
                let decoded = next.outcome != DecodeOutcome::Uncorrectable;
                self.retry_stats.extra_senses += 1;
                report.senses += 1;
                report.latency_s += next.latency_s;
                report.retry_latency_s += next.latency_s;
                report.energy_j += next.energy_j;
                report.sense_s += next.sense_s;
                report.transfer_s += next.transfer_s;
                report.decode_s += next.decode_s;
                report.data = next.data;
                report.outcome = next.outcome;
                report.reference_offset = off;
                if decoded {
                    recovered = true;
                    self.offsets.learn(block, off);
                    break;
                }
            }
            if recovered {
                self.retry_stats.recovered_reads += 1;
            } else {
                self.retry_stats.exhausted_reads += 1;
            }
        }
        if report.outcome == DecodeOutcome::Uncorrectable {
            self.regs.status_mut().uncorrectable_seen = true;
        }
        Ok(report)
    }

    /// One sense of the read datapath at a given read-reference offset
    /// (the pre-retry `read_page` body, parameterized by `offset`).
    /// Does not touch the status register — the caller judges the
    /// *final* outcome.
    fn read_page_at_offset(
        &mut self,
        block: usize,
        page: usize,
        offset: i32,
    ) -> Result<ReadReport, CtrlError> {
        let t = *self
            .page_ecc
            .get(&(block, page))
            .ok_or(CtrlError::UnknownPageConfig { block, page })?;

        let interference_rber = self.device.page_interference_rber(block, page)?;
        let (mut data, mut spare, dev_report) = self.device.read_page_at(block, page, offset)?;

        // Decode at the page's write-time capability, restoring the host
        // configuration afterwards; going through the adaptive codec keeps
        // the reliability-manager feedback counters accurate.
        let host_t = self.codec.correction();
        self.codec.set_correction(t)?;
        let code = self.codec.code()?;
        let mut parity = spare.split_off(0); // parity occupies the spare prefix
        parity.truncate(code.parity_bytes());
        let outcome = self.codec.decode(&mut data, &mut parity);
        self.codec.set_correction(host_t)?;
        let outcome = outcome?;

        let path = crate::throughput::read_path(
            self.device.timing(),
            &self.config.flash_if,
            &self.config.ecc_hw,
            data.len() * 8,
            code.parity_bits(),
            t,
        );
        // Channel model: the die senses (tR), then the codeword streams
        // out and decodes on the channel's ECC engine.
        let die = self.config.geometry.die_of_block(block);
        self.scheduler.issue(
            die,
            OpTiming::read(path.sense_s, path.transfer_s + path.decode_s),
        );

        let ecc_energy = self.config.ecc_power.power_w(t) * path.decode_s;
        Ok(ReadReport {
            data,
            outcome,
            latency_s: path.sense_s + path.transfer_s + path.decode_s,
            energy_j: dev_report.energy_j + ecc_energy,
            sense_s: path.sense_s,
            transfer_s: path.transfer_s,
            decode_s: path.decode_s,
            t_used: t,
            senses: 1,
            reference_offset: offset,
            retry_latency_s: 0.0,
            interference_rber,
        })
    }
}

impl fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryController")
            .field("correction", &self.correction())
            .field("algorithm", &self.algorithm())
            .field("service_level", &self.service_level())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> MemoryController {
        MemoryController::new(ControllerConfig::date2012(), 5).unwrap()
    }

    #[test]
    fn write_read_round_trip_with_correction() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        // Age heavily so raw errors are certain, then rely on ECC.
        ctrl.age_block(0, 500_000).unwrap();
        ctrl.apply(ConfigCommand::SetCorrection(40)).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i * 31) as u8).collect();
        let w = ctrl.write_page(0, 0, &data).unwrap();
        assert_eq!(w.t_used, 40);
        let r = ctrl.read_page(0, 0).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.data, data, "ECC must deliver clean data");
    }

    #[test]
    fn read_uses_write_time_capability() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        ctrl.apply(ConfigCommand::SetCorrection(10)).unwrap();
        let data = vec![0x77u8; 4096];
        ctrl.write_page(0, 0, &data).unwrap();
        // Re-configure before reading: the read must still use t = 10.
        ctrl.apply(ConfigCommand::SetCorrection(65)).unwrap();
        let r = ctrl.read_page(0, 0).unwrap();
        assert_eq!(r.t_used, 10);
        assert_eq!(r.data, data);
    }

    #[test]
    fn unknown_page_config_rejected() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        assert!(matches!(
            ctrl.read_page(0, 3),
            Err(CtrlError::UnknownPageConfig { .. })
        ));
    }

    #[test]
    fn erase_invalidates_page_metadata() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        let data = vec![1u8; 4096];
        ctrl.write_page(0, 0, &data).unwrap();
        ctrl.erase_block(0).unwrap();
        assert!(matches!(
            ctrl.read_page(0, 0),
            Err(CtrlError::UnknownPageConfig { .. })
        ));
    }

    #[test]
    fn config_commands_drive_both_layers() {
        let mut ctrl = controller();
        ctrl.apply(ConfigCommand::SetAlgorithm(ProgramAlgorithm::IsppDv))
            .unwrap();
        ctrl.apply(ConfigCommand::SetCorrection(14)).unwrap();
        assert_eq!(ctrl.algorithm(), ProgramAlgorithm::IsppDv);
        assert_eq!(ctrl.correction(), 14);
        assert!(ctrl.regs().status().ecc_reconfigured);
        assert!(ctrl.apply(ConfigCommand::SetCorrection(66)).is_err());
    }

    #[test]
    fn wrong_page_size_rejected() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        assert!(matches!(
            ctrl.write_page(0, 0, &[0u8; 100]),
            Err(CtrlError::BufferSize { .. })
        ));
    }

    #[test]
    fn write_latency_breakdown_consistent() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        let w = ctrl.write_page(0, 0, &vec![0u8; 4096]).unwrap();
        let sum = w.load_s + w.encode_s + w.transfer_s + w.program_s;
        assert!((w.latency_s - sum).abs() / sum < 1e-9);
        // Program dominates the write path (paper 6.3.3).
        assert!(w.program_s > 0.7 * w.latency_s);
    }

    #[test]
    fn dv_write_slower_read_not_slower() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        ctrl.erase_block(1).unwrap();
        let data = vec![0xABu8; 4096];
        let w_sv = ctrl.write_page(0, 0, &data).unwrap();
        let r_sv = ctrl.read_page(0, 0).unwrap();
        ctrl.apply(ConfigCommand::SetAlgorithm(ProgramAlgorithm::IsppDv))
            .unwrap();
        let w_dv = ctrl.write_page(1, 0, &data).unwrap();
        let r_dv = ctrl.read_page(1, 0).unwrap();
        assert!(w_dv.latency_s > 1.3 * w_sv.latency_s);
        assert!((r_dv.latency_s - r_sv.latency_s).abs() < 1e-9);
    }

    #[test]
    fn two_round_load_shortens_writes() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        let data = vec![0u8; 4096];
        let one = ctrl.write_page(0, 0, &data).unwrap();
        ctrl.apply(ConfigCommand::SetTwoRoundLoad(true)).unwrap();
        ctrl.erase_block(1).unwrap();
        let two = ctrl.write_page(1, 0, &data).unwrap();
        assert!(two.load_s < one.load_s);
    }

    #[test]
    fn trim_unmaps_single_pages() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        let data = vec![9u8; 4096];
        ctrl.write_page(0, 0, &data).unwrap();
        ctrl.write_page(0, 1, &data).unwrap();
        assert!(ctrl.trim_page(0, 0));
        assert!(!ctrl.trim_page(0, 0), "second trim is a no-op");
        assert!(matches!(
            ctrl.read_page(0, 0),
            Err(CtrlError::UnknownPageConfig { .. })
        ));
        // The sibling page is untouched.
        assert_eq!(ctrl.read_page(0, 1).unwrap().data, data);
    }

    #[test]
    fn apply_point_skips_redundant_register_writes() {
        let mut ctrl = controller();
        let base = ctrl.regs().commands_applied();
        ctrl.apply_point(ProgramAlgorithm::IsppDv, 14).unwrap();
        assert_eq!(ctrl.regs().commands_applied() - base, 2);
        ctrl.apply_point(ProgramAlgorithm::IsppDv, 14).unwrap();
        assert_eq!(
            ctrl.regs().commands_applied() - base,
            2,
            "no-change round must not touch the registers"
        );
        ctrl.apply_point(ProgramAlgorithm::IsppDv, 20).unwrap();
        assert_eq!(ctrl.regs().commands_applied() - base, 3);
        assert_eq!(ctrl.correction(), 20);
        assert_eq!(ctrl.algorithm(), ProgramAlgorithm::IsppDv);
    }

    #[test]
    fn batch_entry_points_round_trip() {
        let mut ctrl = controller();
        ctrl.erase_block(0).unwrap();
        let pages: Vec<Vec<u8>> = (0..4).map(|p| vec![p as u8; 4096]).collect();
        let writes: Vec<(usize, &[u8])> =
            pages.iter().enumerate().map(|(p, d)| (p, &d[..])).collect();
        let wrote = ctrl.write_pages(0, &writes).unwrap();
        assert_eq!(wrote.len(), 4);
        let reads = ctrl.read_pages(0, &[0, 1, 2, 3]).unwrap();
        for (p, r) in reads.iter().enumerate() {
            assert_eq!(r.data, pages[p]);
        }
        // First error aborts the remainder.
        assert!(ctrl.read_pages(0, &[0, 60, 1]).is_err());
    }

    #[test]
    fn config_builder_presets_and_validation() {
        let config = ControllerConfig::builder()
            .ecc_tmin(5)
            .ecc_tmax(30)
            .build()
            .unwrap();
        assert_eq!((config.ecc_tmin, config.ecc_tmax), (5, 30));
        assert_eq!(config.ecc_m, 16, "preset fields survive");
        assert_eq!(config.ecc_kernel, CodecKernel::Auto, "preset kernel");
        assert!(MemoryController::new(config, 1).is_ok());

        assert!(matches!(
            ControllerConfig::builder().ecc_tmin(0).build(),
            Err(CtrlError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ControllerConfig::builder().ecc_tmax(2).build(),
            Err(CtrlError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ControllerConfig::builder().ecc_m(17).build(),
            Err(CtrlError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn ecc_kernel_knob_reaches_the_codec() {
        let config = ControllerConfig::builder()
            .ecc_kernel(CodecKernel::Byte)
            .build()
            .unwrap();
        let ctrl = MemoryController::new(config, 1).unwrap();
        assert_eq!(ctrl.codec().kernel(), CodecKernel::Byte);
    }

    #[test]
    fn single_die_makespan_equals_the_latency_sum() {
        let mut ctrl = controller();
        ctrl.scheduler_mut().begin_batch();
        let data = vec![0x3Cu8; 4096];
        let mut sum = ctrl.erase_block(1).unwrap().duration_s;
        for p in 0..3 {
            sum += ctrl.write_page(1, p, &data).unwrap().latency_s;
        }
        for p in 0..3 {
            sum += ctrl.read_page(1, p).unwrap().latency_s;
        }
        let makespan = ctrl.scheduler().batch_makespan_s();
        assert!(
            (makespan - sum).abs() < 1e-12,
            "1x1 makespan {makespan} must equal serial sum {sum}"
        );
        assert_eq!(ctrl.scheduler().batch_ops(), 7);
    }

    #[test]
    fn multi_channel_makespan_beats_the_serial_sum() {
        let mut config = ControllerConfig::date2012();
        config.geometry = mlcx_nand::DeviceGeometry {
            blocks: 64,
            topology: mlcx_nand::Topology::new(4, 1),
            ..config.geometry
        };
        let mut ctrl = MemoryController::new(config, 5).unwrap();
        // One block per die (blocks 0, 16, 32, 48).
        for die in 0..4 {
            ctrl.erase_block(die * 16).unwrap();
        }
        ctrl.scheduler_mut().begin_batch();
        let data = vec![0xA5u8; 4096];
        let mut sum = 0.0;
        for die in 0..4 {
            sum += ctrl.write_page(die * 16, 0, &data).unwrap().latency_s;
        }
        let makespan = ctrl.scheduler().batch_makespan_s();
        assert!(
            makespan < 0.5 * sum,
            "4 channels must overlap 4 programs: makespan {makespan} vs sum {sum}"
        );
        assert!(ctrl.scheduler().batch_channel_utilization() > 0.0);
    }

    #[test]
    fn age_die_skews_block_wear_per_die() {
        let mut config = ControllerConfig::date2012();
        config.geometry.topology = mlcx_nand::Topology::new(2, 1);
        let mut ctrl = MemoryController::new(config, 5).unwrap();
        ctrl.age_die(1, 42_000).unwrap();
        assert_eq!(ctrl.device().block_cycles(0).unwrap(), 0);
        assert_eq!(ctrl.device().block_cycles(32).unwrap(), 42_000);
        assert!(ctrl.age_die(2, 1).is_err());
    }

    #[test]
    fn builder_rejects_topologies_that_split_blocks_unevenly() {
        let result = ControllerConfig::builder()
            .geometry(mlcx_nand::DeviceGeometry {
                topology: mlcx_nand::Topology::new(3, 1), // 64 % 3 != 0
                ..mlcx_nand::DeviceGeometry::date2012()
            })
            .build();
        assert!(matches!(result, Err(CtrlError::InvalidConfig { .. })));
    }

    #[test]
    fn spare_overflow_detected() {
        let mut config = ControllerConfig::date2012();
        config.geometry.spare_bytes = 64; // too small for t = 65 parity
        assert!(matches!(
            MemoryController::new(config, 1),
            Err(CtrlError::SpareOverflow { .. })
        ));
    }

    #[test]
    fn retry_recovers_uncorrectable_reads_and_learns_the_offset() {
        use crate::retry::RetryPolicy;
        // A parked mid-life page: the retention shift pushes the raw
        // error count far past t = 65 at the nominal reference (~95
        // mean raw errors), while any rung within a step of the ~2.7
        // step shift decodes with wide margin — the endurance floor at
        // 100k cycles is only ~1e-4.
        let config = ControllerConfig::builder()
            .disturb(DisturbModel {
                retention_scale: 2e-3,
                rber_per_step: 1e-3,
                ..DisturbModel::disabled()
            })
            .retry(RetryPolicy::date2012())
            .build()
            .unwrap();
        let mut ctrl = MemoryController::new(config, 9).unwrap();
        ctrl.apply(ConfigCommand::SetCorrection(65)).unwrap();
        ctrl.erase_block(0).unwrap();
        ctrl.age_block(0, 100_000).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i * 13) as u8).collect();
        ctrl.write_page(0, 0, &data).unwrap();
        ctrl.device_mut().advance_time_hours(20_000.0);

        let r = ctrl.read_page(0, 0).unwrap();
        assert!(r.outcome.is_success(), "the ladder must recover the read");
        assert_eq!(r.data, data);
        assert!(r.senses > 1, "the first sense must have failed");
        assert_ne!(r.reference_offset, 0);
        assert!(r.retry_latency_s > 0.0 && r.retry_latency_s < r.latency_s);
        let stats = ctrl.retry_stats();
        assert_eq!(
            (
                stats.retried_reads,
                stats.recovered_reads,
                stats.exhausted_reads
            ),
            (1, 1, 0)
        );
        assert_eq!(stats.extra_senses, (r.senses - 1) as u64);
        assert_eq!(ctrl.read_offsets().get(0), r.reference_offset);

        // Steady state: the learned offset makes the next read a single
        // sense at the optimum.
        let r2 = ctrl.read_page(0, 0).unwrap();
        assert!(r2.outcome.is_success());
        assert_eq!(r2.senses, 1);
        assert_eq!(r2.reference_offset, r.reference_offset);
        assert_eq!(r2.retry_latency_s, 0.0);

        // The effective (offset-aware) disturb RBER is what the upper
        // layers should now plan against.
        let eff = ctrl.block_effective_disturb_rber(0).unwrap();
        let nominal = ctrl.device().block_disturb_rber(0).unwrap();
        assert!(eff < nominal / 2.0, "eff {eff:e} vs nominal {nominal:e}");

        // Erase resets the distributions and forgets the offset.
        ctrl.erase_block(0).unwrap();
        assert_eq!(ctrl.read_offsets().get(0), 0);
        assert!(ctrl.read_offsets().is_empty());
    }

    #[test]
    fn disabled_retry_is_bit_identical_to_the_pre_retry_datapath() {
        // Two identically-seeded controllers, one carrying the (enabled)
        // retry knob: on a workload whose reads all decode, every report
        // field must match — retry only engages on uncorrectable reads.
        let stress = DisturbModel {
            retention_scale: 6e-4,
            rber_per_step: 1e-3,
            ..DisturbModel::disabled()
        };
        let base = ControllerConfig::builder().disturb(stress).build().unwrap();
        let with_retry = ControllerConfig::builder()
            .disturb(stress)
            .retry(RetryPolicy::date2012())
            .build()
            .unwrap();
        let mut a = MemoryController::new(base, 11).unwrap();
        let mut b = MemoryController::new(with_retry, 11).unwrap();
        for ctrl in [&mut a, &mut b] {
            ctrl.apply(ConfigCommand::SetCorrection(65)).unwrap();
            ctrl.erase_block(0).unwrap();
            ctrl.age_block(0, 100_000).unwrap();
            for page in 0..4 {
                let data: Vec<u8> = (0..4096).map(|i| (i * 7 + page) as u8).collect();
                ctrl.write_page(0, page, &data).unwrap();
            }
        }
        for page in 0..4 {
            let ra = a.read_page(0, page).unwrap();
            let rb = b.read_page(0, page).unwrap();
            assert_eq!(ra, rb, "page {page} diverged");
            assert_eq!(ra.senses, 1);
        }
        assert_eq!(b.retry_stats(), RetryStats::default());
    }
}
