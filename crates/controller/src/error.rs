//! Controller error type.

use std::error::Error;
use std::fmt;

use mlcx_bch::BchError;
use mlcx_nand::NandError;

/// Errors raised by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtrlError {
    /// Propagated ECC codec error.
    Ecc(BchError),
    /// Propagated flash device error.
    Nand(NandError),
    /// The ECC parity at the configured capability does not fit the
    /// device spare area.
    SpareOverflow {
        /// Required parity bytes.
        parity_bytes: usize,
        /// Available spare bytes.
        spare_bytes: usize,
    },
    /// Host buffer does not match the page size.
    BufferSize {
        /// Expected byte length.
        expected: usize,
        /// Provided byte length.
        actual: usize,
    },
    /// A read hit a page whose ECC configuration is unknown (written
    /// outside this controller).
    UnknownPageConfig {
        /// Offending block.
        block: usize,
        /// Offending page.
        page: usize,
    },
    /// A builder was asked to produce an inconsistent configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::Ecc(e) => write!(f, "ecc: {e}"),
            CtrlError::Nand(e) => write!(f, "nand: {e}"),
            CtrlError::SpareOverflow {
                parity_bytes,
                spare_bytes,
            } => write!(
                f,
                "parity ({parity_bytes} B) exceeds the spare area ({spare_bytes} B)"
            ),
            CtrlError::BufferSize { expected, actual } => {
                write!(f, "host buffer is {actual} bytes, expected {expected}")
            }
            CtrlError::UnknownPageConfig { block, page } => {
                write!(
                    f,
                    "page {page} of block {block} has no recorded ECC configuration"
                )
            }
            CtrlError::InvalidConfig { reason } => {
                write!(f, "invalid controller configuration: {reason}")
            }
        }
    }
}

impl Error for CtrlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtrlError::Ecc(e) => Some(e),
            CtrlError::Nand(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BchError> for CtrlError {
    fn from(e: BchError) -> Self {
        CtrlError::Ecc(e)
    }
}

impl From<NandError> for CtrlError {
    fn from(e: NandError) -> Self {
        CtrlError::Nand(e)
    }
}
