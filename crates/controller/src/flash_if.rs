//! Flash device bus interface.
//!
//! The controller talks to the NAND die over an 8-bit asynchronous bus
//! (the 2012-era ONFI legacy interface): command and address cycles
//! followed by data transfer at roughly 32 MB/s. Codeword transfer time
//! over this bus is a first-class term of the read path — together with
//! tR and the ECC decode latency it determines the read throughput of
//! Fig. 11.

/// The NAND bus interface.
///
/// # Example
///
/// ```
/// use mlcx_controller::flash_if::FlashInterface;
///
/// let bus = FlashInterface::date2012();
/// // A 4 KiB codeword takes on the order of 130 us on a 32 MB/s bus.
/// let t = bus.data_transfer_time_s(4096 + 130);
/// assert!(t > 100e-6 && t < 180e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashInterface {
    /// Sustained data rate of the bus, bytes per second.
    pub bus_rate_bps: f64,
    /// Command cycles per operation.
    pub command_cycles: u32,
    /// Address cycles per operation.
    pub address_cycles: u32,
    /// Duration of one command/address cycle, seconds.
    pub cycle_time_s: f64,
}

impl FlashInterface {
    /// The paper-era interface: 8-bit asynchronous bus at 32 MB/s.
    pub fn date2012() -> Self {
        FlashInterface {
            bus_rate_bps: 32.0e6,
            command_cycles: 2,
            address_cycles: 5,
            cycle_time_s: 25e-9,
        }
    }

    /// Command + address phase overhead, seconds.
    pub fn command_overhead_s(&self) -> f64 {
        (self.command_cycles + self.address_cycles) as f64 * self.cycle_time_s
    }

    /// Time to move `bytes` of data over the bus, seconds.
    pub fn data_transfer_time_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bus_rate_bps
    }

    /// Full transfer including command/address phases, seconds.
    pub fn transaction_time_s(&self, bytes: usize) -> f64 {
        self.command_overhead_s() + self.data_transfer_time_s(bytes)
    }
}

impl Default for FlashInterface {
    fn default() -> Self {
        Self::date2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codeword_transfer_in_expected_band() {
        let bus = FlashInterface::date2012();
        // 4 KiB + worst-case parity at 32 MB/s: ~132 us.
        let t = bus.data_transfer_time_s(4096 + 130);
        assert!((125e-6..140e-6).contains(&t), "t = {t}");
    }

    #[test]
    fn command_overhead_is_negligible_but_positive() {
        let bus = FlashInterface::date2012();
        let o = bus.command_overhead_s();
        assert!(o > 0.0 && o < 1e-6);
        assert!(bus.transaction_time_s(4096) > bus.data_transfer_time_s(4096));
    }
}
