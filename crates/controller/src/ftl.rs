//! A minimal flash translation layer (FTL) over the memory controller.
//!
//! NAND forbids in-place update: rewriting a logical page means writing a
//! new physical page and invalidating the old one, with garbage
//! collection reclaiming blocks full of stale pages. The paper's
//! controller sits *below* this layer; providing a small, correct FTL
//! here lets whole-workload studies (and the differentiated-services
//! layer) run realistic overwrite traffic on top of the cross-layer
//! machinery.
//!
//! Design points (kept deliberately simple and fully tested):
//!
//! * logical space = all blocks minus one spare (GC headroom);
//! * allocation is wear-aware: the next open block is the erased block
//!   with the fewest P/E cycles — a greedy wear-leveler;
//! * garbage collection is greedy-victim: the block with the most stale
//!   pages is reclaimed, live pages relocated.

use std::collections::HashMap;

use crate::controller::MemoryController;
use crate::error::CtrlError;

/// Errors raised by the FTL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// Logical page number beyond the exported capacity.
    LpnOutOfRange {
        /// The offending logical page number.
        lpn: usize,
        /// Exported logical pages.
        capacity: usize,
    },
    /// Reading a logical page that was never written.
    NotWritten {
        /// The offending logical page number.
        lpn: usize,
    },
    /// No space left even after garbage collection (over-committed).
    OutOfSpace,
    /// Propagated controller error.
    Ctrl(CtrlError),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "logical page {lpn} out of range ({capacity} exported)")
            }
            FtlError::NotWritten { lpn } => write!(f, "logical page {lpn} was never written"),
            FtlError::OutOfSpace => write!(f, "no reclaimable space left"),
            FtlError::Ctrl(e) => write!(f, "controller: {e}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Ctrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtrlError> for FtlError {
    fn from(e: CtrlError) -> Self {
        FtlError::Ctrl(e)
    }
}

impl From<mlcx_nand::NandError> for FtlError {
    fn from(e: mlcx_nand::NandError) -> Self {
        FtlError::Ctrl(CtrlError::Nand(e))
    }
}

/// FTL traffic and maintenance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Physical page writes issued (host + relocation).
    pub physical_writes: u64,
    /// Garbage-collection passes run.
    pub gc_runs: u64,
    /// Live pages relocated by GC.
    pub relocated_pages: u64,
}

impl FtlStats {
    /// Write amplification: physical / host writes (1.0 when no GC ran).
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.physical_writes as f64 / self.host_writes as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Live(usize), // lpn
    Stale,
}

/// A wear-leveling flash translation layer over a [`MemoryController`].
///
/// # Example
///
/// ```
/// use mlcx_controller::ftl::Ftl;
/// use mlcx_controller::{ControllerConfig, MemoryController};
///
/// let ctrl = MemoryController::new(ControllerConfig::date2012(), 5)?;
/// let mut ftl = Ftl::new(ctrl)?;
/// let page = vec![0xAAu8; 4096];
/// ftl.write(0, &page)?;
/// ftl.write(0, &page)?; // overwrite: no erase needed from the host side
/// assert_eq!(ftl.read(0)?, page);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Ftl {
    ctrl: MemoryController,
    /// lpn -> (block, page).
    map: HashMap<usize, (usize, usize)>,
    /// Physical page states, `[block][page]`.
    states: Vec<Vec<PageState>>,
    /// Currently open block and its next free page, if any.
    open: Option<(usize, usize)>,
    capacity_pages: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Builds the FTL, erasing every block to a known state.
    ///
    /// # Errors
    ///
    /// Controller errors from the initial format pass.
    pub fn new(mut ctrl: MemoryController) -> Result<Self, FtlError> {
        let geometry = *ctrl.device().geometry();
        for block in 0..geometry.blocks {
            ctrl.erase_block(block)?;
        }
        let states = vec![vec![PageState::Erased; geometry.pages_per_block]; geometry.blocks];
        // Keep one block of headroom for garbage collection.
        let capacity_pages = (geometry.blocks - 1) * geometry.pages_per_block;
        Ok(Ftl {
            ctrl,
            map: HashMap::new(),
            states,
            open: None,
            capacity_pages,
            stats: FtlStats::default(),
        })
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Traffic counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Spread between the most- and least-worn block (wear-leveler
    /// quality metric).
    ///
    /// # Errors
    ///
    /// Controller errors propagate.
    pub fn wear_spread(&self) -> Result<u64, FtlError> {
        let blocks = self.ctrl.device().geometry().blocks;
        let mut lo = u64::MAX;
        let mut hi = 0;
        for b in 0..blocks {
            let c = self.ctrl.device().block_cycles(b)?;
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Ok(hi - lo)
    }

    /// Writes (or overwrites) a logical page.
    ///
    /// # Errors
    ///
    /// Range/space errors, or controller errors.
    pub fn write(&mut self, lpn: usize, data: &[u8]) -> Result<(), FtlError> {
        if lpn >= self.capacity_pages {
            return Err(FtlError::LpnOutOfRange {
                lpn,
                capacity: self.capacity_pages,
            });
        }
        let (block, page) = self.allocate()?;
        self.ctrl.write_page(block, page, data)?;
        if let Some((ob, op)) = self.map.insert(lpn, (block, page)) {
            self.states[ob][op] = PageState::Stale;
        }
        self.states[block][page] = PageState::Live(lpn);
        self.stats.host_writes += 1;
        self.stats.physical_writes += 1;
        Ok(())
    }

    /// Reads a logical page back through the ECC datapath.
    ///
    /// # Errors
    ///
    /// [`FtlError::NotWritten`] for unmapped pages; controller errors.
    pub fn read(&mut self, lpn: usize) -> Result<Vec<u8>, FtlError> {
        let &(block, page) = self.map.get(&lpn).ok_or(FtlError::NotWritten { lpn })?;
        let report = self.ctrl.read_page(block, page)?;
        Ok(report.data)
    }

    fn allocate(&mut self) -> Result<(usize, usize), FtlError> {
        loop {
            if let Some((block, page)) = self.open {
                let pages = self.ctrl.device().geometry().pages_per_block;
                if page < pages {
                    self.open = Some((block, page + 1));
                    return Ok((block, page));
                }
                self.open = None;
            }
            if let Some(block) = self.pick_erased_block()? {
                self.open = Some((block, 0));
                continue;
            }
            self.garbage_collect()?;
        }
    }

    /// The erased block with the fewest P/E cycles (wear-aware pick).
    fn pick_erased_block(&self) -> Result<Option<usize>, FtlError> {
        let mut best: Option<(u64, usize)> = None;
        for (b, pages) in self.states.iter().enumerate() {
            if pages.iter().all(|s| *s == PageState::Erased) {
                let cycles = self.ctrl.device().block_cycles(b)?;
                if best.is_none_or(|(c, _)| cycles < c) {
                    best = Some((cycles, b));
                }
            }
        }
        Ok(best.map(|(_, b)| b))
    }

    fn garbage_collect(&mut self) -> Result<(), FtlError> {
        // Victim: most stale pages; must not be the open block.
        let open_block = self.open.map(|(b, _)| b);
        let victim = self
            .states
            .iter()
            .enumerate()
            .filter(|(b, _)| Some(*b) != open_block)
            .max_by_key(|(_, pages)| {
                pages
                    .iter()
                    .filter(|s| matches!(s, PageState::Stale))
                    .count()
            })
            .map(|(b, _)| b)
            .ok_or(FtlError::OutOfSpace)?;
        let stale = self.states[victim]
            .iter()
            .filter(|s| matches!(s, PageState::Stale))
            .count();
        if stale == 0 {
            return Err(FtlError::OutOfSpace);
        }

        // Relocate live pages out of the victim.
        let live: Vec<(usize, usize)> = self.states[victim]
            .iter()
            .enumerate()
            .filter_map(|(p, s)| match s {
                PageState::Live(lpn) => Some((p, *lpn)),
                _ => None,
            })
            .collect();
        for (page, lpn) in live {
            let data = self.ctrl.read_page(victim, page)?.data;
            let (nb, np) = self.allocate_for_gc(victim)?;
            self.ctrl.write_page(nb, np, &data)?;
            self.map.insert(lpn, (nb, np));
            self.states[nb][np] = PageState::Live(lpn);
            self.stats.physical_writes += 1;
            self.stats.relocated_pages += 1;
        }
        self.ctrl.erase_block(victim)?;
        for s in &mut self.states[victim] {
            *s = PageState::Erased;
        }
        self.stats.gc_runs += 1;
        Ok(())
    }

    /// Allocation used during GC: like [`Ftl::allocate`] but must never
    /// recurse into GC (the spare block guarantees room).
    fn allocate_for_gc(&mut self, victim: usize) -> Result<(usize, usize), FtlError> {
        loop {
            if let Some((block, page)) = self.open {
                let pages = self.ctrl.device().geometry().pages_per_block;
                if block != victim && page < pages {
                    self.open = Some((block, page + 1));
                    return Ok((block, page));
                }
                if page >= pages {
                    self.open = None;
                    continue;
                }
            }
            // Find any erased block that is not the victim.
            let candidate = {
                let mut found = None;
                for (b, pages) in self.states.iter().enumerate() {
                    if b != victim && pages.iter().all(|s| *s == PageState::Erased) {
                        found = Some(b);
                        break;
                    }
                }
                found
            };
            match candidate {
                Some(b) => {
                    self.open = Some((b, 0));
                }
                None => return Err(FtlError::OutOfSpace),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;

    fn small_ftl() -> Ftl {
        // A small device keeps GC tests fast: 6 blocks x 8 pages.
        let mut config = ControllerConfig::date2012();
        config.geometry.blocks = 6;
        config.geometry.pages_per_block = 8;
        let ctrl = MemoryController::new(config, 42).unwrap();
        Ftl::new(ctrl).unwrap()
    }

    fn page(tag: u8) -> Vec<u8> {
        (0..4096)
            .map(|i| (i as u8).wrapping_mul(tag).wrapping_add(tag))
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let mut ftl = small_ftl();
        for lpn in 0..10 {
            ftl.write(lpn, &page(lpn as u8 + 1)).unwrap();
        }
        for lpn in 0..10 {
            assert_eq!(ftl.read(lpn).unwrap(), page(lpn as u8 + 1), "lpn {lpn}");
        }
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let mut ftl = small_ftl();
        ftl.write(3, &page(1)).unwrap();
        ftl.write(3, &page(2)).unwrap();
        ftl.write(3, &page(3)).unwrap();
        assert_eq!(ftl.read(3).unwrap(), page(3));
        assert_eq!(ftl.stats().host_writes, 3);
    }

    #[test]
    fn unwritten_and_out_of_range_rejected() {
        let mut ftl = small_ftl();
        assert!(matches!(ftl.read(0), Err(FtlError::NotWritten { .. })));
        let cap = ftl.capacity_pages();
        assert!(matches!(
            ftl.write(cap, &page(1)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
    }

    #[test]
    fn garbage_collection_reclaims_stale_space() {
        let mut ftl = small_ftl();
        // Hammer a small working set far beyond raw capacity: GC must
        // reclaim stale versions indefinitely.
        for round in 0..30u32 {
            for lpn in 0..4 {
                ftl.write(lpn, &page((round % 7 + lpn as u32 + 1) as u8))
                    .unwrap();
            }
        }
        for lpn in 0..4 {
            assert_eq!(
                ftl.read(lpn).unwrap(),
                page((29 % 7 + lpn as u32 + 1) as u8)
            );
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs > 0, "GC must have run");
        assert_eq!(stats.host_writes, 120);
        assert!(stats.write_amplification() >= 1.0);
    }

    #[test]
    fn wear_stays_leveled_under_hot_traffic() {
        let mut ftl = small_ftl();
        for round in 0..60u32 {
            ftl.write(0, &page((round % 251) as u8)).unwrap();
            ftl.write(1, &page((round % 13) as u8)).unwrap();
        }
        // The greedy wear-aware allocator must keep the spread tight
        // relative to the total erase work.
        let spread = ftl.wear_spread().unwrap();
        assert!(spread <= 6, "wear spread = {spread}");
        assert!(ftl.stats().gc_runs > 0);
    }

    #[test]
    fn full_logical_capacity_is_usable() {
        let mut ftl = small_ftl();
        let cap = ftl.capacity_pages();
        for lpn in 0..cap {
            ftl.write(lpn, &page((lpn % 200) as u8 + 1)).unwrap();
        }
        // Every page readable; then overwrite a few to force GC at full
        // utilization (the spare block provides the headroom).
        for lpn in (0..cap).step_by(7) {
            ftl.write(lpn, &page(9)).unwrap();
        }
        assert_eq!(ftl.read(0).unwrap(), page(9));
        assert_eq!(ftl.read(1).unwrap(), page(2));
    }
}
