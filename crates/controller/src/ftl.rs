//! A minimal flash translation layer (FTL) over the memory controller.
//!
//! NAND forbids in-place update: rewriting a logical page means writing a
//! new physical page and invalidating the old one, with garbage
//! collection reclaiming blocks full of stale pages. The paper's
//! controller sits *below* this layer; providing a small, correct FTL
//! here lets whole-workload studies (and the differentiated-services
//! layer) run realistic overwrite traffic on top of the cross-layer
//! machinery.
//!
//! The layer is split in two so it can serve two kinds of caller:
//!
//! * [`LogicalMap`] — the pure mapping/allocation/garbage-collection
//!   state machine. It owns **no controller**: a logical write is
//!   *planned* into an ordered sequence of physical operations
//!   ([`FtlOp`]) that the caller executes however it likes. This is what
//!   the workload simulator (`mlcx_core::sim`) drives, compiling plans
//!   into batched `StorageEngine` commands so every relocation write
//!   goes through the service's cross-layer operating point.
//! * [`Ftl`] — the synchronous convenience wrapper that owns a
//!   [`MemoryController`] and executes each plan immediately.
//!
//! Design points (kept deliberately simple and fully tested):
//!
//! * logical space = all blocks minus one spare (GC headroom);
//! * allocation is wear-aware: the next open block is the erased block
//!   with the fewest P/E cycles — a greedy wear-leveler;
//! * garbage collection is greedy-victim: the block with the most stale
//!   pages is reclaimed, live pages relocated;
//! * cleaning runs *early*: whenever the writable-slot reserve falls to
//!   one block's worth, GC runs before the next host write. This keeps
//!   the invariant `free slots >= live(victim)` so a relocation can
//!   never strand (the seed implementation could report a spurious
//!   `OutOfSpace` when every block held a mix of live and stale pages
//!   and no fully-erased block was left to relocate into).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::controller::MemoryController;
use crate::error::CtrlError;

/// Errors raised by the FTL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// Logical page number beyond the exported capacity.
    LpnOutOfRange {
        /// The offending logical page number.
        lpn: usize,
        /// Exported logical pages.
        capacity: usize,
    },
    /// Reading a logical page that was never written.
    NotWritten {
        /// The offending logical page number.
        lpn: usize,
    },
    /// No space left even after garbage collection (over-committed).
    OutOfSpace,
    /// Propagated controller error.
    Ctrl(CtrlError),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "logical page {lpn} out of range ({capacity} exported)")
            }
            FtlError::NotWritten { lpn } => write!(f, "logical page {lpn} was never written"),
            FtlError::OutOfSpace => write!(f, "no reclaimable space left"),
            FtlError::Ctrl(e) => write!(f, "controller: {e}"),
        }
    }
}

impl std::error::Error for FtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FtlError::Ctrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtrlError> for FtlError {
    fn from(e: CtrlError) -> Self {
        FtlError::Ctrl(e)
    }
}

impl From<mlcx_nand::NandError> for FtlError {
    fn from(e: mlcx_nand::NandError) -> Self {
        FtlError::Ctrl(CtrlError::Nand(e))
    }
}

/// FTL traffic and maintenance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Physical page writes issued (host + relocation).
    pub physical_writes: u64,
    /// Garbage-collection passes run.
    pub gc_runs: u64,
    /// Live pages relocated by GC.
    pub relocated_pages: u64,
    /// Blocks reclaimed by the scrubber ([`LogicalMap::plan_reclaim`]).
    pub scrub_runs: u64,
    /// Live pages relocated by scrub read-reclaim (also counted in
    /// [`FtlStats::physical_writes`], so write amplification stays
    /// honest about maintenance traffic).
    pub scrub_relocated_pages: u64,
    /// Scrub reclaims whose victim qualified on program-interference
    /// RBER (neighbor coupling, die program disturb, or a partially
    /// programmed page) — a subset of [`FtlStats::scrub_runs`]
    /// attributing maintenance traffic to program-side corruption.
    pub interference_reclaims: u64,
}

impl FtlStats {
    /// Write amplification: physical / host writes.
    ///
    /// An empty history has amplified nothing, so this reports the
    /// neutral 1.0 instead of dividing by zero (the seed returned 0.0,
    /// which read as "better than ideal" in dashboards).
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.physical_writes as f64 / self.host_writes as f64
        }
    }

    /// Counter-wise difference `self - earlier` (for per-phase deltas).
    ///
    /// Saturates at zero, so a stale snapshot can never produce
    /// underflowed counters.
    pub fn delta_since(&self, earlier: &FtlStats) -> FtlStats {
        FtlStats {
            host_writes: self.host_writes.saturating_sub(earlier.host_writes),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            gc_runs: self.gc_runs.saturating_sub(earlier.gc_runs),
            relocated_pages: self.relocated_pages.saturating_sub(earlier.relocated_pages),
            scrub_runs: self.scrub_runs.saturating_sub(earlier.scrub_runs),
            scrub_relocated_pages: self
                .scrub_relocated_pages
                .saturating_sub(earlier.scrub_relocated_pages),
            interference_reclaims: self
                .interference_reclaims
                .saturating_sub(earlier.interference_reclaims),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Live(usize), // lpn
    Stale,
}

/// One physical operation of a logical-write plan, in execution order.
///
/// Produced by [`LogicalMap::plan_write`]; the caller must execute the
/// operations in sequence (a [`FtlOp::Relocate`] reads its `from` page
/// before the plan's later [`FtlOp::Erase`] destroys it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlOp {
    /// Erase a reclaimed block (all its live pages have been relocated
    /// by preceding [`FtlOp::Relocate`] operations).
    Erase {
        /// The block to erase.
        block: usize,
    },
    /// Copy a live page out of a garbage-collection victim.
    Relocate {
        /// The logical page being moved.
        lpn: usize,
        /// Source `(block, page)`.
        from: (usize, usize),
        /// Destination `(block, page)`.
        to: (usize, usize),
    },
    /// Write the host's payload for `lpn` to the allocated destination.
    Write {
        /// The logical page being written.
        lpn: usize,
        /// Destination `(block, page)`.
        to: (usize, usize),
    },
}

/// The controller-free FTL core: logical-to-physical mapping, wear-aware
/// allocation and garbage-collection *planning* over a block range.
///
/// The map assumes every block in its range starts erased (callers
/// format the range first) and that the planned [`FtlOp`]s are executed
/// in order; its internal state advances at planning time.
///
/// # Example
///
/// ```
/// use mlcx_controller::ftl::{FtlOp, LogicalMap};
///
/// let mut map = LogicalMap::new(0..4, 8);
/// assert_eq!(map.capacity_pages(), 3 * 8);
/// let plan = map.plan_write(0, &mut |_block| 0)?;
/// // A fresh map: one plain write, no GC.
/// assert!(matches!(plan[..], [FtlOp::Write { lpn: 0, .. }]));
/// assert_eq!(map.translate(0), Some((0, 0)));
/// # Ok::<(), mlcx_controller::ftl::FtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LogicalMap {
    blocks: Range<usize>,
    pages_per_block: usize,
    /// Blocks per die of the underlying topology (`usize::MAX` when the
    /// map ignores dies — the historical single-die behaviour).
    blocks_per_die: usize,
    /// lpn -> (block, page), absolute block ids.
    map: BTreeMap<usize, (usize, usize)>,
    /// Physical page states, `[block - blocks.start][page]`.
    states: Vec<Vec<PageState>>,
    /// Currently open block and its next free page, if any.
    open: Option<(usize, usize)>,
    /// Pages in the `Erased` state (writable slots).
    free_slots: usize,
    capacity_pages: usize,
    /// Allocation stamp per die the range touches (`die - first die`):
    /// the striping allocator round-robins away from recently-opened
    /// dies so consecutive writes land behind different channels.
    die_stamp: Vec<u64>,
    alloc_counter: u64,
    stats: FtlStats,
}

impl LogicalMap {
    /// A map over `blocks`, all of which must be erased. Allocation is
    /// wear-aware but die-blind (the single-die behaviour); use
    /// [`LogicalMap::striped`] on multi-die topologies.
    ///
    /// # Panics
    ///
    /// Panics when the range holds fewer than two blocks or
    /// `pages_per_block` is zero (no room for the GC spare).
    pub fn new(blocks: Range<usize>, pages_per_block: usize) -> Self {
        Self::striped(blocks, pages_per_block, usize::MAX)
    }

    /// A map over `blocks` striping allocation across the dies of a
    /// `blocks_per_die`-partitioned topology (see
    /// [`mlcx_nand::DeviceGeometry::blocks_per_die`]): among equally
    /// eligible erased blocks, the allocator opens a block on the die
    /// opened least recently, so sequential traffic interleaves across
    /// channels instead of filling one die end to end. With a single
    /// die (or `usize::MAX`) this is exactly [`LogicalMap::new`].
    ///
    /// # Panics
    ///
    /// Panics when the range holds fewer than two blocks,
    /// `pages_per_block` is zero, or `blocks_per_die` is zero.
    pub fn striped(blocks: Range<usize>, pages_per_block: usize, blocks_per_die: usize) -> Self {
        let count = blocks.len();
        assert!(
            count >= 2 && pages_per_block > 0,
            "LogicalMap needs at least two blocks (one is GC headroom)"
        );
        assert!(blocks_per_die > 0, "blocks_per_die must be positive");
        let first_die = blocks.start / blocks_per_die;
        let last_die = (blocks.end - 1) / blocks_per_die;
        LogicalMap {
            states: vec![vec![PageState::Erased; pages_per_block]; count],
            free_slots: count * pages_per_block,
            capacity_pages: (count - 1) * pages_per_block,
            blocks,
            pages_per_block,
            blocks_per_die,
            map: BTreeMap::new(),
            open: None,
            die_stamp: vec![0; last_die - first_die + 1],
            alloc_counter: 0,
            stats: FtlStats::default(),
        }
    }

    /// The die-stamp slot of an absolute block id.
    fn die_slot(&self, block: usize) -> usize {
        block / self.blocks_per_die - self.blocks.start / self.blocks_per_die
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// The block range the map allocates from.
    pub fn blocks(&self) -> Range<usize> {
        self.blocks.clone()
    }

    /// Traffic counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Attributes the most recent scrub reclaim to program-interference
    /// pressure (bumps [`FtlStats::interference_reclaims`]). The
    /// scrubber calls this when the victim block qualified on the
    /// interference-RBER threshold; the map itself cannot see why a
    /// reclaim was planned.
    pub fn note_interference_reclaim(&mut self) {
        self.stats.interference_reclaims += 1;
    }

    /// The physical location of a logical page, if it was ever written.
    pub fn translate(&self, lpn: usize) -> Option<(usize, usize)> {
        self.map.get(&lpn).copied()
    }

    /// Every mapped logical page, sorted (deterministic iteration for
    /// verification sweeps — free with the ordered map).
    pub fn mapped_lpns(&self) -> Vec<usize> {
        self.map.keys().copied().collect()
    }

    /// Currently writable physical slots (erased pages).
    pub fn free_slots(&self) -> usize {
        self.free_slots
    }

    fn rel(&self, block: usize) -> usize {
        debug_assert!(self.blocks.contains(&block));
        block - self.blocks.start
    }

    fn claim(&mut self, block: usize, page: usize, lpn: usize) {
        let rel = self.rel(block);
        debug_assert_eq!(self.states[rel][page], PageState::Erased);
        self.states[rel][page] = PageState::Live(lpn);
        self.free_slots -= 1;
    }

    fn retire(&mut self, block: usize, page: usize) {
        let rel = self.rel(block);
        debug_assert!(matches!(self.states[rel][page], PageState::Live(_)));
        self.states[rel][page] = PageState::Stale;
    }

    /// Plans one logical page write: an ordered [`FtlOp`] sequence ending
    /// in the host [`FtlOp::Write`], preceded by any garbage collection
    /// (relocations + erases) the allocation required. The map's state
    /// advances as if the plan were already executed, so consecutive
    /// plans compose.
    ///
    /// `wear` reports the P/E cycle count of an (absolute) block id; the
    /// allocator opens the least-worn erased block first.
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for addresses beyond the capacity;
    /// [`FtlError::OutOfSpace`] when nothing reclaimable is left.
    pub fn plan_write(
        &mut self,
        lpn: usize,
        wear: &mut dyn FnMut(usize) -> u64,
    ) -> Result<Vec<FtlOp>, FtlError> {
        if lpn >= self.capacity_pages {
            return Err(FtlError::LpnOutOfRange {
                lpn,
                capacity: self.capacity_pages,
            });
        }
        let mut ops = Vec::new();
        // Clean early: keep one block's worth of writable slots in
        // reserve so relocations always have somewhere to land.
        while self.free_slots <= self.pages_per_block {
            if !self.plan_gc(&mut ops, wear)? {
                break; // nothing stale anywhere: the reserve is real free space
            }
        }
        let to = self.take_slot(wear).ok_or(FtlError::OutOfSpace)?;
        self.claim(to.0, to.1, lpn);
        if let Some((ob, op)) = self.map.insert(lpn, to) {
            self.retire(ob, op);
        }
        self.stats.host_writes += 1;
        self.stats.physical_writes += 1;
        ops.push(FtlOp::Write { lpn, to });
        Ok(ops)
    }

    /// Takes the next writable slot: the open block's next page, else
    /// opens the least-worn fully-erased block (preferring the die
    /// opened least recently when striping is enabled).
    fn take_slot(&mut self, wear: &mut dyn FnMut(usize) -> u64) -> Option<(usize, usize)> {
        loop {
            if let Some((block, page)) = self.open {
                if page < self.pages_per_block {
                    self.open = Some((block, page + 1));
                    return Some((block, page));
                }
                self.open = None;
            }
            let block = self.pick_erased(wear)?;
            self.alloc_counter += 1;
            let slot = self.die_slot(block);
            self.die_stamp[slot] = self.alloc_counter;
            self.open = Some((block, 0));
        }
    }

    /// The next block to open, excluding the open block: least-recently
    /// opened die first (the channel stripe), then fewest P/E cycles,
    /// then lowest block id. With one die the stamp is constant and
    /// this degenerates to the historical wear-then-id order.
    fn pick_erased(&self, wear: &mut dyn FnMut(usize) -> u64) -> Option<usize> {
        let open_block = self.open.map(|(b, _)| b);
        let mut best: Option<((u64, u64, usize), usize)> = None;
        for (rel, pages) in self.states.iter().enumerate() {
            let block = self.blocks.start + rel;
            if Some(block) == open_block {
                continue;
            }
            if pages.iter().all(|s| *s == PageState::Erased) {
                let key = (self.die_stamp[self.die_slot(block)], wear(block), block);
                if best.is_none_or(|(k, _)| key < k) {
                    best = Some((key, block));
                }
            }
        }
        best.map(|(_, b)| b)
    }

    /// One garbage-collection round: relocate the live pages of the
    /// stalest block, then erase it. Returns `Ok(false)` when no block
    /// has a stale page to reclaim.
    fn plan_gc(
        &mut self,
        ops: &mut Vec<FtlOp>,
        wear: &mut dyn FnMut(usize) -> u64,
    ) -> Result<bool, FtlError> {
        let open_block = self.open.map(|(b, _)| b);
        let stale_count = |pages: &[PageState]| {
            pages
                .iter()
                .filter(|s| matches!(s, PageState::Stale))
                .count()
        };
        let victim = self
            .states
            .iter()
            .enumerate()
            .filter(|(rel, _)| Some(self.blocks.start + rel) != open_block)
            .max_by_key(|(_, pages)| stale_count(pages))
            .map(|(rel, _)| self.blocks.start + rel)
            .ok_or(FtlError::OutOfSpace)?;
        if stale_count(&self.states[self.rel(victim)]) == 0 {
            return Ok(false);
        }

        let live: Vec<(usize, usize)> = self.states[self.rel(victim)]
            .iter()
            .enumerate()
            .filter_map(|(p, s)| match s {
                PageState::Live(lpn) => Some((p, *lpn)),
                _ => None,
            })
            .collect();
        for (page, lpn) in live {
            // The early-cleaning invariant guarantees a slot exists (the
            // reserve block is never handed to host writes while a
            // reclaimable block remains).
            let to = self.take_slot(wear).ok_or(FtlError::OutOfSpace)?;
            self.claim(to.0, to.1, lpn);
            self.map.insert(lpn, to);
            ops.push(FtlOp::Relocate {
                lpn,
                from: (victim, page),
                to,
            });
            self.stats.physical_writes += 1;
            self.stats.relocated_pages += 1;
        }
        let rel = self.rel(victim);
        for s in &mut self.states[rel] {
            if *s != PageState::Erased {
                self.free_slots += 1;
            }
            *s = PageState::Erased;
        }
        ops.push(FtlOp::Erase { block: victim });
        self.stats.gc_runs += 1;
        Ok(true)
    }

    /// Plans the read-reclaim of one *caller-chosen* block: every live
    /// page is relocated out (in page order), then the block is erased —
    /// resetting the device's read-disturb accumulator and, because the
    /// relocated pages are rewritten at the current device time, their
    /// retention age. Unlike garbage collection the victim need not hold
    /// a single stale page; this is the plan a scrubber
    /// (`mlcx_controller::scrub::Scrubber`) emits for blocks whose
    /// disturb state crossed its thresholds.
    ///
    /// A fully erased block yields an empty plan (erasing it would only
    /// burn a P/E cycle). If the victim is the currently open block it
    /// is closed first, so none of its erased pages can serve as a
    /// relocation destination.
    ///
    /// # Panics
    ///
    /// Panics when `block` is outside the map's range (the scrubber
    /// iterates [`LogicalMap::blocks`], so a foreign block is caller
    /// misuse, not a runtime condition) — or on a broken internal
    /// allocator invariant (a mid-relocation allocation failure after
    /// the up-front capacity check passed), which must never silently
    /// leave the map half-mutated.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] when the live pages cannot all be
    /// relocated with the slots currently writable *outside* the victim;
    /// the map is left untouched — the check is atomic and up-front, so
    /// the caller can safely retry after host traffic has triggered
    /// garbage collection. (Under the planner's early-cleaning reserve
    /// invariant this cannot happen between host writes; it is
    /// reachable only on a map driven by raw reclaims.)
    pub fn plan_reclaim(
        &mut self,
        block: usize,
        wear: &mut dyn FnMut(usize) -> u64,
    ) -> Result<Vec<FtlOp>, FtlError> {
        assert!(
            self.blocks.contains(&block),
            "reclaim target {block} outside the map's range {:?}",
            self.blocks
        );
        let rel = self.rel(block);
        if self.states[rel].iter().all(|s| *s == PageState::Erased) {
            return Ok(Vec::new());
        }
        let erased_in_victim = self.states[rel]
            .iter()
            .filter(|s| **s == PageState::Erased)
            .count();
        let live: Vec<(usize, usize)> = self.states[rel]
            .iter()
            .enumerate()
            .filter_map(|(p, s)| match s {
                PageState::Live(lpn) => Some((p, *lpn)),
                _ => None,
            })
            .collect();
        // The victim's own erased pages are counted in free_slots but
        // can never be allocated (the block is not fully erased, and is
        // closed below if open): check against the usable remainder
        // before mutating anything.
        if live.len() > self.free_slots - erased_in_victim {
            return Err(FtlError::OutOfSpace);
        }
        if self.open.map(|(b, _)| b) == Some(block) {
            self.open = None;
        }
        let mut ops = Vec::with_capacity(live.len() + 1);
        for (page, lpn) in live {
            // The up-front capacity check guarantees this allocation:
            // every erased page outside the (now closed) victim is
            // reachable by take_slot. Returning OutOfSpace here instead
            // would hand the caller an innocent-looking skip with the
            // map already half-mutated — fail loudly instead.
            let to = self
                .take_slot(wear)
                .expect("reclaim capacity was checked up front; allocator invariant broken");
            self.claim(to.0, to.1, lpn);
            self.map.insert(lpn, to);
            ops.push(FtlOp::Relocate {
                lpn,
                from: (block, page),
                to,
            });
            self.stats.physical_writes += 1;
            self.stats.scrub_relocated_pages += 1;
        }
        for s in &mut self.states[rel] {
            if *s != PageState::Erased {
                self.free_slots += 1;
            }
            *s = PageState::Erased;
        }
        ops.push(FtlOp::Erase { block });
        self.stats.scrub_runs += 1;
        Ok(ops)
    }
}

/// A wear-leveling flash translation layer over a [`MemoryController`]:
/// a [`LogicalMap`] whose plans are executed synchronously against the
/// owned controller.
///
/// # Example
///
/// ```
/// use mlcx_controller::ftl::Ftl;
/// use mlcx_controller::{ControllerConfig, MemoryController};
///
/// let ctrl = MemoryController::new(ControllerConfig::date2012(), 5)?;
/// let mut ftl = Ftl::new(ctrl)?;
/// let page = vec![0xAAu8; 4096];
/// ftl.write(0, &page)?;
/// ftl.write(0, &page)?; // overwrite: no erase needed from the host side
/// assert_eq!(ftl.read(0)?, page);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Ftl {
    ctrl: MemoryController,
    map: LogicalMap,
}

impl Ftl {
    /// Builds the FTL, erasing every block to a known state.
    ///
    /// # Errors
    ///
    /// Controller errors from the initial format pass.
    pub fn new(mut ctrl: MemoryController) -> Result<Self, FtlError> {
        let geometry = *ctrl.device().geometry();
        for block in 0..geometry.blocks {
            ctrl.erase_block(block)?;
        }
        Ok(Ftl {
            ctrl,
            map: LogicalMap::striped(
                0..geometry.blocks,
                geometry.pages_per_block,
                geometry.blocks_per_die(),
            ),
        })
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.map.capacity_pages()
    }

    /// Traffic counters.
    pub fn stats(&self) -> FtlStats {
        self.map.stats()
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// The mapping core (read-only view).
    pub fn logical_map(&self) -> &LogicalMap {
        &self.map
    }

    /// The physical location of a logical page, if it was ever written.
    ///
    /// This is the shared-reference complement of [`Ftl::read`]: the
    /// datapath read itself must stay `&mut self` because decoding runs
    /// the device's error-injection stream (and bumps the block's
    /// read-disturb counter), but pure address translation does not.
    pub fn translate(&self, lpn: usize) -> Option<(usize, usize)> {
        self.map.translate(lpn)
    }

    /// Spread between the most- and least-worn block (wear-leveler
    /// quality metric).
    ///
    /// # Errors
    ///
    /// Controller errors propagate.
    pub fn wear_spread(&self) -> Result<u64, FtlError> {
        let blocks = self.ctrl.device().geometry().blocks;
        let mut lo = u64::MAX;
        let mut hi = 0;
        for b in 0..blocks {
            let c = self.ctrl.device().block_cycles(b)?;
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Ok(hi - lo)
    }

    /// Writes (or overwrites) a logical page.
    ///
    /// # Errors
    ///
    /// Range/space errors, or controller errors. A controller error in
    /// the middle of a garbage-collection plan leaves the executed
    /// prefix in place (the map already reflects the full plan).
    pub fn write(&mut self, lpn: usize, data: &[u8]) -> Result<(), FtlError> {
        let ctrl = &self.ctrl;
        let ops = self
            .map
            .plan_write(lpn, &mut |b| ctrl.device().block_cycles(b).unwrap_or(0))?;
        for op in ops {
            match op {
                FtlOp::Relocate { from, to, .. } => {
                    let data = self.ctrl.read_page(from.0, from.1)?.data;
                    self.ctrl.write_page(to.0, to.1, &data)?;
                }
                FtlOp::Erase { block } => {
                    self.ctrl.erase_block(block)?;
                }
                FtlOp::Write { to, .. } => {
                    self.ctrl.write_page(to.0, to.1, data)?;
                }
            }
        }
        Ok(())
    }

    /// Reads a logical page back through the ECC datapath.
    ///
    /// Takes `&mut self` because the read is a *physical* event: the
    /// device injects raw bit errors from its seeded stream and advances
    /// the block's read-disturb counter. Use [`Ftl::translate`] for
    /// side-effect-free address lookups.
    ///
    /// # Errors
    ///
    /// [`FtlError::NotWritten`] for unmapped pages; controller errors.
    pub fn read(&mut self, lpn: usize) -> Result<Vec<u8>, FtlError> {
        let (block, page) = self
            .map
            .translate(lpn)
            .ok_or(FtlError::NotWritten { lpn })?;
        let report = self.ctrl.read_page(block, page)?;
        Ok(report.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;

    fn small_ftl() -> Ftl {
        // A small device keeps GC tests fast: 6 blocks x 8 pages.
        let mut config = ControllerConfig::date2012();
        config.geometry.blocks = 6;
        config.geometry.pages_per_block = 8;
        let ctrl = MemoryController::new(config, 42).unwrap();
        Ftl::new(ctrl).unwrap()
    }

    fn page(tag: u8) -> Vec<u8> {
        (0..4096)
            .map(|i| (i as u8).wrapping_mul(tag).wrapping_add(tag))
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let mut ftl = small_ftl();
        for lpn in 0..10 {
            ftl.write(lpn, &page(lpn as u8 + 1)).unwrap();
        }
        for lpn in 0..10 {
            assert_eq!(ftl.read(lpn).unwrap(), page(lpn as u8 + 1), "lpn {lpn}");
            assert!(ftl.translate(lpn).is_some());
        }
    }

    #[test]
    fn overwrite_returns_latest_version() {
        let mut ftl = small_ftl();
        ftl.write(3, &page(1)).unwrap();
        ftl.write(3, &page(2)).unwrap();
        ftl.write(3, &page(3)).unwrap();
        assert_eq!(ftl.read(3).unwrap(), page(3));
        assert_eq!(ftl.stats().host_writes, 3);
    }

    #[test]
    fn unwritten_and_out_of_range_rejected() {
        let mut ftl = small_ftl();
        assert!(matches!(ftl.read(0), Err(FtlError::NotWritten { .. })));
        assert!(ftl.translate(0).is_none());
        let cap = ftl.capacity_pages();
        assert!(matches!(
            ftl.write(cap, &page(1)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
    }

    #[test]
    fn garbage_collection_reclaims_stale_space() {
        let mut ftl = small_ftl();
        // Hammer a small working set far beyond raw capacity: GC must
        // reclaim stale versions indefinitely.
        for round in 0..30u32 {
            for lpn in 0..4 {
                ftl.write(lpn, &page((round % 7 + lpn as u32 + 1) as u8))
                    .unwrap();
            }
        }
        for lpn in 0..4 {
            assert_eq!(
                ftl.read(lpn).unwrap(),
                page((29 % 7 + lpn as u32 + 1) as u8)
            );
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs > 0, "GC must have run");
        assert_eq!(stats.host_writes, 120);
        assert!(stats.write_amplification() >= 1.0);
    }

    #[test]
    fn wear_stays_leveled_under_hot_traffic() {
        let mut ftl = small_ftl();
        for round in 0..60u32 {
            ftl.write(0, &page((round % 251) as u8)).unwrap();
            ftl.write(1, &page((round % 13) as u8)).unwrap();
        }
        // The greedy wear-aware allocator must keep the spread tight
        // relative to the total erase work.
        let spread = ftl.wear_spread().unwrap();
        assert!(spread <= 6, "wear spread = {spread}");
        assert!(ftl.stats().gc_runs > 0);
    }

    #[test]
    fn full_logical_capacity_is_usable() {
        let mut ftl = small_ftl();
        let cap = ftl.capacity_pages();
        for lpn in 0..cap {
            ftl.write(lpn, &page((lpn % 200) as u8 + 1)).unwrap();
        }
        // Every page readable; then overwrite a few to force GC at full
        // utilization (the spare block provides the headroom).
        for lpn in (0..cap).step_by(7) {
            ftl.write(lpn, &page(9)).unwrap();
        }
        assert_eq!(ftl.read(0).unwrap(), page(9));
        assert_eq!(ftl.read(1).unwrap(), page(2));
    }

    #[test]
    fn mixed_live_stale_blocks_never_strand() {
        // Regression for the seed's GC deadlock: spread live and stale
        // pages over *every* block so no victim is ever fully stale,
        // then keep overwriting at full utilization. The reserve
        // invariant must keep relocations serviceable throughout.
        let mut ftl = small_ftl();
        let cap = ftl.capacity_pages();
        for lpn in 0..cap {
            ftl.write(lpn, &page((lpn % 199) as u8 + 1)).unwrap();
        }
        // Overwrite lpns striding across all blocks, many rounds.
        for round in 0..8u32 {
            for lpn in (0..cap).step_by(3) {
                ftl.write(lpn, &page((round + 1) as u8)).unwrap();
            }
        }
        for lpn in (0..cap).step_by(3) {
            assert_eq!(ftl.read(lpn).unwrap(), page(8));
        }
        // Untouched lpns survived every relocation.
        assert_eq!(ftl.read(1).unwrap(), page(2));
        assert!(ftl.stats().relocated_pages > 0, "GC must have relocated");
    }

    #[test]
    fn write_amplification_neutral_on_empty_history() {
        let stats = FtlStats::default();
        assert_eq!(stats.write_amplification(), 1.0);
        let later = FtlStats {
            host_writes: 10,
            physical_writes: 15,
            gc_runs: 1,
            relocated_pages: 5,
            ..FtlStats::default()
        };
        let delta = later.delta_since(&stats);
        assert_eq!(delta.host_writes, 10);
        assert!((delta.write_amplification() - 1.5).abs() < 1e-12);
        // Saturating: a swapped delta cannot underflow.
        assert_eq!(stats.delta_since(&later).host_writes, 0);
    }

    #[test]
    fn logical_map_plans_compose_without_a_controller() {
        let mut map = LogicalMap::new(2..6, 4);
        assert_eq!(map.capacity_pages(), 12);
        assert_eq!(map.free_slots(), 16);
        let mut wear = |_b: usize| 0u64;

        let plan = map.plan_write(7, &mut wear).unwrap();
        assert_eq!(plan, vec![FtlOp::Write { lpn: 7, to: (2, 0) }]);
        assert_eq!(map.translate(7), Some((2, 0)));

        // Overwrite: the old slot goes stale, a new one is claimed.
        let plan = map.plan_write(7, &mut wear).unwrap();
        assert_eq!(plan, vec![FtlOp::Write { lpn: 7, to: (2, 1) }]);
        assert_eq!(map.mapped_lpns(), vec![7]);
        assert_eq!(map.stats().host_writes, 2);
    }

    #[test]
    fn logical_map_gc_plan_orders_relocations_before_erase() {
        let mut map = LogicalMap::new(0..3, 4);
        let mut wear = |_b: usize| 0u64;
        // Fill the exported capacity (8 lpns over 3 blocks x 4 pages),
        // overwriting lpn 0 repeatedly to build stale pages.
        for lpn in 0..map.capacity_pages() {
            map.plan_write(lpn, &mut wear).unwrap();
        }
        let mut saw_gc = false;
        for _ in 0..10 {
            let plan = map.plan_write(0, &mut wear).unwrap();
            if plan.len() > 1 {
                saw_gc = true;
                // Every relocation must precede the erase of its source.
                let erase_at: Vec<usize> = plan
                    .iter()
                    .enumerate()
                    .filter_map(|(i, op)| match op {
                        FtlOp::Erase { .. } => Some(i),
                        _ => None,
                    })
                    .collect();
                assert!(!erase_at.is_empty());
                for (i, op) in plan.iter().enumerate() {
                    if let FtlOp::Relocate { from, .. } = op {
                        let erase_idx = plan
                            .iter()
                            .position(|o| matches!(o, FtlOp::Erase { block } if *block == from.0))
                            .expect("relocation source must be erased later in the plan");
                        assert!(i < erase_idx, "relocate must precede its erase");
                    }
                }
                assert!(matches!(plan.last(), Some(FtlOp::Write { lpn: 0, .. })));
            }
        }
        assert!(saw_gc, "overwrites at capacity must trigger GC");
        assert!(map.stats().gc_runs > 0);
    }

    #[test]
    fn striped_map_round_robins_across_dies() {
        // 8 blocks over 4 dies (2 blocks/die), equal wear: the stripe
        // must rotate dies 0 -> 1 -> 2 -> 3 before reusing die 0.
        let mut map = LogicalMap::striped(0..8, 2, 2);
        let mut wear = |_b: usize| 0u64;
        let mut dies_opened = Vec::new();
        for lpn in 0..8 {
            let plan = map.plan_write(lpn, &mut wear).unwrap();
            let [FtlOp::Write { to, .. }] = plan[..] else {
                panic!("fresh map must plan plain writes");
            };
            let die = to.0 / 2;
            if dies_opened.last() != Some(&die) {
                dies_opened.push(die);
            }
        }
        assert_eq!(
            dies_opened,
            vec![0, 1, 2, 3],
            "allocation must stripe across all four dies"
        );

        // Die-blind map with the same shape fills dies in block order.
        let mut blind = LogicalMap::new(0..8, 2);
        let mut first_blocks = Vec::new();
        for lpn in 0..8 {
            let plan = blind.plan_write(lpn, &mut wear).unwrap();
            let [FtlOp::Write { to, .. }] = plan[..] else {
                panic!();
            };
            first_blocks.push(to.0);
        }
        assert_eq!(first_blocks, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn striping_still_respects_wear() {
        // Two dies; die 0's erased blocks are heavily worn. After the
        // stripe rotates, the allocator must still prefer fresher
        // blocks within a die.
        let mut map = LogicalMap::striped(0..4, 2, 2);
        let mut wear = |b: usize| if b == 1 { 1000u64 } else { 0 };
        let mut opened = Vec::new();
        for lpn in 0..6 {
            let plan = map.plan_write(lpn, &mut wear).unwrap();
            let [FtlOp::Write { to, .. }] = plan[..] else {
                panic!();
            };
            if opened.last() != Some(&to.0) {
                opened.push(to.0);
            }
        }
        // Stripe: die 0 (block 0, the fresher of 0/1), die 1 (block 2),
        // then back to die 0 — block 1 is all that's left there.
        assert_eq!(opened, vec![0, 2, 1]);
    }

    #[test]
    fn plan_reclaim_relocates_live_pages_then_erases() {
        let mut map = LogicalMap::new(0..4, 4);
        let mut wear = |_b: usize| 0u64;
        for lpn in 0..6 {
            map.plan_write(lpn, &mut wear).unwrap();
        }
        // Block 0 holds lpns 0..4 live; reclaim it.
        let plan = map.plan_reclaim(0, &mut wear).unwrap();
        assert_eq!(plan.len(), 5, "4 relocations + 1 erase: {plan:?}");
        assert!(matches!(plan[4], FtlOp::Erase { block: 0 }));
        for (i, op) in plan[..4].iter().enumerate() {
            let FtlOp::Relocate { lpn, from, to } = *op else {
                panic!("expected relocation, got {op:?}");
            };
            assert_eq!(from, (0, i));
            assert_eq!(lpn, i);
            assert_ne!(to.0, 0, "destination must leave the victim");
            assert_eq!(map.translate(lpn), Some(to));
        }
        let stats = map.stats();
        assert_eq!(stats.scrub_runs, 1);
        assert_eq!(stats.scrub_relocated_pages, 4);
        assert_eq!(stats.physical_writes, 6 + 4);
        assert!(stats.write_amplification() > 1.0);
        // The reclaimed block is writable again and the map still
        // composes: keep writing well past raw capacity.
        for round in 0..10 {
            for lpn in 0..6 {
                map.plan_write(lpn, &mut wear).unwrap();
            }
            let _ = round;
        }
        assert_eq!(map.mapped_lpns(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn plan_reclaim_of_the_open_block_closes_it_first() {
        let mut map = LogicalMap::new(0..3, 4);
        let mut wear = |_b: usize| 0u64;
        // Two writes open block 0 and leave it half full.
        map.plan_write(0, &mut wear).unwrap();
        map.plan_write(1, &mut wear).unwrap();
        let plan = map.plan_reclaim(0, &mut wear).unwrap();
        // Both live pages must land outside block 0 even though its
        // open-block remainder had erased pages.
        for op in &plan {
            if let FtlOp::Relocate { to, .. } = op {
                assert_ne!(to.0, 0, "open-block remainder must not be reused");
            }
        }
        assert!(matches!(plan.last(), Some(FtlOp::Erase { block: 0 })));
    }

    #[test]
    fn plan_reclaim_degenerate_victims() {
        let mut map = LogicalMap::new(0..3, 2);
        let mut wear = |_b: usize| 0u64;
        // Fully erased block: nothing to do, no cycle burned.
        assert!(map.plan_reclaim(2, &mut wear).unwrap().is_empty());
        assert_eq!(map.stats().scrub_runs, 0);
        // All-stale block: a bare erase (overwrites staled block 0).
        map.plan_write(0, &mut wear).unwrap();
        map.plan_write(1, &mut wear).unwrap();
        map.plan_write(0, &mut wear).unwrap();
        map.plan_write(1, &mut wear).unwrap();
        let plan = map.plan_reclaim(0, &mut wear).unwrap();
        assert_eq!(plan, vec![FtlOp::Erase { block: 0 }]);
    }

    #[test]
    fn plan_reclaim_interleaves_with_overwrite_traffic() {
        // Overwrite traffic at full utilization with a reclaim per
        // round: a reclaim either produces a well-formed plan or is
        // refused with OutOfSpace (the scrubber's skip-and-retry path —
        // at 100 % utilization the writable reserve can be exactly
        // consumed), and the map stays consistent throughout.
        let mut map = LogicalMap::new(0..5, 4);
        let mut wear = |_b: usize| 0u64;
        for lpn in 0..map.capacity_pages() {
            map.plan_write(lpn, &mut wear).unwrap();
        }
        let mut reclaimed = 0;
        let mut refused = 0;
        for round in 0..10usize {
            for lpn in (0..map.capacity_pages()).step_by(2) {
                map.plan_write(lpn, &mut wear).unwrap();
            }
            match map.plan_reclaim(round % 5, &mut wear) {
                Ok(plan) => {
                    if !plan.is_empty() {
                        reclaimed += 1;
                        assert!(matches!(plan.last(), Some(FtlOp::Erase { .. })));
                    }
                }
                Err(FtlError::OutOfSpace) => refused += 1,
                Err(e) => panic!("unexpected reclaim error: {e}"),
            }
        }
        assert!(reclaimed > 0, "some reclaims must fit ({refused} refused)");
        let mut lpns = map.mapped_lpns();
        lpns.sort_unstable();
        assert_eq!(lpns, (0..map.capacity_pages()).collect::<Vec<_>>());
    }

    #[test]
    fn logical_map_rejects_degenerate_ranges() {
        let result = std::panic::catch_unwind(|| LogicalMap::new(0..1, 4));
        assert!(result.is_err(), "single-block map must be rejected");
    }
}
