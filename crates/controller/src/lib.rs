//! Memory controller for the adaptive NAND flash sub-system (paper Fig. 1).
//!
//! The controller sits between the on-chip network (an OCP-like socket)
//! and the flash device: read/write requests flow through a one-page RAM
//! buffer and the adaptive BCH codec; configuration commands land in a
//! command/status register file that selects the ECC correction
//! capability, the program algorithm and the service level.
//!
//! Components:
//!
//! * [`ocp`] — the socket interface and its burst-transfer timing;
//! * [`buffer`] — the page buffer with the one-round and two-round data
//!   load strategies (Section 6.3.3's write-overhead mitigation);
//! * [`flash_if`] — the flash bus interface (command/address/data phase
//!   timing at the ~32 MB/s of an asynchronous-NAND-era bus);
//! * [`regs`] — the command/status register file;
//! * [`MemoryController`] — the core FSM: full write
//!   (load -> encode -> program) and read (tR -> transfer -> decode)
//!   datapaths with latency and energy reports;
//! * [`reliability`] — the integrated reliability manager: consumes ECC
//!   feedback and test-unit probes, re-configures `t` (and, cross-layer,
//!   the program algorithm) at runtime;
//! * [`throughput`] — closed-form read/write throughput used by the
//!   figure harness;
//! * [`channel`] — the multi-channel/multi-die busy-time scheduler: the
//!   datapath feeds it each operation's bus/cell occupancy, and batches
//!   read their modeled parallel makespan and channel utilization back;
//! * [`ftl`] — a wear-leveling flash translation layer (extension) so
//!   overwrite workloads can run on top of the cross-layer machinery;
//! * [`scrub`] — background scrub / read-reclaim: a policy engine that
//!   scans per-block disturb state (reads since erase, data age) and
//!   plans relocate+erase maintenance through the FTL machinery;
//! * [`retry`] — stepped read-reference retry: on an uncorrectable
//!   read, re-sense at ladder offsets tracking the Vth shift, and
//!   remember the winning offset per block so steady-state reads start
//!   near the optimum (the voltage-domain mitigation next to `scrub`'s
//!   data movement).
//!
//! # Example
//!
//! ```
//! use mlcx_controller::{ControllerConfig, MemoryController};
//!
//! let mut ctrl = MemoryController::new(ControllerConfig::date2012(), 7)?;
//! ctrl.erase_block(0)?;
//! let data = vec![0x42u8; 4096];
//! let w = ctrl.write_page(0, 0, &data)?;
//! let r = ctrl.read_page(0, 0)?;
//! assert_eq!(r.data, data);
//! assert!(w.latency_s > r.latency_s); // programming dominates
//! # Ok::<(), mlcx_controller::CtrlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;

pub mod buffer;
pub mod channel;
pub mod flash_if;
pub mod ftl;
pub mod ocp;
pub mod regs;
pub mod reliability;
pub mod retry;
pub mod scrub;
pub mod throughput;

pub use channel::{ChannelScheduler, IssueSlot, OpTiming};
pub use controller::{
    ControllerConfig, ControllerConfigBuilder, MemoryController, ReadReport, WriteReport,
};
pub use error::CtrlError;
pub use ftl::{Ftl, FtlError, FtlOp, FtlStats, LogicalMap};
pub use mlcx_bch::CodecKernel;
pub use regs::{ConfigCommand, RegisterFile, ServiceLevel, StatusFlags};
pub use reliability::{ReliabilityManager, ReliabilityPolicy};
pub use retry::{ReadOffsetTable, RetryPolicy, RetryStats};
pub use scrub::{ScrubPolicy, ScrubStats, Scrubber};
