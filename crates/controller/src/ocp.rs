//! OCP-like socket interface to the on-chip network.
//!
//! "The OCP interface connects the controller to the on-chip network,
//! which routes read and write access requests or configuration commands.
//! The network is typically much faster than the Flash device" — the
//! socket model therefore only contributes a small, but non-zero, burst
//! transfer latency to the datapath.

/// Burst-capable socket interface (OCP/AXI-class).
///
/// # Example
///
/// ```
/// use mlcx_controller::ocp::OcpSocket;
///
/// let ocp = OcpSocket::date2012();
/// // Moving a 4 KiB page across the NoC takes single-digit microseconds.
/// let t = ocp.transfer_time_s(4096);
/// assert!(t > 1e-6 && t < 10e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcpSocket {
    /// Data width of the socket, bits.
    pub data_width_bits: u32,
    /// Socket clock, hertz.
    pub clock_hz: f64,
    /// Fixed request/response latency, clock cycles.
    pub latency_cycles: u32,
}

impl OcpSocket {
    /// A 32-bit, 200 MHz socket — representative of the paper's
    /// "largely integrated MPSoCs in the short-to-medium run".
    pub fn date2012() -> Self {
        OcpSocket {
            data_width_bits: 32,
            clock_hz: 200.0e6,
            latency_cycles: 12,
        }
    }

    /// Time to burst `bytes` across the socket, seconds.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        let beats = (bytes * 8).div_ceil(self.data_width_bits as usize);
        (beats as u64 + self.latency_cycles as u64) as f64 / self.clock_hz
    }

    /// Sustained socket bandwidth, bytes per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.clock_hz * self.data_width_bits as f64 / 8.0
    }
}

impl Default for OcpSocket {
    fn default() -> Self {
        Self::date2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_size() {
        let ocp = OcpSocket::date2012();
        let one = ocp.transfer_time_s(1024);
        let four = ocp.transfer_time_s(4096);
        assert!(four > 3.0 * one && four < 4.5 * one);
    }

    #[test]
    fn noc_is_much_faster_than_flash() {
        // Paper: the network is much faster than the flash device — a page
        // moves in microseconds, not the 75 us of a flash tR.
        let ocp = OcpSocket::date2012();
        assert!(ocp.transfer_time_s(4096) < 75e-6 / 10.0);
        assert!(ocp.bandwidth_bps() > 100e6);
    }

    #[test]
    fn latency_floor_for_tiny_transfers() {
        let ocp = OcpSocket::date2012();
        let t = ocp.transfer_time_s(4);
        assert!(t >= 12.0 / 200.0e6);
    }
}
