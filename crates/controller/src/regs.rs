//! Command/status register file.
//!
//! "Configuration commands end up updating/reading from a command/status
//! control register, which drives operation of the core controller."
//! The register file holds the two cross-layer knobs — ECC correction
//! capability and program algorithm — plus the user-facing service level
//! that the reliability manager translates into knob settings.

use std::fmt;

use mlcx_nand::ProgramAlgorithm;

/// User-visible service levels (the "differentiated storage services" the
/// paper's conclusions point to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceLevel {
    /// Factory baseline: ISPP-SV with the ECC tracking UBER = 1e-11.
    #[default]
    Baseline,
    /// Mission-critical data: ISPP-DV at the baseline ECC schedule —
    /// UBER drops by orders of magnitude, read throughput unchanged
    /// (Section 6.3.1).
    MinUber,
    /// Read-intensive data: ISPP-DV with the ECC relaxed to the DV
    /// schedule — read throughput up to +30 %, UBER unchanged
    /// (Section 6.3.2).
    MaxReadThroughput,
}

impl fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceLevel::Baseline => write!(f, "baseline"),
            ServiceLevel::MinUber => write!(f, "min-UBER"),
            ServiceLevel::MaxReadThroughput => write!(f, "max-read-throughput"),
        }
    }
}

/// Configuration commands accepted over the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigCommand {
    /// Select the BCH correction capability.
    SetCorrection(u32),
    /// Select the device program algorithm.
    SetAlgorithm(ProgramAlgorithm),
    /// Select a service level (drives both knobs through the manager).
    SetServiceLevel(ServiceLevel),
    /// Select the page-buffer load strategy.
    SetTwoRoundLoad(bool),
}

/// Sticky status bits the host can poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusFlags {
    /// At least one page decoded uncorrectable since the last clear.
    pub uncorrectable_seen: bool,
    /// The reliability manager changed the ECC configuration since the
    /// last clear.
    pub ecc_reconfigured: bool,
    /// The device is near its wear-out RBER budget.
    pub wearout_warning: bool,
}

/// The command/status register file.
///
/// # Example
///
/// ```
/// use mlcx_controller::{ConfigCommand, RegisterFile, ServiceLevel};
///
/// let mut regs = RegisterFile::default();
/// regs.apply(ConfigCommand::SetServiceLevel(ServiceLevel::MinUber));
/// assert_eq!(regs.service_level(), ServiceLevel::MinUber);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegisterFile {
    correction: Option<u32>,
    algorithm: Option<ProgramAlgorithm>,
    service_level: ServiceLevel,
    two_round_load: bool,
    status: StatusFlags,
    commands_applied: u64,
}

impl RegisterFile {
    /// Applies a configuration command.
    pub fn apply(&mut self, cmd: ConfigCommand) {
        match cmd {
            ConfigCommand::SetCorrection(t) => self.correction = Some(t),
            ConfigCommand::SetAlgorithm(a) => self.algorithm = Some(a),
            ConfigCommand::SetServiceLevel(s) => self.service_level = s,
            ConfigCommand::SetTwoRoundLoad(enable) => self.two_round_load = enable,
        }
        self.commands_applied += 1;
    }

    /// Host-requested correction capability (None = manager decides).
    pub fn correction(&self) -> Option<u32> {
        self.correction
    }

    /// Host-requested program algorithm (None = manager decides).
    pub fn algorithm(&self) -> Option<ProgramAlgorithm> {
        self.algorithm
    }

    /// Selected service level.
    pub fn service_level(&self) -> ServiceLevel {
        self.service_level
    }

    /// Whether two-round buffer loading is enabled.
    pub fn two_round_load(&self) -> bool {
        self.two_round_load
    }

    /// Current status flags.
    pub fn status(&self) -> StatusFlags {
        self.status
    }

    /// Mutable status access for the controller/manager.
    pub fn status_mut(&mut self) -> &mut StatusFlags {
        &mut self.status
    }

    /// Clears the sticky status bits.
    pub fn clear_status(&mut self) {
        self.status = StatusFlags::default();
    }

    /// Number of configuration commands processed — the paper expects
    /// "(re-)configuration operations will become more frequent", so the
    /// counter is a first-class observable.
    pub fn commands_applied(&self) -> u64 {
        self.commands_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_update_fields() {
        let mut regs = RegisterFile::default();
        regs.apply(ConfigCommand::SetCorrection(14));
        regs.apply(ConfigCommand::SetAlgorithm(ProgramAlgorithm::IsppDv));
        regs.apply(ConfigCommand::SetTwoRoundLoad(true));
        assert_eq!(regs.correction(), Some(14));
        assert_eq!(regs.algorithm(), Some(ProgramAlgorithm::IsppDv));
        assert!(regs.two_round_load());
        assert_eq!(regs.commands_applied(), 3);
    }

    #[test]
    fn defaults_delegate_to_manager() {
        let regs = RegisterFile::default();
        assert_eq!(regs.correction(), None);
        assert_eq!(regs.algorithm(), None);
        assert_eq!(regs.service_level(), ServiceLevel::Baseline);
    }

    #[test]
    fn status_bits_stick_until_cleared() {
        let mut regs = RegisterFile::default();
        regs.status_mut().uncorrectable_seen = true;
        regs.status_mut().ecc_reconfigured = true;
        assert!(regs.status().uncorrectable_seen);
        regs.clear_status();
        assert_eq!(regs.status(), StatusFlags::default());
    }

    #[test]
    fn service_levels_display() {
        assert_eq!(ServiceLevel::Baseline.to_string(), "baseline");
        assert_eq!(ServiceLevel::MinUber.to_string(), "min-UBER");
        assert_eq!(
            ServiceLevel::MaxReadThroughput.to_string(),
            "max-read-throughput"
        );
    }
}
