//! The integrated reliability manager (paper Section 3).
//!
//! "It is in fact possible to envision an integrated reliability manager
//! collecting and elaborating results of a test unit and feedback from
//! the ECC sub-system, in addition to user requirements, thus setting the
//! proper correction capability to pages. In-situ adaptation to actual
//! operating conditions is another clear trend for future MPSoC design."
//!
//! The manager here is feedback-driven: it watches the corrected-bit
//! counts the codec reports per page (and optional test-unit probes of
//! known data), keeps the maximum over an observation epoch, and
//! recommends a correction capability that maintains a configurable
//! headroom above the worst observed page. The *analytic* schedule (from
//! the UBER equation) lives in `mlcx-core`; this component is what a
//! controller can do with no model at all, purely in-situ.

use mlcx_bch::DecodeOutcome;

/// Tuning of the adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityPolicy {
    /// Multiplicative margin over the worst observed error count.
    pub headroom: f64,
    /// Pages per observation epoch.
    pub epoch_pages: u32,
    /// Lower bound for recommendations.
    pub tmin: u32,
    /// Upper bound for recommendations.
    pub tmax: u32,
}

impl ReliabilityPolicy {
    /// The default loop for the paper's `t = 3..=65` codec: recommend
    /// twice the worst observed page over 64-page epochs.
    pub fn date2012() -> Self {
        ReliabilityPolicy {
            headroom: 2.0,
            epoch_pages: 64,
            tmin: 3,
            tmax: 65,
        }
    }
}

impl Default for ReliabilityPolicy {
    fn default() -> Self {
        Self::date2012()
    }
}

/// Feedback-driven ECC capability manager.
///
/// # Example
///
/// ```
/// use mlcx_bch::DecodeOutcome;
/// use mlcx_controller::{ReliabilityManager, ReliabilityPolicy};
///
/// let mut mgr = ReliabilityManager::new(ReliabilityPolicy {
///     headroom: 2.0,
///     epoch_pages: 4,
///     tmin: 3,
///     tmax: 65,
/// });
/// // Three quiet pages, then one with 10 corrected bits...
/// for bits in [0usize, 1, 0, 10] {
///     mgr.observe(&DecodeOutcome::Corrected {
///         bit_errors: bits,
///         message_bit_errors: bits,
///         positions: vec![],
///     });
/// }
/// // ...the epoch closes recommending 2x headroom over the worst page.
/// assert_eq!(mgr.take_recommendation(), Some(20));
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityManager {
    policy: ReliabilityPolicy,
    pages_seen: u32,
    worst_in_epoch: u32,
    uncorrectable_in_epoch: u32,
    pending: Option<u32>,
    epochs_closed: u64,
}

impl ReliabilityManager {
    /// A manager with the given policy.
    pub fn new(policy: ReliabilityPolicy) -> Self {
        ReliabilityManager {
            policy,
            pages_seen: 0,
            worst_in_epoch: 0,
            uncorrectable_in_epoch: 0,
            pending: None,
            epochs_closed: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReliabilityPolicy {
        &self.policy
    }

    /// Number of completed observation epochs.
    pub fn epochs_closed(&self) -> u64 {
        self.epochs_closed
    }

    /// Feeds one decode outcome into the loop.
    pub fn observe(&mut self, outcome: &DecodeOutcome) {
        match outcome {
            DecodeOutcome::Clean => {}
            DecodeOutcome::Corrected { bit_errors, .. } => {
                self.worst_in_epoch = self.worst_in_epoch.max(*bit_errors as u32);
            }
            DecodeOutcome::Uncorrectable => {
                self.uncorrectable_in_epoch += 1;
            }
        }
        self.pages_seen += 1;
        if self.pages_seen >= self.policy.epoch_pages {
            self.close_epoch();
        }
    }

    /// Feeds a test-unit probe: the number of raw bit errors measured on
    /// a known-pattern scratch page. Probes close the epoch immediately —
    /// they exist to answer "how bad is the medium right now".
    pub fn observe_probe(&mut self, raw_bit_errors: u32) {
        self.worst_in_epoch = self.worst_in_epoch.max(raw_bit_errors);
        self.close_epoch();
    }

    /// Takes the pending capability recommendation, if an epoch closed
    /// since the last call.
    pub fn take_recommendation(&mut self) -> Option<u32> {
        self.pending.take()
    }

    fn close_epoch(&mut self) {
        let mut t = (self.worst_in_epoch as f64 * self.policy.headroom).ceil() as u32;
        if self.uncorrectable_in_epoch > 0 {
            // An uncorrectable page means the capability was at least one
            // error short: jump to the ceiling and let the next epochs
            // relax back down.
            t = self.policy.tmax;
        }
        self.pending = Some(t.clamp(self.policy.tmin, self.policy.tmax));
        self.pages_seen = 0;
        self.worst_in_epoch = 0;
        self.uncorrectable_in_epoch = 0;
        self.epochs_closed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrected(bits: usize) -> DecodeOutcome {
        DecodeOutcome::Corrected {
            bit_errors: bits,
            message_bit_errors: bits,
            positions: vec![],
        }
    }

    fn manager(epoch: u32) -> ReliabilityManager {
        ReliabilityManager::new(ReliabilityPolicy {
            headroom: 2.0,
            epoch_pages: epoch,
            tmin: 3,
            tmax: 65,
        })
    }

    #[test]
    fn quiet_epochs_recommend_tmin() {
        let mut mgr = manager(4);
        for _ in 0..4 {
            mgr.observe(&DecodeOutcome::Clean);
        }
        assert_eq!(mgr.take_recommendation(), Some(3));
        assert_eq!(mgr.take_recommendation(), None, "one-shot");
    }

    #[test]
    fn recommendation_tracks_worst_page_with_headroom() {
        let mut mgr = manager(3);
        mgr.observe(&corrected(2));
        mgr.observe(&corrected(7));
        mgr.observe(&corrected(1));
        assert_eq!(mgr.take_recommendation(), Some(14));
    }

    #[test]
    fn uncorrectable_jumps_to_ceiling() {
        let mut mgr = manager(2);
        mgr.observe(&DecodeOutcome::Uncorrectable);
        mgr.observe(&corrected(1));
        assert_eq!(mgr.take_recommendation(), Some(65));
    }

    #[test]
    fn recommendation_clamped_to_tmax() {
        let mut mgr = manager(1);
        mgr.observe(&corrected(100));
        assert_eq!(mgr.take_recommendation(), Some(65));
    }

    #[test]
    fn probe_closes_epoch_immediately() {
        let mut mgr = manager(1000);
        mgr.observe_probe(9);
        assert_eq!(mgr.take_recommendation(), Some(18));
        assert_eq!(mgr.epochs_closed(), 1);
    }

    #[test]
    fn epochs_reset_state() {
        let mut mgr = manager(2);
        mgr.observe(&corrected(20));
        mgr.observe(&DecodeOutcome::Clean);
        assert_eq!(mgr.take_recommendation(), Some(40));
        // New epoch starts clean.
        mgr.observe(&DecodeOutcome::Clean);
        mgr.observe(&DecodeOutcome::Clean);
        assert_eq!(mgr.take_recommendation(), Some(3));
        assert_eq!(mgr.epochs_closed(), 2);
    }
}
