//! Read-retry policy and per-block learned read-offset tables.
//!
//! The *voltage-domain* reliability mitigation, next to the ECC schedule
//! (correction strength) and the background scrubber (data movement):
//! when a read comes back uncorrectable, re-sense the page at stepped
//! read-reference offsets until the ECC can correct it (arXiv:2209.01424
//! shows online read-reference tuning recovers most retention/disturb
//! error). Each extra sense is a full device read — cell time, bus
//! time, energy, and one more tick of the read-disturb accumulator — so
//! retry trades *read latency* for reliability where the scrubber
//! trades *write amplification*.
//!
//! The ladder walk is expensive exactly once per shift regime: the
//! [`ReadOffsetTable`] remembers the offset that last worked per block,
//! so steady-state reads start near the optimum and the ladder only
//! walks again when the distributions move further.
//!
//! The controller owns both pieces: [`RetryPolicy`] is configured
//! through `ControllerConfigBuilder::retry` (or
//! `EngineBuilder::retry_policy` a layer up), and the learned table
//! lives inside `MemoryController`, reset per block on erase.

use std::collections::BTreeMap;

/// Stepped read-reference retry policy for uncorrectable reads.
///
/// The ladder lists reference offsets (in steps, signed) to try in
/// order after the first sense fails to decode; `max_senses` caps the
/// total senses per host read (first sense included). The walk stops at
/// the first offset that decodes, and that offset is learned for the
/// block (see [`ReadOffsetTable`]).
///
/// # Precedence with scrubbing
///
/// Retry and scrub (`ScrubPolicy`) are independent knobs and may both
/// be enabled. They never conflict because they act in different
/// domains and at different times: **retry is per-read and
/// voltage-domain** — it changes only how an individual failing read is
/// sensed, between the read's issue and its completion; **scrub is
/// batch-scoped and data-movement-domain** — `Scrubber::plan_pass`
/// plans relocations against the *flushed* device state between
/// batches. A read recovered by retry still bumps the block's
/// read-disturb accumulator (retry senses included), so a retried block
/// keeps aging toward the scrubber's thresholds; scrubbing a block
/// erases it, which resets both the accumulator and the learned read
/// offset. When both are on, retry absorbs errors between scrub passes
/// and scrub bounds how far the ladder must reach.
///
/// # Example
///
/// ```
/// use mlcx_controller::retry::RetryPolicy;
///
/// let p = RetryPolicy::date2012();
/// assert!(p.is_enabled() && p.max_senses >= 2);
/// assert!(!RetryPolicy::disabled().is_enabled());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Reference offsets (steps from nominal) tried in order on an
    /// uncorrectable first sense. The offset the first sense used is
    /// skipped if it reappears in the ladder.
    pub ladder: Vec<i32>,
    /// Total senses allowed per host read, first sense included; the
    /// ladder walk stops when the budget is spent.
    pub max_senses: u32,
}

impl RetryPolicy {
    /// The alternating ±1..±4 step ladder: nearest rungs first, both
    /// polarities (retention shifts down, read disturb shifts up), deep
    /// enough for the worst modeled combined shift (see the
    /// `ladder_covers_the_modeled_worst_case_shift` test).
    pub fn date2012() -> Self {
        RetryPolicy {
            ladder: vec![1, -1, 2, -2, 3, -3, 4, -4],
            max_senses: 8,
        }
    }

    /// No retry: a single sense at the nominal reference, exactly the
    /// pre-retry datapath. This is the default.
    pub fn disabled() -> Self {
        RetryPolicy {
            ladder: Vec::new(),
            max_senses: 1,
        }
    }

    /// Whether an uncorrectable read can trigger extra senses.
    pub fn is_enabled(&self) -> bool {
        !self.ladder.is_empty() && self.max_senses > 1
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Counters for the retry subsystem, accumulated by the controller
/// across reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Host reads whose first sense came back uncorrectable and entered
    /// the ladder walk.
    pub retried_reads: u64,
    /// Extra senses issued beyond each read's first (ladder steps
    /// actually sensed).
    pub extra_senses: u64,
    /// Retried reads that found a decodable offset before the sense
    /// budget ran out.
    pub recovered_reads: u64,
    /// Retried reads that exhausted the ladder/budget still
    /// uncorrectable.
    pub exhausted_reads: u64,
}

/// Per-block read-reference offsets learned from successful retries.
///
/// After a ladder walk decodes at some offset, the block's entry is set
/// to that offset and subsequent reads of the block *start* there —
/// steady state pays one sense near the optimum instead of re-walking
/// the ladder. Blocks without an entry read at offset 0 (nominal).
/// Erasing a block resets its Vth distributions, so the controller
/// forgets its entry on erase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadOffsetTable {
    offsets: BTreeMap<usize, i32>,
}

impl ReadOffsetTable {
    /// An empty table: every block senses at the nominal reference.
    pub fn new() -> Self {
        Self::default()
    }

    /// The learned starting offset for `block` (0 when none learned).
    pub fn get(&self, block: usize) -> i32 {
        self.offsets.get(&block).copied().unwrap_or(0)
    }

    /// Records `offset` as the block's starting reference. Learning
    /// offset 0 removes the entry (nominal is the default).
    pub fn learn(&mut self, block: usize, offset: i32) {
        if offset == 0 {
            self.offsets.remove(&block);
        } else {
            self.offsets.insert(block, offset);
        }
    }

    /// Drops the block's entry (called on erase: a fresh block's
    /// distributions are back at nominal).
    pub fn forget(&mut self, block: usize) {
        self.offsets.remove(&block);
    }

    /// Number of blocks with a learned (nonzero) offset.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether no block has a learned offset.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_nand::disturb::DisturbModel;

    #[test]
    fn defaults_are_disabled_and_single_sense() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::disabled());
        assert!(!p.is_enabled());
        assert_eq!(p.max_senses, 1);
        // A ladder without budget is also disabled.
        let p = RetryPolicy {
            ladder: vec![1],
            max_senses: 1,
        };
        assert!(!p.is_enabled());
    }

    #[test]
    fn ladder_covers_the_modeled_worst_case_shift() {
        // The convergence pin: for the worst combined shift the
        // date2012 disturb model produces (a year parked at end of
        // life on a block read to the scrub threshold), some rung of
        // the date2012 ladder must land within half a step of the
        // optimum, inside the sense budget.
        let m = DisturbModel::date2012();
        let p = RetryPolicy::date2012();
        let shift = m.vth_shift_steps(DisturbModel::SCRUB_READ_THRESHOLD, 8760.0, 1_000_000);
        assert!(shift > 1.0, "worst case must actually shift: {shift}");
        let budget = (p.max_senses - 1) as usize;
        let (pos, best) = p
            .ladder
            .iter()
            .take(budget)
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (**a as f64 - shift)
                    .abs()
                    .total_cmp(&(**b as f64 - shift).abs())
            })
            .expect("ladder non-empty");
        assert!(
            (*best as f64 - shift).abs() <= 0.5,
            "no rung within half a step of shift {shift} (best {best})"
        );
        assert!(pos + 1 < budget, "the converging rung must fit the budget");
        // And the recovered RBER at that rung is a small fraction of
        // nominal — the ladder genuinely recovers the read.
        let nominal = m.additional_rber(DisturbModel::SCRUB_READ_THRESHOLD, 8760.0, 1_000_000);
        let at_rung =
            m.rber_at_offset(DisturbModel::SCRUB_READ_THRESHOLD, 8760.0, 1_000_000, *best);
        assert!(at_rung < nominal / 5.0, "{at_rung:e} vs {nominal:e}");
    }

    #[test]
    fn offset_table_learns_forgets_and_defaults_to_nominal() {
        let mut t = ReadOffsetTable::new();
        assert!(t.is_empty());
        assert_eq!(t.get(3), 0);
        t.learn(3, 2);
        t.learn(7, -1);
        assert_eq!((t.get(3), t.get(7), t.len()), (2, -1, 2));
        // Learning nominal clears the entry; erase forgets it.
        t.learn(3, 0);
        assert_eq!((t.get(3), t.len()), (0, 1));
        t.forget(7);
        assert!(t.is_empty());
    }
}
