//! Background scrub / read-reclaim.
//!
//! Read disturb and retention loss (see [`mlcx_nand::disturb`]) are the
//! two failure mechanisms that *accumulate between writes*: every read
//! of a block soft-programs its neighbours, and stored charge detraps
//! over time. The standard mitigation — read-reclaim, a.k.a. scrubbing
//! (Cai et al., arXiv:1805.02819; the error-mitigation survey,
//! arXiv:1706.08642) — relocates a pressed block's live pages and erases
//! it, resetting both clocks at the price of extra relocation writes and
//! an erase cycle. That price is exactly the reliability-performance
//! trade-off this crate exists to expose: scrub traffic competes with
//! host traffic for bus and cell time.
//!
//! [`Scrubber`] is the policy engine: it scans a block range's disturb
//! state (reads since erase, oldest data age — both exposed by
//! [`NandDevice`]) against a [`ScrubPolicy`], and turns the most-pressed
//! candidates into relocate+erase plans through
//! [`LogicalMap::plan_reclaim`] — the same [`FtlOp`] machinery garbage
//! collection uses, so callers execute scrub plans on whatever datapath
//! they already drive (the workload simulator compiles them into engine
//! `Relocate`/`ScrubErase` commands, charged to the channel scheduler
//! like any other operation).

use std::ops::Range;

use mlcx_nand::disturb::DisturbModel;
use mlcx_nand::NandDevice;

use crate::ftl::{FtlError, FtlOp, LogicalMap};

/// When a block qualifies for read-reclaim, and how much reclaim work a
/// single pass may emit.
///
/// The default ([`ScrubPolicy::disabled`]) never qualifies anything, so
/// every stack layer carries the knob at zero behavioral cost until a
/// caller opts in.
///
/// # Precedence with read-retry
///
/// Scrub and read-retry ([`crate::retry::RetryPolicy`]) are independent
/// knobs and may both be enabled. **Scrub is batch-scoped and
/// data-movement-domain**: [`Scrubber::plan_pass`] plans relocations
/// against the *flushed* device state between batches, paying write
/// amplification and erase cycles. **Retry is per-read and
/// voltage-domain**: it re-senses an individual failing read at stepped
/// reference offsets, paying read latency, and never moves data. The
/// two compose rather than conflict — retry senses still bump the
/// read-disturb accumulator the scrubber scans, so retried blocks keep
/// marching toward the scrub thresholds, and a scrub erase resets both
/// the accumulator and the block's learned read offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubPolicy {
    /// Reads since erase at which a block qualifies (`u64::MAX` never
    /// triggers).
    pub read_threshold: u64,
    /// Oldest-data age in hours at which a block qualifies
    /// (`f64::INFINITY` never triggers; only blocks actually holding
    /// data are considered).
    pub retention_age_hours: f64,
    /// Worst per-page program-interference RBER
    /// ([`mlcx_nand::NandDevice::block_interference_rber`]) at which a
    /// block qualifies (`f64::INFINITY` never triggers). A partially
    /// programmed page or a neighbor-hammered wordline crosses this long
    /// before the read/age clocks do — it is the scrub path's view of
    /// the program-side failure mechanisms.
    pub interference_rber_threshold: f64,
    /// Blocks reclaimed per scrub pass, bounding how much maintenance
    /// traffic a single pass may inject ahead of host commands (0
    /// disables scrubbing outright).
    pub max_blocks_per_pass: usize,
}

impl ScrubPolicy {
    /// The characterization-anchored policy: reclaim at
    /// [`DisturbModel::SCRUB_READ_THRESHOLD`] reads or one year of data
    /// age, one block per pass.
    pub fn date2012() -> Self {
        ScrubPolicy {
            read_threshold: DisturbModel::SCRUB_READ_THRESHOLD,
            retention_age_hours: 8760.0,
            interference_rber_threshold: 1e-4,
            max_blocks_per_pass: 1,
        }
    }

    /// A policy that never scrubs — the paper's evaluation conditions,
    /// and the default everywhere.
    pub fn disabled() -> Self {
        ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 0,
        }
    }

    /// Whether this policy can ever emit reclaim work.
    pub fn is_enabled(&self) -> bool {
        self.max_blocks_per_pass > 0
            && (self.read_threshold < u64::MAX
                || self.retention_age_hours.is_finite()
                || self.interference_rber_threshold.is_finite())
    }
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Lifetime counters of one [`Scrubber`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Scan passes run ([`Scrubber::plan_pass`] calls on an enabled
    /// policy).
    pub passes: u64,
    /// Blocks whose reclaim plan was emitted.
    pub blocks_reclaimed: u64,
    /// Live pages relocated across all emitted plans.
    pub relocated_pages: u64,
    /// Erases emitted across all plans.
    pub erases: u64,
    /// Candidates skipped because the map lacked relocation room (the
    /// pass retries them once host traffic has garbage-collected).
    pub skipped_out_of_space: u64,
}

/// The background scrub policy engine (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use mlcx_controller::scrub::{ScrubPolicy, Scrubber};
/// use mlcx_controller::{ControllerConfig, LogicalMap, MemoryController};
///
/// let mut ctrl = MemoryController::new(ControllerConfig::date2012(), 1)?;
/// for block in 0..4 {
///     ctrl.erase_block(block)?;
/// }
/// let mut map = LogicalMap::new(0..4, 128);
/// let mut scrubber = Scrubber::new(ScrubPolicy {
///     read_threshold: 1_000,
///     ..ScrubPolicy::date2012()
/// });
/// // Nothing is pressed yet: the pass is empty.
/// assert!(scrubber.plan_pass(ctrl.device(), &mut map).is_empty());
/// # Ok::<(), mlcx_controller::CtrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scrubber {
    policy: ScrubPolicy,
    stats: ScrubStats,
}

impl Scrubber {
    /// A scrubber enforcing `policy`.
    pub fn new(policy: ScrubPolicy) -> Self {
        Scrubber {
            policy,
            stats: ScrubStats::default(),
        }
    }

    /// The enforced policy.
    pub fn policy(&self) -> &ScrubPolicy {
        &self.policy
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ScrubStats {
        self.stats
    }

    /// Blocks of `blocks` whose disturb state crossed a policy
    /// threshold, most-pressed first (pressure = reads, age and
    /// program-interference RBER, each normalized to its threshold).
    /// Out-of-range blocks are ignored.
    pub fn candidates(&self, device: &NandDevice, blocks: Range<usize>) -> Vec<usize> {
        self.pressed(device, blocks)
            .into_iter()
            .map(|(_, _, b)| b)
            .collect()
    }

    /// Qualifying blocks as `(pressure, interference_qualified, block)`
    /// triples, most-pressed first — `interference_qualified` marks a
    /// block the interference threshold alone would have reclaimed (the
    /// attribution the FTL's `interference_reclaims` counter records).
    fn pressed(&self, device: &NandDevice, blocks: Range<usize>) -> Vec<(f64, bool, usize)> {
        if !self.policy.is_enabled() {
            return Vec::new();
        }
        let mut pressed: Vec<(f64, bool, usize)> = Vec::new();
        for block in blocks {
            let Ok(reads) = device.block_reads_since_erase(block) else {
                continue;
            };
            let Ok(age) = device.block_data_age_hours(block) else {
                continue;
            };
            let read_pressure = if self.policy.read_threshold == u64::MAX {
                0.0
            } else {
                reads as f64 / self.policy.read_threshold.max(1) as f64
            };
            let age_pressure = if self.policy.retention_age_hours.is_finite() {
                // `age > 0` only when the block actually stores data, so
                // a degenerate zero-hour threshold cannot flag blanks.
                if age > 0.0 && self.policy.retention_age_hours <= 0.0 {
                    1.0
                } else if self.policy.retention_age_hours > 0.0 {
                    age / self.policy.retention_age_hours
                } else {
                    0.0
                }
            } else {
                0.0
            };
            let interference_pressure = if self.policy.interference_rber_threshold.is_finite() {
                let rber = device.block_interference_rber(block).unwrap_or(0.0);
                // Same blank-guard shape as the age clock: only a block
                // actually carrying interference can trip a degenerate
                // zero threshold.
                if rber > 0.0 && self.policy.interference_rber_threshold <= 0.0 {
                    1.0
                } else if self.policy.interference_rber_threshold > 0.0 {
                    rber / self.policy.interference_rber_threshold
                } else {
                    0.0
                }
            } else {
                0.0
            };
            if read_pressure >= 1.0 || age_pressure >= 1.0 || interference_pressure >= 1.0 {
                let pressure = read_pressure.max(age_pressure).max(interference_pressure);
                pressed.push((pressure, interference_pressure >= 1.0, block));
            }
        }
        // Most-pressed first; ties broken by block id for determinism.
        pressed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)));
        pressed
    }

    /// One scrub pass over a map: plans read-reclaim for up to
    /// [`ScrubPolicy::max_blocks_per_pass`] of the most-pressed
    /// candidates, advancing the map's state (the caller must execute
    /// the returned ops in order, exactly like a GC plan). Candidates
    /// the map cannot relocate right now are skipped, not failed —
    /// background maintenance must never take down the host path.
    pub fn plan_pass(&mut self, device: &NandDevice, map: &mut LogicalMap) -> Vec<FtlOp> {
        if !self.policy.is_enabled() {
            return Vec::new();
        }
        self.stats.passes += 1;
        let mut ops = Vec::new();
        let mut reclaimed = 0;
        for (_, interference_qualified, block) in self.pressed(device, map.blocks()) {
            if reclaimed >= self.policy.max_blocks_per_pass {
                break;
            }
            let mut wear = |b: usize| device.block_cycles(b).unwrap_or(0);
            match map.plan_reclaim(block, &mut wear) {
                Ok(plan) if plan.is_empty() => {}
                Ok(plan) => {
                    reclaimed += 1;
                    self.stats.blocks_reclaimed += 1;
                    if interference_qualified {
                        map.note_interference_reclaim();
                    }
                    for op in &plan {
                        match op {
                            FtlOp::Relocate { .. } => self.stats.relocated_pages += 1,
                            FtlOp::Erase { .. } => self.stats.erases += 1,
                            FtlOp::Write { .. } => unreachable!("reclaim plans never host-write"),
                        }
                    }
                    ops.extend(plan);
                }
                Err(FtlError::OutOfSpace) => self.stats.skipped_out_of_space += 1,
                // plan_reclaim has no other error today; a future one
                // is still just a skipped candidate to the background
                // path.
                Err(_) => self.stats.skipped_out_of_space += 1,
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, MemoryController};

    fn pressed_controller() -> MemoryController {
        let mut config = ControllerConfig::date2012();
        config.geometry.blocks = 6;
        config.geometry.pages_per_block = 4;
        config.disturb = DisturbModel::date2012();
        let mut ctrl = MemoryController::new(config, 9).unwrap();
        for block in 0..6 {
            ctrl.erase_block(block).unwrap();
        }
        ctrl
    }

    #[test]
    fn disabled_policy_never_qualifies() {
        assert!(!ScrubPolicy::disabled().is_enabled());
        assert!(ScrubPolicy::date2012().is_enabled());
        assert!(!ScrubPolicy {
            max_blocks_per_pass: 0,
            ..ScrubPolicy::date2012()
        }
        .is_enabled());

        let ctrl = pressed_controller();
        let mut map = LogicalMap::new(0..6, 4);
        let mut scrubber = Scrubber::new(ScrubPolicy::disabled());
        assert!(scrubber.candidates(ctrl.device(), 0..6).is_empty());
        assert!(scrubber.plan_pass(ctrl.device(), &mut map).is_empty());
        assert_eq!(scrubber.stats(), ScrubStats::default());
    }

    #[test]
    fn read_hammered_blocks_become_candidates_in_pressure_order() {
        let mut ctrl = pressed_controller();
        let data = vec![0u8; 4096];
        ctrl.write_page(0, 0, &data).unwrap();
        ctrl.write_page(1, 0, &data).unwrap();
        for _ in 0..30 {
            ctrl.read_page(0, 0).unwrap();
        }
        for _ in 0..80 {
            ctrl.read_page(1, 0).unwrap();
        }
        let scrubber = Scrubber::new(ScrubPolicy {
            read_threshold: 25,
            ..ScrubPolicy::date2012()
        });
        // Block 1 (80 reads) is more pressed than block 0 (30 reads).
        assert_eq!(scrubber.candidates(ctrl.device(), 0..6), vec![1, 0]);
        let below = Scrubber::new(ScrubPolicy {
            read_threshold: 1_000,
            ..ScrubPolicy::date2012()
        });
        assert!(below.candidates(ctrl.device(), 0..6).is_empty());
    }

    #[test]
    fn aged_data_becomes_a_candidate_and_blank_blocks_never_do() {
        let mut ctrl = pressed_controller();
        ctrl.write_page(2, 0, &vec![0u8; 4096]).unwrap();
        ctrl.device_mut().advance_time_hours(500.0);
        let scrubber = Scrubber::new(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: 400.0,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 1,
        });
        // Only the block holding 500-hour-old data qualifies; the blank
        // blocks share the device clock but store nothing.
        assert_eq!(scrubber.candidates(ctrl.device(), 0..6), vec![2]);
    }

    #[test]
    fn interference_pressed_blocks_qualify_and_reclaims_are_attributed() {
        let mut ctrl = pressed_controller();
        let mut map = LogicalMap::new(0..6, 4);
        let mut wear = |_b: usize| 0u64;
        let plan = map.plan_write(0, &mut wear).unwrap();
        let [FtlOp::Write { to, .. }] = plan[..] else {
            panic!("fresh map must plan a bare write");
        };
        // Interrupt the program: the page's partial-program RBER dwarfs
        // the interference threshold while the read/age clocks are cold.
        ctrl.device_mut().arm_partial_program(0.3);
        ctrl.write_page(to.0, to.1, &vec![0u8; 4096]).unwrap();
        let mut scrubber = Scrubber::new(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: 1e-3,
            max_blocks_per_pass: 1,
        });
        assert_eq!(scrubber.candidates(ctrl.device(), 0..6), vec![to.0]);
        let plan = scrubber.plan_pass(ctrl.device(), &mut map);
        assert!(matches!(plan.last(), Some(FtlOp::Erase { .. })));
        // The reclaim is attributed to interference pressure.
        assert_eq!(map.stats().interference_reclaims, 1);
        assert_eq!(map.stats().scrub_runs, 1);
    }

    #[test]
    fn plan_pass_reclaims_bounded_work_and_counts_it() {
        let mut ctrl = pressed_controller();
        let mut map = LogicalMap::new(0..6, 4);
        let data = vec![0u8; 4096];
        let mut wear = |_b: usize| 0u64;
        // Map lpns 0..4 onto block 0, 4..8 onto block 1 (plan + execute
        // by hand so the device and map agree).
        for lpn in 0..8usize {
            let plan = map.plan_write(lpn, &mut wear).unwrap();
            let [FtlOp::Write { to, .. }] = plan[..] else {
                panic!("fresh map must plan bare writes");
            };
            ctrl.write_page(to.0, to.1, &data).unwrap();
        }
        for _ in 0..50 {
            ctrl.read_page(0, 0).unwrap();
            ctrl.read_page(1, 0).unwrap();
        }
        let mut scrubber = Scrubber::new(ScrubPolicy {
            read_threshold: 40,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 1,
        });
        let plan = scrubber.plan_pass(ctrl.device(), &mut map);
        // One block per pass: 4 relocations + 1 erase, nothing more.
        assert_eq!(plan.len(), 5);
        assert_eq!(scrubber.stats().blocks_reclaimed, 1);
        assert_eq!(scrubber.stats().relocated_pages, 4);
        assert_eq!(scrubber.stats().erases, 1);
        // Execute the plan; the second pass then reclaims the other
        // pressed block.
        for op in plan {
            match op {
                FtlOp::Relocate { from, to, .. } => {
                    let page = ctrl.read_page(from.0, from.1).unwrap().data;
                    ctrl.write_page(to.0, to.1, &page).unwrap();
                }
                FtlOp::Erase { block } => {
                    ctrl.erase_block(block).unwrap();
                }
                FtlOp::Write { .. } => unreachable!(),
            }
        }
        assert_eq!(ctrl.device().block_reads_since_erase(0).unwrap(), 0);
        let plan = scrubber.plan_pass(ctrl.device(), &mut map);
        assert!(matches!(plan.last(), Some(FtlOp::Erase { block: 1 })));
        assert_eq!(scrubber.stats().passes, 2);
    }
}
