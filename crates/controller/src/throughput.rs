//! Closed-form datapath latency and throughput models.
//!
//! These compose the paper's timing terms exactly as Section 6.3 does:
//!
//! * read path = tR (75 us) + codeword transfer over the flash bus +
//!   ECC decode latency (Fig. 11's denominator);
//! * write path = exposed buffer load + ECC encode + data-in transfer +
//!   ISPP program time (Fig. 9's denominator).

use mlcx_bch::hardware::EccHardware;
use mlcx_nand::NandTiming;

use crate::buffer::LoadStrategy;
use crate::flash_if::FlashInterface;
use crate::ocp::OcpSocket;

/// Breakdown of one page-read latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPath {
    /// Array sensing (tR), seconds.
    pub sense_s: f64,
    /// Codeword transfer over the flash bus, seconds.
    pub transfer_s: f64,
    /// ECC decode, seconds.
    pub decode_s: f64,
}

impl ReadPath {
    /// Total read latency, seconds.
    pub fn total_s(&self) -> f64 {
        self.sense_s + self.transfer_s + self.decode_s
    }

    /// Sustained read throughput for `page_bytes` of payload, MB/s.
    pub fn throughput_mbps(&self, page_bytes: usize) -> f64 {
        page_bytes as f64 / self.total_s() / 1e6
    }
}

/// Breakdown of one page-write latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePath {
    /// Host-side buffer load exposed on the critical path, seconds.
    pub load_s: f64,
    /// ECC encode, seconds.
    pub encode_s: f64,
    /// Data-in transfer over the flash bus, seconds.
    pub transfer_s: f64,
    /// ISPP program time, seconds.
    pub program_s: f64,
}

impl WritePath {
    /// Total write latency, seconds.
    pub fn total_s(&self) -> f64 {
        self.load_s + self.encode_s + self.transfer_s + self.program_s
    }

    /// Sustained write throughput for `page_bytes` of payload, MB/s.
    pub fn throughput_mbps(&self, page_bytes: usize) -> f64 {
        page_bytes as f64 / self.total_s() / 1e6
    }
}

/// Read-path latency for a `k_bits` page protected by `r_bits` of parity
/// decoded at capability `t`.
pub fn read_path(
    timing: &NandTiming,
    bus: &FlashInterface,
    hw: &EccHardware,
    k_bits: usize,
    r_bits: usize,
    t: u32,
) -> ReadPath {
    let n_bits = k_bits + r_bits;
    let codeword_bytes = k_bits / 8 + r_bits.div_ceil(8);
    ReadPath {
        sense_s: timing.read_page_s,
        transfer_s: bus.transaction_time_s(codeword_bytes),
        decode_s: hw.decode_latency_s(n_bits, t),
    }
}

/// Write-path latency for a `k_bits` page encoded at capability `t` with
/// program time `program_s`.
#[allow(clippy::too_many_arguments)]
pub fn write_path(
    ocp: &OcpSocket,
    strategy: LoadStrategy,
    bus: &FlashInterface,
    hw: &EccHardware,
    k_bits: usize,
    r_bits: usize,
    program_s: f64,
) -> WritePath {
    let codeword_bytes = k_bits / 8 + r_bits.div_ceil(8);
    WritePath {
        load_s: strategy.exposed_load_time_s(ocp.transfer_time_s(k_bits / 8)),
        encode_s: hw.encode_latency_s(k_bits, r_bits),
        transfer_s: bus.transaction_time_s(codeword_bytes),
        program_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_nand::ispp::{program_profile, IsppConfig, ProgramAlgorithm};

    const K: usize = 4096 * 8;

    fn parts() -> (NandTiming, FlashInterface, EccHardware, OcpSocket) {
        (
            NandTiming::date2012(),
            FlashInterface::date2012(),
            EccHardware::date2012(),
            OcpSocket::date2012(),
        )
    }

    #[test]
    fn read_latency_dominated_by_decode_at_end_of_life() {
        let (t, bus, hw, _) = parts();
        // Paper 6.3.2: page read 75 us vs decode up to ~150 us at t = 65.
        let path = read_path(&t, &bus, &hw, K, 16 * 65, 65);
        assert!(path.decode_s > path.sense_s);
        assert!(path.decode_s > 140e-6);
        assert!(
            (350e-6..400e-6).contains(&path.total_s()),
            "{}",
            path.total_s()
        );
    }

    #[test]
    fn fig11_read_gain_about_30_percent_at_eol() {
        let (t, bus, hw, _) = parts();
        let sv = read_path(&t, &bus, &hw, K, 16 * 65, 65);
        let dv = read_path(&t, &bus, &hw, K, 16 * 14, 14);
        let gain = sv.total_s() / dv.total_s() - 1.0;
        assert!(
            (0.25..0.35).contains(&gain),
            "read gain at end of life = {:.3}",
            gain
        );
    }

    #[test]
    fn fig9_write_loss_40_to_48_percent() {
        let (_, bus, hw, ocp) = parts();
        let cfg = IsppConfig::date2012();
        let loss_at = |cycles: u64, t_sv: u32, t_dv: u32| {
            let sv = write_path(
                &ocp,
                LoadStrategy::OneRound,
                &bus,
                &hw,
                K,
                16 * t_sv as usize,
                program_profile(&cfg, ProgramAlgorithm::IsppSv, cycles).duration_s,
            );
            let dv = write_path(
                &ocp,
                LoadStrategy::OneRound,
                &bus,
                &hw,
                K,
                16 * t_dv as usize,
                program_profile(&cfg, ProgramAlgorithm::IsppDv, cycles).duration_s,
            );
            1.0 - dv.throughput_mbps(4096) / sv.throughput_mbps(4096)
        };
        let fresh = loss_at(1, 3, 3);
        let eol = loss_at(1_000_000, 65, 14);
        assert!((0.37..0.44).contains(&fresh), "fresh loss = {fresh:.3}");
        assert!((0.44..0.52).contains(&eol), "eol loss = {eol:.3}");
        assert!(eol > fresh);
    }

    #[test]
    fn two_round_load_mitigates_write_overhead() {
        let (_, bus, hw, ocp) = parts();
        let one = write_path(&ocp, LoadStrategy::OneRound, &bus, &hw, K, 16 * 3, 900e-6);
        let two = write_path(&ocp, LoadStrategy::TwoRound, &bus, &hw, K, 16 * 3, 900e-6);
        assert!(two.total_s() < one.total_s());
        assert_eq!(two.encode_s, one.encode_s);
    }

    #[test]
    fn throughput_inverse_of_latency() {
        let (t, bus, hw, _) = parts();
        let p = read_path(&t, &bus, &hw, K, 16 * 3, 3);
        let mbps = p.throughput_mbps(4096);
        assert!((mbps - 4096.0 / p.total_s() / 1e6).abs() < 1e-9);
        assert!(mbps > 10.0 && mbps < 25.0, "read throughput = {mbps}");
    }
}
