//! Property-based tests of the full controller datapath.

use mlcx_controller::{ConfigCommand, ControllerConfig, MemoryController};
use mlcx_nand::ProgramAlgorithm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Data integrity: whatever the wear point (within the codec's
    /// serviceable range), algorithm and scheduled-capability headroom,
    /// a written page reads back bit-exact through the ECC.
    #[test]
    fn write_read_integrity_across_configurations(
        seed in any::<u64>(),
        wear_decade in 0u32..=5,
        dv in any::<bool>(),
        extra_t in 0u32..=10,
    ) {
        let mut ctrl = MemoryController::new(ControllerConfig::date2012(), seed).unwrap();
        let cycles = 10u64.pow(wear_decade);
        ctrl.age_block(0, cycles).unwrap();
        ctrl.erase_block(0).unwrap();

        let algorithm = if dv { ProgramAlgorithm::IsppDv } else { ProgramAlgorithm::IsppSv };
        ctrl.apply(ConfigCommand::SetAlgorithm(algorithm)).unwrap();
        // Schedule with generous empirical headroom: expected raw errors
        // per page ~ n*rber; capability = that + margin, clamped.
        let rber = ctrl.device().aging().rber(algorithm, cycles.max(1));
        let expected_errors = (34_000.0 * rber).ceil() as u32;
        let t = (2 * expected_errors + 3 + extra_t).clamp(3, 65);
        ctrl.apply(ConfigCommand::SetCorrection(t)).unwrap();

        let data: Vec<u8> = (0..4096).map(|i| ((i as u64 * 31 + seed) % 256) as u8).collect();
        ctrl.write_page(0, 0, &data).unwrap();
        let r = ctrl.read_page(0, 0).unwrap();
        prop_assert!(r.outcome.is_success(), "t={t} cycles={cycles}");
        prop_assert_eq!(r.data, data);
    }

    /// Latency composition invariants hold for every configuration: the
    /// breakdown sums to the total, reads are insensitive to the program
    /// algorithm, and decode latency is monotone in the capability.
    #[test]
    fn latency_invariants(t1 in 3u32..=65, t2 in 3u32..=65) {
        let mut ctrl = MemoryController::new(ControllerConfig::date2012(), 1).unwrap();
        ctrl.erase_block(0).unwrap();
        let data = vec![0u8; 4096];

        ctrl.apply(ConfigCommand::SetCorrection(t1)).unwrap();
        ctrl.write_page(0, 0, &data).unwrap();
        let r1 = ctrl.read_page(0, 0).unwrap();
        prop_assert!((r1.latency_s - (r1.sense_s + r1.transfer_s + r1.decode_s)).abs() < 1e-12);

        ctrl.apply(ConfigCommand::SetCorrection(t2)).unwrap();
        ctrl.write_page(0, 1, &data).unwrap();
        let r2 = ctrl.read_page(0, 1).unwrap();
        if t1 < t2 {
            prop_assert!(r1.decode_s <= r2.decode_s + 1e-12);
        } else if t2 < t1 {
            prop_assert!(r2.decode_s <= r1.decode_s + 1e-12);
        }
    }

    /// The register file reflects every accepted command, and rejected
    /// commands leave the configuration untouched.
    #[test]
    fn register_file_consistency(ts in proptest::collection::vec(0u32..80, 1..8)) {
        let mut ctrl = MemoryController::new(ControllerConfig::date2012(), 2).unwrap();
        let mut expected = ctrl.correction();
        for t in ts {
            match ctrl.apply(ConfigCommand::SetCorrection(t)) {
                Ok(()) => {
                    prop_assert!((3..=65).contains(&t));
                    expected = t;
                }
                Err(_) => prop_assert!(!(3..=65).contains(&t)),
            }
            prop_assert_eq!(ctrl.correction(), expected);
        }
    }
}
