//! The event-driven command-queue storage engine — the host-facing API
//! of the stack.
//!
//! [`StorageEngine`] fronts the adaptive memory controller with an
//! NVMe-style submission/completion interface: the host registers named
//! *services* (block regions bound to a cross-layer [`Objective`] and an
//! optional [`QosSpec`]), enqueues typed [`Command`]s through its
//! [`SubmissionQueue`] ([`StorageEngine::sq`]), and drains results from
//! its [`CompletionQueue`] ([`StorageEngine::cq`]). Execution is
//! discrete-event: every command is stamped with an *arrival* time on
//! the engine's virtual clock at submission, dispatch runs the queued
//! work through the real controller datapath (functional BCH
//! encode/decode, error-injected NAND model, calibrated latencies) in
//! [`SchedPolicy`] order, and each command's merged channel/die issue
//! window becomes a completion event — so completions surface in
//! *completion-time* order, out of order with respect to dispatch
//! whenever dies overlap. Each drain also produces an aggregate
//! [`BatchReport`] of modeled latency, energy, throughput and
//! tail-latency flow percentiles.
//!
//! The engine is also where the cross-layer re-derivation cost is paid
//! once instead of per page: the operating point selected by a service's
//! objective at a wear level is memoized per `(service, wear bucket)`
//! ([`WearBucketing`]), and the controller knobs are only rewritten when
//! the point actually changes ([`MemoryController::apply_point`]).
//!
//! The pre-event entry points ([`StorageEngine::submit`],
//! [`StorageEngine::poll`]) survive as deprecated thin wrappers over
//! the queue pair; see `EXPERIMENTS.md` for the migration table.
//!
//! # Example
//!
//! ```
//! use mlcx_core::engine::{Command, EngineBuilder};
//! use mlcx_core::Objective;
//!
//! let mut engine = EngineBuilder::date2012().seed(7).build()?;
//! let media = engine.register_service("media", Objective::MaxReadThroughput, 0..8)?;
//!
//! let data = vec![0x5Au8; 4096];
//! engine.sq().submit(&[
//!     Command::erase(media, 0),
//!     Command::write(media, 0, 0, data.clone()),
//!     Command::read(media, 0, 0),
//! ])?;
//! let completions = engine.cq().drain();
//! assert_eq!(completions.len(), 3);
//! assert!(completions.iter().all(|c| c.result.is_ok()));
//! // Completions carry their event timestamps: arrival -> start -> end.
//! assert!(completions.iter().all(|c| c.arrival_s <= c.start_s && c.start_s <= c.end_s));
//! let report = engine.last_batch();
//! assert!(report.device_latency_s > 0.0 && report.energy_j > 0.0);
//! # Ok::<(), mlcx_core::MlcxError>(())
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;

use mlcx_controller::{ControllerConfig, MemoryController, ReadReport, ScrubPolicy, WriteReport};

use crate::error::MlcxError;
use crate::event::{CompletionEvent, EventQueue, PolicyBundle, QosSpec, SchedPolicy};
use crate::fault::{FaultInjector, FaultPlan};
use crate::model::{OperatingPoint, SubsystemModel};
use crate::policy::Objective;
use crate::services::{ServiceError, ServiceRegion, ServiceStats};

/// An opaque ticket naming a registered service.
///
/// Handles are bound to the engine that issued them: a handle from a
/// different [`StorageEngine`] instance is rejected with
/// [`MlcxError::UnknownHandle`] even when its index happens to be in
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceHandle {
    engine: u32,
    index: u32,
}

impl ServiceHandle {
    /// The raw index (diagnostics only).
    pub fn index(self) -> u32 {
        self.index
    }

    /// A handle with raw fields, for unit tests that need a placeholder.
    #[cfg(test)]
    pub(crate) fn test_only(engine: u32, index: u32) -> Self {
        ServiceHandle { engine, index }
    }
}

impl fmt::Display for ServiceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc#{}", self.index)
    }
}

/// An opaque ticket naming one submitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdId(u64);

impl CmdId {
    /// The raw sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// An id with a raw sequence number, for unit tests that need a
    /// placeholder.
    #[cfg(test)]
    pub(crate) fn test_only(raw: u64) -> Self {
        CmdId(raw)
    }
}

impl fmt::Display for CmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmd#{}", self.0)
    }
}

/// One host command, tagged with the service it runs under.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Read one page.
    Read {
        /// Issuing service.
        service: ServiceHandle,
        /// Target block.
        block: usize,
        /// Target page.
        page: usize,
    },
    /// Write one page.
    Write {
        /// Issuing service.
        service: ServiceHandle,
        /// Target block.
        block: usize,
        /// Target page.
        page: usize,
        /// Exactly one page of data.
        data: Vec<u8>,
    },
    /// Erase one block.
    Erase {
        /// Issuing service.
        service: ServiceHandle,
        /// Target block.
        block: usize,
    },
    /// Discard one page's mapping (its ECC metadata) without touching
    /// the medium.
    Trim {
        /// Issuing service.
        service: ServiceHandle,
        /// Target block.
        block: usize,
        /// Target page.
        page: usize,
    },
    /// Re-bind the service to a different cross-layer objective.
    Configure {
        /// Issuing service.
        service: ServiceHandle,
        /// The new objective.
        objective: Objective,
    },
    /// Copy one page to a freshly erased slot through the full datapath
    /// (read + ECC correct at the source's write-time capability, then
    /// re-encode and program at the service's current operating point) —
    /// the relocation primitive of scrub/read-reclaim maintenance.
    /// Counted under [`BatchReport::scrub_relocations`], not the host
    /// byte counters.
    Relocate {
        /// Issuing service.
        service: ServiceHandle,
        /// Source `(block, page)`.
        from: (usize, usize),
        /// Destination `(block, page)`; must be erased.
        to: (usize, usize),
    },
    /// Erase a block as scrub maintenance: identical device effect to
    /// [`Command::Erase`] (and it equally resets the block's
    /// read-disturb accumulator), but accounted under
    /// [`BatchReport::scrub_erases`] so maintenance traffic is
    /// separable from host traffic.
    ScrubErase {
        /// Issuing service.
        service: ServiceHandle,
        /// Target block.
        block: usize,
    },
}

impl Command {
    /// A read command.
    pub fn read(service: ServiceHandle, block: usize, page: usize) -> Self {
        Command::Read {
            service,
            block,
            page,
        }
    }

    /// A write command.
    pub fn write(service: ServiceHandle, block: usize, page: usize, data: Vec<u8>) -> Self {
        Command::Write {
            service,
            block,
            page,
            data,
        }
    }

    /// An erase command.
    pub fn erase(service: ServiceHandle, block: usize) -> Self {
        Command::Erase { service, block }
    }

    /// A trim command.
    pub fn trim(service: ServiceHandle, block: usize, page: usize) -> Self {
        Command::Trim {
            service,
            block,
            page,
        }
    }

    /// A reconfiguration command.
    pub fn configure(service: ServiceHandle, objective: Objective) -> Self {
        Command::Configure { service, objective }
    }

    /// A scrub relocation command.
    pub fn relocate(service: ServiceHandle, from: (usize, usize), to: (usize, usize)) -> Self {
        Command::Relocate { service, from, to }
    }

    /// A scrub erase command.
    pub fn scrub_erase(service: ServiceHandle, block: usize) -> Self {
        Command::ScrubErase { service, block }
    }

    /// The service the command runs under.
    pub fn service(&self) -> ServiceHandle {
        match *self {
            Command::Read { service, .. }
            | Command::Write { service, .. }
            | Command::Erase { service, .. }
            | Command::Trim { service, .. }
            | Command::Configure { service, .. }
            | Command::Relocate { service, .. }
            | Command::ScrubErase { service, .. } => service,
        }
    }
}

/// The successful result payload of one command.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutput {
    /// Read result: corrected data plus the latency/energy breakdown.
    Read(ReadReport),
    /// Write result: the latency/energy breakdown and configuration used.
    Write(WriteReport),
    /// Erase result: device busy time and energy.
    Erase {
        /// Erase busy time, seconds.
        duration_s: f64,
        /// Erase energy, joules.
        energy_j: f64,
    },
    /// Trim result.
    Trim {
        /// Whether the page was mapped before the trim.
        was_mapped: bool,
    },
    /// Reconfiguration result.
    Configure {
        /// The objective the service was bound to before.
        previous: Objective,
    },
    /// Scrub relocation result.
    Relocate {
        /// Raw bit errors the ECC corrected reading the source page.
        corrected_bits: usize,
        /// Whether the source decode succeeded (the best-effort data is
        /// relocated either way; a miss surfaces at the next host read).
        read_ok: bool,
        /// Extra read-retry senses the source read needed beyond its
        /// first (0 with retry disabled or a clean first sense).
        retry_senses: u32,
        /// Read + write device latency, seconds.
        latency_s: f64,
        /// Read + write energy, joules.
        energy_j: f64,
        /// Capability the destination page was re-encoded at.
        t_used: u32,
    },
}

/// One completed command, with its event timestamps on the engine's
/// virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The ticket the submission queue returned for the command.
    pub id: CmdId,
    /// The service the command ran under.
    pub service: ServiceHandle,
    /// The command's outcome.
    pub result: Result<CommandOutput, MlcxError>,
    /// When the command arrived (was submitted), absolute seconds on
    /// the virtual clock.
    pub arrival_s: f64,
    /// When its first device operation started (its dispatch frontier
    /// for commands that touch no device resource).
    pub start_s: f64,
    /// When its last device operation drained — the event time the
    /// completion surfaced at.
    pub end_s: f64,
}

impl Completion {
    /// End-to-end flow latency: completion minus arrival, the figure
    /// the per-tenant tail-latency percentiles are computed over.
    pub fn flow_s(&self) -> f64 {
        (self.end_s - self.arrival_s).max(0.0)
    }
}

/// Aggregate accounting of one [`StorageEngine::poll`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchReport {
    /// Commands executed.
    pub commands: usize,
    /// Commands that completed successfully.
    pub succeeded: usize,
    /// Commands that completed with an error.
    pub failed: usize,
    /// Total modeled datapath latency, seconds (sequential device time).
    pub device_latency_s: f64,
    /// Portion of [`BatchReport::device_latency_s`] spent in reads.
    pub read_latency_s: f64,
    /// Portion of [`BatchReport::device_latency_s`] spent in writes.
    pub write_latency_s: f64,
    /// Total modeled energy, joules.
    pub energy_j: f64,
    /// Payload bytes read.
    pub bytes_read: usize,
    /// Payload bytes written.
    pub bytes_written: usize,
    /// Raw bit errors corrected by the ECC across the batch.
    pub corrected_bits: u64,
    /// Operating points served from the memo cache.
    pub op_cache_hits: u64,
    /// Operating points derived from the model.
    pub op_cache_misses: u64,
    /// Configuration register writes actually issued.
    pub knob_writes: u64,
    /// Modeled batch latency with channel/die overlap: from the batch
    /// opening to the last die falling idle (the scheduler's makespan).
    /// Equals [`BatchReport::device_latency_s`] on a 1-channel/1-die
    /// topology, where nothing can overlap.
    pub parallel_latency_s: f64,
    /// Total bus busy time across every channel during the batch.
    pub channel_busy_s: f64,
    /// Channels in the topology the batch ran on.
    pub channels: usize,
    /// Scrub relocations ([`Command::Relocate`]) executed in the batch.
    pub scrub_relocations: u64,
    /// Scrub erases ([`Command::ScrubErase`]) executed in the batch.
    pub scrub_erases: u64,
    /// Portion of [`BatchReport::device_latency_s`] spent on scrub
    /// maintenance (relocations + scrub erases) — the device time the
    /// batch paid for reliability instead of host traffic.
    pub scrub_latency_s: f64,
    /// Reads whose first sense was uncorrectable and entered the
    /// read-retry ladder (0 with retry disabled).
    pub retry_reads: u64,
    /// Extra senses the retry ladder issued beyond each read's first.
    pub retry_senses: u64,
    /// Retried reads still uncorrectable after the sense budget.
    pub retry_exhausted: u64,
    /// Portion of [`BatchReport::device_latency_s`] spent on retry
    /// senses — the read-latency price of the voltage-domain
    /// mitigation (already included in `read_latency_s`).
    pub retry_latency_s: f64,
    /// Median end-to-end flow latency (completion minus arrival)
    /// across the drain's completions, seconds.
    pub flow_p50_s: f64,
    /// p99 flow latency across the drain's completions, seconds.
    pub flow_p99_s: f64,
    /// p99.9 flow latency across the drain's completions, seconds —
    /// the tail the QoS scheduler is judged on.
    pub flow_p999_s: f64,
    /// Completions whose flow latency exceeded their service's
    /// [`QosSpec::deadline_s`] (0 with every deadline at the default
    /// infinity).
    pub deadline_misses: u64,
    /// Programs the [`crate::FaultPlan`] interrupted mid-staircase this
    /// batch (0 with injection disabled).
    pub injected_partial_programs: u64,
    /// Reads whose page carried a nonzero program-interference RBER
    /// term (neighbor coupling, die-level program disturb, or a
    /// partially programmed page) at sense time.
    pub interference_reads: u64,
}

impl BatchReport {
    /// Modeled read throughput over the batch's read time, MB/s (0 if
    /// no reads).
    pub fn read_mbps(&self) -> f64 {
        if self.read_latency_s <= 0.0 {
            return 0.0;
        }
        self.bytes_read as f64 / self.read_latency_s / 1e6
    }

    /// Modeled write throughput over the batch's write time, MB/s (0 if
    /// no writes).
    pub fn write_mbps(&self) -> f64 {
        if self.write_latency_s <= 0.0 {
            return 0.0;
        }
        self.bytes_written as f64 / self.write_latency_s / 1e6
    }

    /// Serial device time over parallel makespan: how many channels'
    /// worth of work the batch actually overlapped (1.0 when nothing
    /// overlaps, up to the die count for a perfectly striped batch; 0
    /// with no device time).
    pub fn achieved_parallelism(&self) -> f64 {
        if self.parallel_latency_s <= 0.0 {
            return 0.0;
        }
        self.device_latency_s / self.parallel_latency_s
    }

    /// Mean fraction of the batch window each channel's bus was busy
    /// (0 with no makespan).
    pub fn channel_utilization(&self) -> f64 {
        if self.parallel_latency_s <= 0.0 || self.channels == 0 {
            return 0.0;
        }
        self.channel_busy_s / (self.channels as f64 * self.parallel_latency_s)
    }

    fn absorb(&mut self, duration_s: f64, energy_j: f64) {
        self.device_latency_s += duration_s;
        self.energy_j += energy_j;
    }
}

/// How the engine buckets wear levels when memoizing operating points.
///
/// The ECC schedule is a monotone step function of wear, so coarse
/// buckets are safe as long as the point is derived at the bucket's
/// *upper* edge (the capability can only be conservative within the
/// bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WearBucketing {
    /// No memoization: re-derive on every command — the retired
    /// per-page `ServicedStore` facade's behaviour.
    PerPage,
    /// Memoize on the exact cycle count: every same-wear command after
    /// the first is a cache hit, and the selected point is identical to
    /// [`WearBucketing::PerPage`].
    #[default]
    Exact,
    /// Memoize on power-of-two wear buckets, deriving at the bucket's
    /// upper edge: at most 21 derivations per service over a 10^6-cycle
    /// life, at the price of a slightly conservative (never weaker)
    /// capability inside each bucket.
    Log2,
}

impl WearBucketing {
    /// `(cache key, wear to derive at)` for a wear level.
    fn bucket(self, wear: u64) -> (u64, u64) {
        match self {
            WearBucketing::PerPage | WearBucketing::Exact => (wear, wear),
            WearBucketing::Log2 => {
                let key = 64 - u64::from(wear.leading_zeros());
                let upper = if key >= 64 {
                    u64::MAX
                } else {
                    (1u64 << key) - 1
                };
                (key, upper.max(1))
            }
        }
    }
}

/// One submitted, not-yet-dispatched command.
struct QueuedCmd {
    id: CmdId,
    cmd: Command,
    /// Arrival timestamp on the virtual clock (stamped at submission).
    arrival_s: f64,
    /// Global submission sequence — the FIFO/deadline tie-break.
    seq: u64,
}

struct ServiceState {
    region: ServiceRegion,
    stats: ServiceStats,
    qos: QosSpec,
    /// Device time this service has consumed, per unit weight — the
    /// weighted-fair virtual time its dispatches are ordered by.
    vtime_s: f64,
    queue: VecDeque<QueuedCmd>,
    /// Memoized operating point per die, as `(wear-bucket key, disturb
    /// epoch, point)` — the memo is keyed `(service, die, wear bucket)`
    /// because dies age independently, so one die's wear crossing a
    /// bucket edge must not evict the point of its siblings. One slot
    /// per die suffices: within a die wear only moves forward, so an
    /// evicted bucket would never be hit again anyway, and the slots
    /// keep the cache O(dies) per service over the whole device
    /// lifetime. The epoch tags which disturb generation the point was
    /// derived under: wear alone cannot see disturb-driven RBER growth
    /// (reads and retention age move without a single P/E cycle), so
    /// [`StorageEngine::invalidate_operating_points`] bumps the engine
    /// epoch and every stale slot misses on its next lookup.
    op_slots: Vec<Option<(u64, u64, OperatingPoint)>>,
}

/// Fluent construction of a [`StorageEngine`].
///
/// # Example
///
/// ```
/// use mlcx_core::engine::{EngineBuilder, WearBucketing};
/// use mlcx_core::SubsystemModel;
///
/// let engine = EngineBuilder::date2012()
///     .seed(99)
///     .model(SubsystemModel::builder().uber_target(1e-13).build()?)
///     .wear_bucketing(WearBucketing::Log2)
///     .build()?;
/// assert_eq!(engine.model().uber_target, 1e-13);
/// # Ok::<(), mlcx_core::MlcxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: ControllerConfig,
    model: SubsystemModel,
    seed: u64,
    bucketing: WearBucketing,
    scrub: ScrubPolicy,
    sched: SchedPolicy,
    fault: FaultPlan,
}

impl EngineBuilder {
    /// A builder seeded with the paper's full calibration.
    pub fn date2012() -> Self {
        EngineBuilder {
            config: ControllerConfig::date2012(),
            model: SubsystemModel::date2012(),
            seed: 2012,
            bucketing: WearBucketing::default(),
            scrub: ScrubPolicy::disabled(),
            sched: SchedPolicy::default(),
            fault: FaultPlan::disabled(),
        }
    }

    /// Installs a whole [`PolicyBundle`] at once — retry, scrub,
    /// disturb model, codec kernel and dispatch policy in one call,
    /// the same surface [`ScenarioBuilder::policies`](crate::sim::scenario::ScenarioBuilder::policies)
    /// (`crate::sim::scenario::ScenarioBuilder::policies`) accepts.
    /// Call after [`EngineBuilder::controller_config`], which replaces
    /// the configuration the retry/disturb/kernel knobs live in.
    pub fn policies(mut self, bundle: PolicyBundle) -> Self {
        self.config.retry = bundle.retry;
        self.config.disturb = bundle.disturb;
        self.config.ecc_kernel = bundle.codec_kernel;
        self.scrub = bundle.scrub;
        self.sched = bundle.sched;
        self
    }

    /// Selects how dispatch is ordered across services (default
    /// [`SchedPolicy::ServiceMajor`] — the historical drain order,
    /// bit-identical to the pre-event engine).
    pub fn sched_policy(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Overrides the controller configuration.
    pub fn controller_config(mut self, config: ControllerConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a read-disturb / retention model on the device (default
    /// [`DisturbModel::disabled`](mlcx_nand::disturb::DisturbModel::disabled)).
    /// Call after [`EngineBuilder::controller_config`], which replaces
    /// the whole configuration including this knob.
    pub fn disturb_model(mut self, disturb: mlcx_nand::disturb::DisturbModel) -> Self {
        self.config.disturb = disturb;
        self
    }

    /// Sets the scrub/read-reclaim policy carried by the engine
    /// (default [`ScrubPolicy::disabled`]). The engine itself does not
    /// scan — layers owning the logical maps (the workload simulator's
    /// per-service `Scrubber`s) read the policy back via
    /// [`StorageEngine::scrub_policy`] and submit the resulting
    /// [`Command::Relocate`]/[`Command::ScrubErase`] maintenance.
    pub fn scrub_policy(mut self, scrub: ScrubPolicy) -> Self {
        self.scrub = scrub;
        self
    }

    /// Sets the read-retry policy the controller applies on
    /// uncorrectable reads (default
    /// [`RetryPolicy::disabled`](mlcx_controller::retry::RetryPolicy::disabled)
    /// — the pre-retry datapath, bit-for-bit). Call after
    /// [`EngineBuilder::controller_config`], which replaces the whole
    /// configuration including this knob. Retry senses are charged to
    /// the channel scheduler like any read, surface in
    /// [`BatchReport::retry_senses`]/[`BatchReport::retry_latency_s`],
    /// and — through the block's learned offset — lower the effective
    /// disturb RBER the `(wear-bucket, disturb-epoch)` memo derives ECC
    /// schedules against.
    pub fn retry_policy(mut self, retry: mlcx_controller::retry::RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Selects the codec kernel rung of the BCH datapath (default
    /// [`CodecKernel::Auto`](mlcx_controller::CodecKernel::Auto) — the
    /// fastest rung). Every rung is bit-identical, so simulation results
    /// do not depend on this knob; it only changes wall-clock throughput.
    /// Call after [`EngineBuilder::controller_config`], which replaces
    /// the whole configuration including this knob.
    pub fn codec_kernel(mut self, kernel: mlcx_controller::CodecKernel) -> Self {
        self.config.ecc_kernel = kernel;
        self
    }

    /// Installs a program-fault injection schedule (default
    /// [`FaultPlan::disabled`] — zero injections, zero RNG draws, and a
    /// datapath bit-identical to an engine without the knob). The plan's
    /// own seed drives a dedicated stream, so the same workload replays
    /// under different fault schedules without perturbing the device's
    /// error injection. Only *host* writes roll the schedule —
    /// maintenance relocations do not, so the k-th host program sees
    /// the same fate under every mitigation arm.
    pub fn fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Overrides the cross-layer subsystem model.
    pub fn model(mut self, model: SubsystemModel) -> Self {
        self.model = model;
        self
    }

    /// Seeds the device's error-injection stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the operating-point memoization policy.
    pub fn wear_bucketing(mut self, bucketing: WearBucketing) -> Self {
        self.bucketing = bucketing;
        self
    }

    /// Builds the engine and its controller/device pair.
    ///
    /// # Errors
    ///
    /// [`MlcxError::InvalidConfig`] when the model and the controller
    /// configuration disagree (the model would schedule capabilities or
    /// codeword shapes the codec cannot execute); controller
    /// construction errors (codec build, spare overflow) surface as
    /// [`MlcxError::Ctrl`].
    pub fn build(self) -> Result<StorageEngine, MlcxError> {
        let (model, config) = (&self.model, &self.config);
        if model.tmax > config.ecc_tmax || model.tmin < config.ecc_tmin {
            return Err(MlcxError::InvalidConfig {
                reason: format!(
                    "model capability range {}..={} exceeds the codec's {}..={}",
                    model.tmin, model.tmax, config.ecc_tmin, config.ecc_tmax
                ),
            });
        }
        if model.ecc_m != config.ecc_m {
            return Err(MlcxError::InvalidConfig {
                reason: format!(
                    "model field degree m = {} differs from the codec's m = {}",
                    model.ecc_m, config.ecc_m
                ),
            });
        }
        if model.k_bits != config.geometry.page_bytes * 8 {
            return Err(MlcxError::InvalidConfig {
                reason: format!(
                    "model message length {} bits differs from the {}-byte page",
                    model.k_bits, config.geometry.page_bytes
                ),
            });
        }
        let ctrl = MemoryController::new(self.config, self.seed)?;
        let mut engine = StorageEngine::with_bucketing(ctrl, self.model, self.bucketing);
        engine.scrub = self.scrub;
        engine.sched = self.sched;
        engine.fault = FaultInjector::new(self.fault);
        Ok(engine)
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::date2012()
    }
}

/// The command-queue storage engine (see the [module docs](self)).
pub struct StorageEngine {
    /// Identifies this instance so handles cannot cross engines.
    engine_id: u32,
    ctrl: MemoryController,
    model: SubsystemModel,
    services: Vec<ServiceState>,
    bucketing: WearBucketing,
    scrub: ScrubPolicy,
    /// Generation counter of the disturb state the memoized operating
    /// points were derived under (see [`ServiceState::op_slots`]).
    disturb_epoch: u64,
    next_id: u64,
    last_batch: BatchReport,
    /// Cross-service dispatch order.
    sched: SchedPolicy,
    /// The engine's virtual clock, absolute seconds — shared with the
    /// channel scheduler's busy-time timeline. Advances as completion
    /// events are delivered.
    clock_s: f64,
    /// Global submission sequence source (arrival-order tie-breaks).
    submit_seq: u64,
    /// Pending completion events, keyed `(end time, dispatch seq)`.
    events: EventQueue,
    /// `(service index, flow latency)` of every completion in the most
    /// recent dispatch — the per-tenant sample stream behind the
    /// aggregate [`BatchReport`] flow percentiles.
    last_flows: Vec<(u32, f64)>,
    /// Executor of the builder's [`FaultPlan`] — rolls its own seeded
    /// stream once per *host* write (never for maintenance relocations,
    /// and never at all when the plan is disabled).
    fault: FaultInjector,
}

/// Source of per-instance engine ids (handle provenance checks).
static NEXT_ENGINE_ID: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

impl StorageEngine {
    /// A builder seeded with the paper's calibration.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::date2012()
    }

    /// Wraps an existing controller/model pair with the default
    /// ([`WearBucketing::Exact`]) memoization policy.
    pub fn new(ctrl: MemoryController, model: SubsystemModel) -> Self {
        Self::with_bucketing(ctrl, model, WearBucketing::default())
    }

    /// Wraps an existing controller/model pair with an explicit
    /// memoization policy.
    pub fn with_bucketing(
        ctrl: MemoryController,
        model: SubsystemModel,
        bucketing: WearBucketing,
    ) -> Self {
        StorageEngine {
            engine_id: NEXT_ENGINE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            ctrl,
            model,
            services: Vec::new(),
            bucketing,
            scrub: ScrubPolicy::disabled(),
            disturb_epoch: 0,
            next_id: 0,
            last_batch: BatchReport::default(),
            sched: SchedPolicy::default(),
            clock_s: 0.0,
            submit_seq: 0,
            events: EventQueue::default(),
            last_flows: Vec::new(),
            fault: FaultInjector::new(FaultPlan::disabled()),
        }
    }

    fn handle_for(&self, index: usize) -> ServiceHandle {
        ServiceHandle {
            engine: self.engine_id,
            index: index as u32,
        }
    }

    /// Registers a service region and returns its handle.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overlap`] (as [`MlcxError::Service`]) when the
    /// block range collides with an existing region.
    pub fn register_service(
        &mut self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
    ) -> Result<ServiceHandle, MlcxError> {
        self.register_service_with_qos(name, objective, blocks, QosSpec::default())
    }

    /// [`StorageEngine::register_service`] with an explicit QoS
    /// contract: a weighted-fair share, a relative deadline and a
    /// bounded submission-queue depth.
    ///
    /// # Errors
    ///
    /// As for [`StorageEngine::register_service`].
    pub fn register_service_with_qos(
        &mut self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
        qos: QosSpec,
    ) -> Result<ServiceHandle, MlcxError> {
        for existing in &self.services {
            if blocks.start < existing.region.blocks.end
                && existing.region.blocks.start < blocks.end
            {
                return Err(ServiceError::Overlap {
                    existing: existing.region.name.clone(),
                    incoming: name.to_string(),
                }
                .into());
            }
        }
        let handle = self.handle_for(self.services.len());
        let dies = self.ctrl.config().geometry.topology.total_dies();
        self.services.push(ServiceState {
            region: ServiceRegion {
                name: name.to_string(),
                objective,
                blocks,
            },
            stats: ServiceStats::default(),
            qos,
            vtime_s: 0.0,
            queue: VecDeque::new(),
            op_slots: vec![None; dies],
        });
        Ok(handle)
    }

    /// The QoS contract a service was registered with.
    ///
    /// # Errors
    ///
    /// [`MlcxError::UnknownHandle`] for foreign handles.
    pub fn qos(&self, handle: ServiceHandle) -> Result<QosSpec, MlcxError> {
        self.state(handle).map(|s| s.qos)
    }

    /// Looks a service up by name.
    pub fn service(&self, name: &str) -> Option<ServiceHandle> {
        self.services
            .iter()
            .position(|s| s.region.name == name)
            .map(|i| self.handle_for(i))
    }

    /// The region a handle is bound to.
    ///
    /// # Errors
    ///
    /// [`MlcxError::UnknownHandle`] for foreign handles.
    pub fn region(&self, handle: ServiceHandle) -> Result<&ServiceRegion, MlcxError> {
        self.state(handle).map(|s| &s.region)
    }

    /// All registered regions, in registration (handle) order.
    pub fn regions(&self) -> impl Iterator<Item = &ServiceRegion> {
        self.services.iter().map(|s| &s.region)
    }

    /// Traffic counters of a service.
    ///
    /// # Errors
    ///
    /// [`MlcxError::UnknownHandle`] for foreign handles.
    pub fn stats(&self, handle: ServiceHandle) -> Result<ServiceStats, MlcxError> {
        self.state(handle).map(|s| s.stats)
    }

    /// The wrapped controller (wear inspection etc.).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable controller access (aging blocks in experiments).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    /// The cross-layer model driving configuration decisions.
    pub fn model(&self) -> &SubsystemModel {
        &self.model
    }

    /// The scrub/read-reclaim policy the engine was built with.
    pub fn scrub_policy(&self) -> &ScrubPolicy {
        &self.scrub
    }

    /// The fault-injection schedule the engine rolls per host write.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.fault.plan()
    }

    /// Lifetime count of programs the [`FaultPlan`] has interrupted
    /// (across every batch, unlike the per-drain
    /// [`BatchReport::injected_partial_programs`]).
    pub fn injected_faults(&self) -> u64 {
        self.fault.injected()
    }

    /// The read-retry policy the controller applies on uncorrectable
    /// reads.
    pub fn retry_policy(&self) -> &mlcx_controller::retry::RetryPolicy {
        self.ctrl.retry_policy()
    }

    /// Advances the device wall clock — the retention time base every
    /// stored page ages against — by `hours`.
    ///
    /// When the retention mechanism is actually enabled this also
    /// invalidates the memoized operating points
    /// ([`StorageEngine::invalidate_operating_points`]): the
    /// `(service, die, wear-bucket)` memo key cannot see RBER that grew
    /// without a P/E cycle, and derivation *does* consume the current
    /// disturb state (the ECC schedule is solved for endurance plus the
    /// region's worst disturb RBER), so a point cached before the jump
    /// genuinely understates the error rate until it is re-derived.
    /// Read-disturb alone does not gate here — a wall-clock jump
    /// changes no per-read term. With a retention-free model
    /// (including the default
    /// [`DisturbModel::disabled`](mlcx_nand::disturb::DisturbModel::disabled))
    /// time has no RBER effect and the cache — and every counter
    /// downstream of it — is left untouched, keeping a clocked run
    /// bit-identical to an unclocked one.
    ///
    /// # Panics
    ///
    /// Panics on negative `hours` (time flows forward).
    pub fn advance_hours(&mut self, hours: f64) {
        self.ctrl.device_mut().advance_time_hours(hours);
        if hours > 0.0 && self.ctrl.device().disturb_model().retention_enabled() {
            self.invalidate_operating_points();
        }
    }

    /// The device wall clock, hours since construction.
    pub fn now_hours(&self) -> f64 {
        self.ctrl.device().now_hours()
    }

    /// Drops every memoized operating point by bumping the disturb
    /// epoch: the next command per `(service, die)` re-derives against
    /// the current state. This is the invalidation hook for
    /// disturb-driven RBER growth the wear-bucket key cannot express —
    /// [`StorageEngine::advance_hours`] calls it on retention jumps, and
    /// scrub orchestrators may call it after heavy read-disturb
    /// accumulation.
    pub fn invalidate_operating_points(&mut self) {
        self.disturb_epoch += 1;
    }

    /// Commands enqueued but not yet polled.
    pub fn pending(&self) -> usize {
        self.services.iter().map(|s| s.queue.len()).sum()
    }

    /// Accounting of the most recent dispatch (a
    /// [`CompletionQueue::drain`] or the first
    /// [`CompletionQueue::try_complete`] after new submissions).
    pub fn last_batch(&self) -> &BatchReport {
        &self.last_batch
    }

    /// `(service index, flow latency seconds)` of every completion in
    /// the most recent dispatch — the per-tenant samples behind the
    /// aggregate [`BatchReport`] flow percentiles. Order follows the
    /// completion events.
    pub fn last_batch_flows(&self) -> &[(u32, f64)] {
        &self.last_flows
    }

    /// The cross-service dispatch policy the engine runs.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched
    }

    /// The engine's virtual clock, absolute seconds. Advances as
    /// completion events are delivered.
    pub fn now_s(&self) -> f64 {
        self.clock_s
    }

    /// Completions dispatched but not yet delivered through
    /// [`CompletionQueue::try_complete`].
    pub fn completions_pending(&self) -> usize {
        self.events.len()
    }

    fn state(&self, handle: ServiceHandle) -> Result<&ServiceState, MlcxError> {
        if handle.engine != self.engine_id {
            return Err(MlcxError::UnknownHandle {
                handle: handle.index,
            });
        }
        self.services
            .get(handle.index as usize)
            .ok_or(MlcxError::UnknownHandle {
                handle: handle.index,
            })
    }

    /// Validates a command against the service directory and geometry.
    fn validate(&self, cmd: &Command) -> Result<(), MlcxError> {
        let state = self.state(cmd.service())?;
        let region = &state.region;
        let check_block = |block: usize| -> Result<(), MlcxError> {
            if !region.blocks.contains(&block) {
                return Err(ServiceError::OutOfRegion {
                    name: region.name.clone(),
                    block,
                }
                .into());
            }
            Ok(())
        };
        match cmd {
            Command::Read { block, .. }
            | Command::Erase { block, .. }
            | Command::ScrubErase { block, .. }
            | Command::Trim { block, .. } => check_block(*block),
            Command::Relocate { from, to, .. } => {
                check_block(from.0)?;
                check_block(to.0)
            }
            Command::Write { block, data, .. } => {
                check_block(*block)?;
                let expected = self.ctrl.config().geometry.page_bytes;
                if data.len() != expected {
                    return Err(MlcxError::PageSize {
                        expected,
                        actual: data.len(),
                    });
                }
                Ok(())
            }
            Command::Configure { .. } => Ok(()),
        }
    }

    /// The typed submission-queue view — the primary host surface for
    /// enqueueing work (see [`SubmissionQueue`]).
    pub fn sq(&mut self) -> SubmissionQueue<'_> {
        SubmissionQueue { engine: self }
    }

    /// The typed completion-queue view — the primary host surface for
    /// retrieving results (see [`CompletionQueue`]).
    pub fn cq(&mut self) -> CompletionQueue<'_> {
        CompletionQueue { engine: self }
    }

    /// Enqueues a batch of commands onto their services' submission
    /// queues, returning one ticket per command (in order).
    ///
    /// # Errors
    ///
    /// As for [`SubmissionQueue::submit`].
    #[deprecated(
        note = "use `engine.sq().submit(..)` — the typed SubmissionQueue/CompletionQueue \
                pair is the primary host surface (see the migration table in EXPERIMENTS.md)"
    )]
    pub fn submit(&mut self, commands: &[Command]) -> Result<Vec<CmdId>, MlcxError> {
        self.submit_at_impl(commands.to_vec(), self.clock_s)
    }

    /// [`StorageEngine::submit`], taking ownership of the commands.
    ///
    /// # Errors
    ///
    /// As for [`SubmissionQueue::submit_owned`].
    #[deprecated(
        note = "use `engine.sq().submit_owned(..)` — the typed SubmissionQueue/CompletionQueue \
                pair is the primary host surface (see the migration table in EXPERIMENTS.md)"
    )]
    pub fn submit_owned(&mut self, commands: Vec<Command>) -> Result<Vec<CmdId>, MlcxError> {
        self.submit_at_impl(commands, self.clock_s)
    }

    /// Dispatches all queued work and returns every completion, in
    /// completion-event order.
    #[deprecated(
        note = "use `engine.cq().drain()` (or `try_complete()` for event-at-a-time delivery) — \
                see the migration table in EXPERIMENTS.md"
    )]
    pub fn poll(&mut self) -> Vec<Completion> {
        self.drain_impl()
    }

    /// Shared submission path: validate everything, enforce queue
    /// depths, then stamp arrivals and enqueue.
    fn submit_at_impl(
        &mut self,
        commands: Vec<Command>,
        at_s: f64,
    ) -> Result<Vec<CmdId>, MlcxError> {
        for cmd in &commands {
            self.validate(cmd)?;
        }
        // Backpressure, checked atomically with validation: nothing is
        // enqueued when any service's depth bound would be crossed.
        let mut incoming = vec![0usize; self.services.len()];
        for cmd in &commands {
            incoming[cmd.service().index as usize] += 1;
        }
        for (idx, extra) in incoming.iter().enumerate() {
            let state = &self.services[idx];
            if *extra > 0 && state.queue.len() + extra > state.qos.depth {
                return Err(MlcxError::QueueFull {
                    service: state.region.name.clone(),
                    depth: state.qos.depth,
                });
            }
        }
        let arrival_s = self.clock_s.max(at_s);
        let mut ids = Vec::with_capacity(commands.len());
        for cmd in commands {
            let id = CmdId(self.next_id);
            self.next_id += 1;
            let seq = self.submit_seq;
            self.submit_seq += 1;
            let idx = cmd.service().index as usize;
            self.services[idx].queue.push_back(QueuedCmd {
                id,
                cmd,
                arrival_s,
                seq,
            });
            ids.push(id);
        }
        Ok(ids)
    }

    /// The backlogged service the dispatch policy picks next, if any.
    fn next_dispatch(&self) -> Option<usize> {
        match self.sched {
            // Historical order: drain each service to completion before
            // the next (registration order) — always the lowest
            // backlogged index.
            SchedPolicy::ServiceMajor => self.services.iter().position(|s| !s.queue.is_empty()),
            // Global host submission order across services.
            SchedPolicy::FifoArrival => self
                .services
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.queue.front().map(|q| (q.seq, i)))
                .min()
                .map(|(_, i)| i),
            // Least accumulated device time per unit weight; ties to
            // the lowest index.
            SchedPolicy::WeightedFair => {
                let mut best: Option<(f64, usize)> = None;
                for (i, s) in self.services.iter().enumerate() {
                    if s.queue.is_empty() {
                        continue;
                    }
                    let key = s.vtime_s / s.qos.weight.max(f64::MIN_POSITIVE);
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, i));
                    }
                }
                best.map(|(_, i)| i)
            }
            // Earliest absolute deadline of the head-of-queue command;
            // ties to submission order.
            SchedPolicy::Deadline => {
                let mut best: Option<(f64, u64, usize)> = None;
                for (i, s) in self.services.iter().enumerate() {
                    let Some(front) = s.queue.front() else {
                        continue;
                    };
                    let due = front.arrival_s + s.qos.deadline_s;
                    if best.is_none_or(|(d, seq, _)| (due, front.seq) < (d, seq)) {
                        best = Some((due, front.seq, i));
                    }
                }
                best.map(|(_, _, i)| i)
            }
        }
    }

    /// Dispatches every queued command through the controller datapath
    /// in [`SchedPolicy`] order, turning each into a completion event
    /// keyed by its merged channel/die issue window. Fills
    /// [`StorageEngine::last_batch`] (including the flow-latency
    /// percentiles) for the whole dispatch.
    fn dispatch_all(&mut self) {
        self.last_batch = BatchReport::default();
        self.last_flows.clear();
        self.ctrl.scheduler_mut().begin_batch();
        let batch_start_s = self.clock_s;
        // The completion frontier: a command that touches no device
        // resource (trim, configure, failed validation) completes here
        // — never earlier than anything dispatched before it.
        let mut frontier_s = batch_start_s;
        let mut dispatch_seq = 0u64;
        let mut flows: Vec<f64> = Vec::new();
        while let Some(idx) = self.next_dispatch() {
            // `next_dispatch` only returns backlogged services; an empty
            // queue here would be a scheduler bookkeeping bug. Stop
            // dispatching rather than panic mid-batch.
            let Some(queued) = self.services[idx].queue.pop_front() else {
                debug_assert!(false, "next_dispatch returned an empty service");
                break;
            };
            let service = self.handle_for(idx);
            self.ctrl.scheduler_mut().begin_command(queued.arrival_s);
            let result = self.execute_validated(idx, queued.cmd);
            self.last_batch.commands += 1;
            match &result {
                Ok(_) => self.last_batch.succeeded += 1,
                Err(_) => self.last_batch.failed += 1,
            }
            let (start_s, end_s) = match self.ctrl.scheduler().command_window() {
                Some(w) => (w.start_s, w.end_s),
                None => (frontier_s, frontier_s),
            };
            frontier_s = frontier_s.max(end_s);
            self.services[idx].vtime_s += end_s - start_s;
            let flow_s = (end_s - queued.arrival_s).max(0.0);
            flows.push(flow_s);
            self.last_flows.push((idx as u32, flow_s));
            if flow_s > self.services[idx].qos.deadline_s {
                self.last_batch.deadline_misses += 1;
            }
            self.events.push(CompletionEvent {
                end_s,
                seq: dispatch_seq,
                completion: Completion {
                    id: queued.id,
                    service,
                    result,
                    arrival_s: queued.arrival_s,
                    start_s,
                    end_s,
                },
            });
            dispatch_seq += 1;
        }
        // Close the dispatch's timing window: the channel scheduler has
        // overlapped the operations across channels/dies, and its
        // makespan is the modeled parallel latency.
        let scheduler = self.ctrl.scheduler();
        self.last_batch.parallel_latency_s = scheduler.batch_makespan_s();
        self.last_batch.channel_busy_s = scheduler.batch_channel_busy_s();
        self.last_batch.channels = scheduler.topology().channels;
        flows.sort_by(|a, b| a.total_cmp(b));
        self.last_batch.flow_p50_s = nearest_rank(&flows, 0.50);
        self.last_batch.flow_p99_s = nearest_rank(&flows, 0.99);
        self.last_batch.flow_p999_s = nearest_rank(&flows, 0.999);
    }

    /// Delivers the earliest pending completion event, dispatching
    /// queued submissions first if none are in flight. Advances the
    /// virtual clock to the event's end time. `None` when the engine is
    /// fully idle.
    fn try_complete_impl(&mut self) -> Option<Completion> {
        if self.events.is_empty() && self.pending() > 0 {
            self.dispatch_all();
        }
        let event = self.events.pop()?;
        self.clock_s = self.clock_s.max(event.end_s);
        Some(event.completion)
    }

    /// Dispatches all queued work and delivers every pending event, in
    /// completion order.
    fn drain_impl(&mut self) -> Vec<Completion> {
        if self.pending() > 0 {
            self.dispatch_all();
        }
        let mut out = Vec::with_capacity(self.events.len());
        while let Some(c) = self.try_complete_impl() {
            out.push(c);
        }
        out
    }

    /// Validates and executes one command immediately, bypassing the
    /// queues — the synchronous convenience path (and, with
    /// [`WearBucketing::PerPage`], the substrate the retired
    /// `ServicedStore` shim ran on). Does not touch
    /// [`StorageEngine::last_batch`] accounting.
    ///
    /// # Errors
    ///
    /// Validation and datapath errors, as for submit + poll.
    pub fn execute(&mut self, cmd: Command) -> Result<CommandOutput, MlcxError> {
        self.validate(&cmd)?;
        let idx = cmd.service().index as usize;
        let mut saved = std::mem::take(&mut self.last_batch);
        let result = self.execute_validated(idx, cmd);
        std::mem::swap(&mut self.last_batch, &mut saved);
        result
    }

    /// The worst additive disturb RBER across the slice of a service's
    /// region living on `die` — what point derivation adds on top of
    /// the endurance curve so freshly scheduled writes keep their UBER
    /// margin on disturbed neighbours. 0.0 (and O(1)) under a disabled
    /// model, so the historical derivations are untouched.
    fn region_disturb_rber(&self, idx: usize, die: usize) -> f64 {
        if !self.ctrl.device().disturb_model().is_enabled() {
            return 0.0;
        }
        let region = &self.services[idx].region.blocks;
        let die_blocks = self.ctrl.config().geometry.die_blocks(die);
        let lo = region.start.max(die_blocks.start);
        let hi = region.end.min(die_blocks.end);
        // Effective (offset-aware) figures: a block whose learned read
        // offset tracks its Vth shift exposes the recovered RBER to the
        // derivation, not the nominal-reference one. Identical to the
        // device's raw accessor with retry off or nothing learned.
        (lo..hi)
            .map(|b| self.ctrl.block_effective_disturb_rber(b).unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// The operating point a service runs on `die` at a wear level,
    /// memoized per `(service, die, wear bucket)` under the engine's
    /// [`WearBucketing`] policy. Derivation solves the ECC schedule for
    /// the endurance RBER *plus* the region-on-die's current worst
    /// disturb RBER ([`SubsystemModel::configure_with_extra_rber`]);
    /// the disturb epoch in the memo slot governs how stale that
    /// disturb snapshot may get before a re-derivation is forced.
    fn operating_point(&mut self, idx: usize, die: usize, wear: u64) -> OperatingPoint {
        let objective = self.services[idx].region.objective;
        if self.bucketing == WearBucketing::PerPage {
            self.last_batch.op_cache_misses += 1;
            let extra = self.region_disturb_rber(idx, die);
            return self.model.configure_with_extra_rber(objective, wear, extra);
        }
        let (key, derive_at) = self.bucketing.bucket(wear);
        if let Some((cached_key, epoch, op)) = self.services[idx].op_slots[die] {
            if cached_key == key && epoch == self.disturb_epoch {
                self.last_batch.op_cache_hits += 1;
                return op;
            }
        }
        self.last_batch.op_cache_misses += 1;
        let extra = self.region_disturb_rber(idx, die);
        let op = self
            .model
            .configure_with_extra_rber(objective, derive_at, extra);
        self.services[idx].op_slots[die] = Some((key, self.disturb_epoch, op));
        op
    }

    fn execute_validated(&mut self, idx: usize, cmd: Command) -> Result<CommandOutput, MlcxError> {
        match cmd {
            Command::Write {
                block, page, data, ..
            } => {
                let wear = self.ctrl.device().block_cycles(block)?.max(1);
                let die = self.ctrl.config().geometry.die_of_block(block);
                let op = self.operating_point(idx, die, wear);
                let before = self.ctrl.regs().commands_applied();
                self.ctrl.apply_point(op.algorithm, op.correction)?;
                self.last_batch.knob_writes += self.ctrl.regs().commands_applied() - before;
                if let Some(fraction) = self.fault.next_program() {
                    self.ctrl.device_mut().arm_partial_program(fraction);
                }
                let report = self.ctrl.write_page(block, page, &data)?;
                if report.injected_partial {
                    self.last_batch.injected_partial_programs += 1;
                }
                self.last_batch.absorb(report.latency_s, report.energy_j);
                self.last_batch.write_latency_s += report.latency_s;
                self.last_batch.bytes_written += data.len();
                self.services[idx].stats.pages_written += 1;
                Ok(CommandOutput::Write(report))
            }
            Command::Read { block, page, .. } => {
                let report = self.ctrl.read_page(block, page)?;
                self.last_batch.absorb(report.latency_s, report.energy_j);
                self.last_batch.read_latency_s += report.latency_s;
                self.last_batch.bytes_read += report.data.len();
                if report.senses > 1 {
                    self.last_batch.retry_reads += 1;
                    self.last_batch.retry_senses += u64::from(report.senses - 1);
                    self.last_batch.retry_latency_s += report.retry_latency_s;
                    if !report.outcome.is_success() {
                        self.last_batch.retry_exhausted += 1;
                    }
                }
                if report.interference_rber > 0.0 {
                    self.last_batch.interference_reads += 1;
                }
                let corrected = report.outcome.corrected_bits() as u64;
                self.last_batch.corrected_bits += corrected;
                let stats = &mut self.services[idx].stats;
                stats.pages_read += 1;
                stats.corrected_bits += corrected;
                Ok(CommandOutput::Read(report))
            }
            Command::Erase { block, .. } => {
                let report = self.ctrl.erase_block(block)?;
                self.last_batch.absorb(report.duration_s, report.energy_j);
                Ok(CommandOutput::Erase {
                    duration_s: report.duration_s,
                    energy_j: report.energy_j,
                })
            }
            Command::Trim { block, page, .. } => {
                let was_mapped = self.ctrl.trim_page(block, page);
                Ok(CommandOutput::Trim { was_mapped })
            }
            Command::Configure { objective, .. } => {
                let previous = self.services[idx].region.objective;
                self.services[idx].region.objective = objective;
                // The cached points were derived under the old objective.
                for slot in &mut self.services[idx].op_slots {
                    *slot = None;
                }
                Ok(CommandOutput::Configure { previous })
            }
            Command::Relocate { from, to, .. } => {
                let read = self.ctrl.read_page(from.0, from.1)?;
                self.last_batch.absorb(read.latency_s, read.energy_j);
                if read.senses > 1 {
                    self.last_batch.retry_reads += 1;
                    self.last_batch.retry_senses += u64::from(read.senses - 1);
                    self.last_batch.retry_latency_s += read.retry_latency_s;
                    if !read.outcome.is_success() {
                        self.last_batch.retry_exhausted += 1;
                    }
                }
                let corrected = read.outcome.corrected_bits();
                self.last_batch.corrected_bits += corrected as u64;
                let wear = self.ctrl.device().block_cycles(to.0)?.max(1);
                let die = self.ctrl.config().geometry.die_of_block(to.0);
                let op = self.operating_point(idx, die, wear);
                let before = self.ctrl.regs().commands_applied();
                self.ctrl.apply_point(op.algorithm, op.correction)?;
                self.last_batch.knob_writes += self.ctrl.regs().commands_applied() - before;
                let write = self.ctrl.write_page(to.0, to.1, &read.data)?;
                self.last_batch.absorb(write.latency_s, write.energy_j);
                self.last_batch.scrub_relocations += 1;
                self.last_batch.scrub_latency_s += read.latency_s + write.latency_s;
                Ok(CommandOutput::Relocate {
                    corrected_bits: corrected,
                    read_ok: read.outcome.is_success(),
                    retry_senses: read.senses.saturating_sub(1),
                    latency_s: read.latency_s + write.latency_s,
                    energy_j: read.energy_j + write.energy_j,
                    t_used: write.t_used,
                })
            }
            Command::ScrubErase { block, .. } => {
                let report = self.ctrl.erase_block(block)?;
                self.last_batch.absorb(report.duration_s, report.energy_j);
                self.last_batch.scrub_erases += 1;
                self.last_batch.scrub_latency_s += report.duration_s;
                Ok(CommandOutput::Erase {
                    duration_s: report.duration_s,
                    energy_j: report.energy_j,
                })
            }
        }
    }
}

impl fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StorageEngine")
            .field("services", &self.services.len())
            .field("pending", &self.pending())
            .field("bucketing", &self.bucketing)
            .field(
                "cached_points",
                &self
                    .services
                    .iter()
                    .map(|s| s.op_slots.iter().filter(|slot| slot.is_some()).count())
                    .sum::<usize>(),
            )
            .finish()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in 0..=1).
/// Zero for an empty slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = ((q * n as f64).ceil() as usize).max(1).min(n);
    sorted[rank - 1]
}

/// The typed host submission surface of a [`StorageEngine`].
///
/// Obtained from [`StorageEngine::sq`]; submissions validate atomically,
/// respect each service's bounded queue depth
/// ([`QosSpec::depth`](crate::event::QosSpec::depth) →
/// [`MlcxError::QueueFull`]) and stamp every command with its arrival
/// time on the engine's virtual clock.
#[derive(Debug)]
pub struct SubmissionQueue<'a> {
    engine: &'a mut StorageEngine,
}

impl SubmissionQueue<'_> {
    /// Enqueues a batch of commands, returning one ticket per command
    /// (in order). Arrivals are stamped at the engine's current virtual
    /// time ([`StorageEngine::now_s`]).
    ///
    /// Submission is atomic: every command is validated and every
    /// service's queue depth is checked first; a rejected command
    /// leaves no part of the batch enqueued.
    ///
    /// # Errors
    ///
    /// [`MlcxError::UnknownHandle`], [`MlcxError::Service`]
    /// (out-of-region targets) or [`MlcxError::PageSize`] from
    /// validation; [`MlcxError::QueueFull`] when a service's bounded
    /// depth would be crossed (drain completions and resubmit).
    pub fn submit(&mut self, commands: &[Command]) -> Result<Vec<CmdId>, MlcxError> {
        let at_s = self.engine.clock_s;
        self.engine.submit_at_impl(commands.to_vec(), at_s)
    }

    /// [`SubmissionQueue::submit`], taking ownership of the commands —
    /// write payloads are moved into the queue instead of cloned.
    ///
    /// # Errors
    ///
    /// As for [`SubmissionQueue::submit`]; on error the commands are
    /// dropped without being enqueued.
    pub fn submit_owned(&mut self, commands: Vec<Command>) -> Result<Vec<CmdId>, MlcxError> {
        let at_s = self.engine.clock_s;
        self.engine.submit_at_impl(commands, at_s)
    }

    /// [`SubmissionQueue::submit_owned`] with an explicit arrival time
    /// on the virtual clock. Arrivals never move backwards: `at_s`
    /// earlier than the engine's current virtual time is clamped to
    /// *now*. A future arrival floors the commands' issue windows — the
    /// channel scheduler will not start them earlier.
    ///
    /// # Errors
    ///
    /// As for [`SubmissionQueue::submit_owned`].
    pub fn submit_at(
        &mut self,
        commands: Vec<Command>,
        at_s: f64,
    ) -> Result<Vec<CmdId>, MlcxError> {
        self.engine.submit_at_impl(commands, at_s)
    }

    /// Commands currently queued across all services (excludes
    /// completions already in flight).
    pub fn depth(&self) -> usize {
        self.engine.pending()
    }
}

/// The typed host completion surface of a [`StorageEngine`].
///
/// Obtained from [`StorageEngine::cq`]; completions surface in
/// *completion-time* order on the virtual clock — out of order with
/// respect to submission whenever dies overlap — and each delivery
/// advances [`StorageEngine::now_s`] to the completion's end time.
#[derive(Debug)]
pub struct CompletionQueue<'a> {
    engine: &'a mut StorageEngine,
}

impl CompletionQueue<'_> {
    /// Delivers the earliest pending completion, dispatching queued
    /// submissions first if none are in flight. `None` when the engine
    /// is fully idle (nothing queued, nothing in flight).
    pub fn try_complete(&mut self) -> Option<Completion> {
        self.engine.try_complete_impl()
    }

    /// Dispatches all queued work and delivers every pending
    /// completion, in completion order.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.engine.drain_impl()
    }

    /// Completion events already scheduled but not yet delivered.
    pub fn depth(&self) -> usize {
        self.engine.completions_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_nand::ProgramAlgorithm;

    fn engine() -> StorageEngine {
        EngineBuilder::date2012().seed(77).build().unwrap()
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; 4096]
    }

    #[test]
    fn sq_cq_round_trip_with_accounting() {
        let mut e = engine();
        let media = e
            .register_service("media", Objective::MaxReadThroughput, 0..8)
            .unwrap();
        e.controller_mut().age_block(0, 1_000_000).unwrap();

        let mut cmds = vec![Command::erase(media, 0)];
        for p in 0..4 {
            cmds.push(Command::write(media, 0, p, page(p as u8)));
        }
        for p in 0..4 {
            cmds.push(Command::read(media, 0, p));
        }
        let ids = e.sq().submit(&cmds).unwrap();
        assert_eq!(ids.len(), 9);
        assert_eq!(e.pending(), 9);

        let completions = e.cq().drain();
        assert_eq!(e.pending(), 0);
        assert_eq!(completions.len(), 9);
        for (c, id) in completions.iter().zip(&ids) {
            assert_eq!(c.id, *id);
            assert!(c.result.is_ok(), "{:?}", c.result);
            // Event timestamps are coherent on the virtual clock.
            assert!(c.arrival_s <= c.start_s && c.start_s <= c.end_s);
            assert!(c.flow_s() >= 0.0);
        }
        // Single die: completion order is dispatch order, end times are
        // monotone, and the drain advanced the clock to the last end.
        assert!(completions.windows(2).all(|w| w[0].end_s <= w[1].end_s));
        assert!((e.now_s() - completions.last().unwrap().end_s).abs() < 1e-15);
        // Flow percentiles cover the batch.
        let b = e.last_batch();
        assert!(b.flow_p50_s > 0.0);
        assert!(b.flow_p50_s <= b.flow_p99_s && b.flow_p99_s <= b.flow_p999_s);
        assert_eq!(b.deadline_misses, 0);
        assert_eq!(e.last_batch_flows().len(), 9);
        for (p, c) in completions[5..].iter().enumerate() {
            match c.result.as_ref().unwrap() {
                CommandOutput::Read(r) => {
                    assert!(r.outcome.is_success());
                    assert_eq!(r.data, page(p as u8));
                }
                other => panic!("expected read output, got {other:?}"),
            }
        }

        let batch = e.last_batch();
        assert_eq!(batch.commands, 9);
        assert_eq!(batch.succeeded, 9);
        assert_eq!(batch.bytes_written, 4 * 4096);
        assert_eq!(batch.bytes_read, 4 * 4096);
        assert!(batch.device_latency_s > 0.0);
        assert!(batch.energy_j > 0.0);
        assert!(batch.read_mbps() > 0.0 && batch.write_mbps() > 0.0);
        // EOL block: the DV schedule must have corrected raw errors.
        assert!(batch.corrected_bits > 0);
        // 4 same-wear writes: one derivation, three cache hits.
        assert_eq!(batch.op_cache_misses, 1);
        assert_eq!(batch.op_cache_hits, 3);
        // One algorithm write + one capability write, never repeated.
        assert_eq!(batch.knob_writes, 2);
    }

    #[test]
    fn default_dispatch_is_service_major_in_fifo_order() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        let b = e.register_service("b", Objective::Baseline, 2..4).unwrap();
        // Host order alternates services; execution groups per service,
        // FIFO within each.
        let ids = e
            .sq()
            .submit(&[
                Command::erase(a, 0),
                Command::erase(b, 2),
                Command::erase(a, 1),
                Command::erase(b, 3),
            ])
            .unwrap();
        let completions = e.cq().drain();
        let services: Vec<u32> = completions.iter().map(|c| c.service.index()).collect();
        assert_eq!(services, vec![a.index(), a.index(), b.index(), b.index()]);
        let order: Vec<CmdId> = completions.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![ids[0], ids[2], ids[1], ids[3]]);
    }

    #[test]
    fn submission_is_atomic_on_invalid_command() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        let err = e
            .sq()
            .submit(&[Command::erase(a, 0), Command::erase(a, 99)])
            .unwrap_err();
        assert!(matches!(
            err,
            MlcxError::Service(ServiceError::OutOfRegion { .. })
        ));
        assert_eq!(e.pending(), 0, "no partial batch may be enqueued");

        let err = e
            .sq()
            .submit(&[Command::write(a, 0, 0, vec![0u8; 100])])
            .unwrap_err();
        assert!(matches!(
            err,
            MlcxError::PageSize {
                expected: 4096,
                actual: 100
            }
        ));

        let foreign = ServiceHandle {
            engine: u32::MAX,
            index: 42,
        };
        let err = e.sq().submit(&[Command::erase(foreign, 0)]).unwrap_err();
        assert!(matches!(err, MlcxError::UnknownHandle { handle: 42 }));
    }

    #[test]
    fn per_command_failures_complete_instead_of_aborting() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        // Reading an unwritten page fails; the following erase succeeds.
        e.sq()
            .submit(&[Command::read(a, 0, 0), Command::erase(a, 0)])
            .unwrap();
        let completions = e.cq().drain();
        assert!(matches!(
            completions[0].result,
            Err(MlcxError::Ctrl(
                mlcx_controller::CtrlError::UnknownPageConfig { .. }
            ))
        ));
        assert!(completions[1].result.is_ok());
        assert_eq!(e.last_batch().failed, 1);
        assert_eq!(e.last_batch().succeeded, 1);
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut e = engine();
        e.register_service("a", Objective::Baseline, 0..8).unwrap();
        let err = e
            .register_service("b", Objective::MinUber, 7..12)
            .unwrap_err();
        assert!(matches!(
            err,
            MlcxError::Service(ServiceError::Overlap { .. })
        ));
        // Adjacent is fine.
        e.register_service("c", Objective::MinUber, 8..12).unwrap();
        assert!(e.service("c").is_some());
        assert!(e.service("zzz").is_none());
    }

    #[test]
    fn trim_unmaps_and_configure_rebinds() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.sq()
            .submit(&[
                Command::erase(a, 0),
                Command::write(a, 0, 0, page(1)),
                Command::trim(a, 0, 0),
                Command::read(a, 0, 0),
                Command::trim(a, 0, 0),
                Command::configure(a, Objective::MinUber),
            ])
            .unwrap();
        let completions = e.cq().drain();
        assert_eq!(
            completions[2].result.as_ref().unwrap(),
            &CommandOutput::Trim { was_mapped: true }
        );
        assert!(
            completions[3].result.is_err(),
            "trimmed page must not read back"
        );
        assert_eq!(
            completions[4].result.as_ref().unwrap(),
            &CommandOutput::Trim { was_mapped: false }
        );
        assert_eq!(
            completions[5].result.as_ref().unwrap(),
            &CommandOutput::Configure {
                previous: Objective::Baseline
            }
        );
        assert_eq!(e.region(a).unwrap().objective, Objective::MinUber);
    }

    #[test]
    fn configure_invalidates_cached_points() {
        let mut e = engine();
        let a = e
            .register_service("a", Objective::MaxReadThroughput, 0..2)
            .unwrap();
        e.controller_mut().age_block(0, 1_000_000).unwrap();
        e.sq()
            .submit(&[Command::erase(a, 0), Command::write(a, 0, 0, page(0))])
            .unwrap();
        e.cq().drain();
        let relaxed = match e.execute(Command::read(a, 0, 0)).unwrap() {
            CommandOutput::Read(r) => r.t_used,
            _ => unreachable!(),
        };
        assert_eq!(relaxed, 14, "DV schedule at end of life");

        // Re-bind to min-UBER: new writes must pick up the SV schedule's
        // capability (65 at end of life) instead of the cached t = 14.
        e.sq()
            .submit(&[
                Command::configure(a, Objective::MinUber),
                Command::erase(a, 0),
                Command::write(a, 0, 0, page(0)),
            ])
            .unwrap();
        let completions = e.cq().drain();
        match completions[2].result.as_ref().unwrap() {
            CommandOutput::Write(w) => {
                assert_eq!(w.algorithm, ProgramAlgorithm::IsppDv);
                assert_eq!(w.t_used, 65);
            }
            other => panic!("expected write output, got {other:?}"),
        }
    }

    #[test]
    fn single_die_parallel_latency_equals_the_serial_sum() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..4).unwrap();
        let mut cmds = vec![Command::erase(a, 0)];
        for p in 0..4 {
            cmds.push(Command::write(a, 0, p, page(p as u8)));
        }
        for p in 0..4 {
            cmds.push(Command::read(a, 0, p));
        }
        e.sq().submit(&cmds).unwrap();
        e.cq().drain();
        let batch = *e.last_batch();
        assert_eq!(batch.channels, 1);
        assert!(
            (batch.parallel_latency_s - batch.device_latency_s).abs() < 1e-12,
            "1x1 topology cannot overlap: {} vs {}",
            batch.parallel_latency_s,
            batch.device_latency_s
        );
        assert!((batch.achieved_parallelism() - 1.0).abs() < 1e-9);
        assert!(batch.channel_utilization() > 0.0);
    }

    #[test]
    fn multi_channel_batches_overlap_and_memoize_per_die() {
        let mut config = mlcx_controller::ControllerConfig::date2012();
        config.geometry.topology = mlcx_nand::Topology::new(4, 1); // 16 blocks/die
        let mut e = EngineBuilder::date2012()
            .controller_config(config)
            .seed(9)
            .build()
            .unwrap();
        let svc = e
            .register_service("wide", Objective::Baseline, 0..64)
            .unwrap();
        // Skew one die to end of life: its writes need their own point.
        e.controller_mut().age_die(2, 1_000_000).unwrap();
        let mut cmds = Vec::new();
        for die in 0..4 {
            let block = die * 16;
            cmds.push(Command::erase(svc, block));
            for p in 0..4 {
                cmds.push(Command::write(svc, block, p, page(p as u8)));
            }
        }
        e.sq().submit(&cmds).unwrap();
        let completions = e.cq().drain();
        assert!(completions.iter().all(|c| c.result.is_ok()));
        let batch = *e.last_batch();
        assert_eq!(batch.channels, 4);
        assert!(
            batch.parallel_latency_s < 0.5 * batch.device_latency_s,
            "four channels must overlap: makespan {} vs serial {}",
            batch.parallel_latency_s,
            batch.device_latency_s
        );
        assert!(batch.achieved_parallelism() > 2.0);
        let u = batch.channel_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization = {u}");
        // The memo is keyed (service, die, wear-bucket): one derivation
        // per die (die 2's EOL point differs), hits for the rest.
        assert_eq!(batch.op_cache_misses, 4);
        assert_eq!(batch.op_cache_hits, 12);
    }

    #[test]
    fn relocate_and_scrub_erase_round_trip_with_accounting() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..4).unwrap();
        e.controller_mut().age_block(0, 1_000_000).unwrap();
        e.controller_mut().age_block(1, 1_000_000).unwrap();
        e.sq()
            .submit(&[
                Command::erase(a, 0),
                Command::erase(a, 1),
                Command::write(a, 0, 0, page(0x5A)),
            ])
            .unwrap();
        e.cq().drain();
        assert_eq!(e.last_batch().scrub_relocations, 0);
        assert_eq!(e.last_batch().scrub_erases, 0);
        assert_eq!(e.last_batch().scrub_latency_s, 0.0);

        // Relocate the EOL page to block 1, then scrub-erase block 0.
        e.sq()
            .submit(&[
                Command::relocate(a, (0, 0), (1, 0)),
                Command::scrub_erase(a, 0),
            ])
            .unwrap();
        let completions = e.cq().drain();
        match completions[0].result.as_ref().unwrap() {
            CommandOutput::Relocate {
                corrected_bits,
                read_ok,
                latency_s,
                energy_j,
                ..
            } => {
                assert!(*read_ok);
                assert!(*corrected_bits > 0, "EOL source must need correction");
                assert!(*latency_s > 0.0 && *energy_j > 0.0);
            }
            other => panic!("expected relocate output, got {other:?}"),
        }
        assert!(matches!(
            completions[1].result.as_ref().unwrap(),
            CommandOutput::Erase { .. }
        ));
        let batch = *e.last_batch();
        assert_eq!(batch.scrub_relocations, 1);
        assert_eq!(batch.scrub_erases, 1);
        assert!(batch.scrub_latency_s > 0.0);
        assert!(
            (batch.scrub_latency_s - batch.device_latency_s).abs() < 1e-12,
            "an all-maintenance batch is pure scrub time"
        );
        // Maintenance does not count as host payload.
        assert_eq!(batch.bytes_read, 0);
        assert_eq!(batch.bytes_written, 0);
        // The scrub erase reset the disturb accumulator end-to-end.
        assert_eq!(
            e.controller().device().block_reads_since_erase(0).unwrap(),
            0
        );
        // The relocated data reads back from the destination.
        match e.execute(Command::read(a, 1, 0)).unwrap() {
            CommandOutput::Read(r) => {
                assert!(r.outcome.is_success());
                assert_eq!(r.data, page(0x5A));
            }
            other => panic!("expected read output, got {other:?}"),
        }
        // The old slot's metadata is gone.
        assert!(e.execute(Command::read(a, 0, 0)).is_err());
    }

    #[test]
    fn advance_hours_invalidates_points_only_under_an_enabled_disturb_model() {
        use mlcx_nand::disturb::DisturbModel;
        // Disabled model: the clock moves, the memo does not.
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.sq()
            .submit(&[Command::erase(a, 0), Command::write(a, 0, 0, page(1))])
            .unwrap();
        e.cq().drain();
        assert_eq!(e.last_batch().op_cache_misses, 1);
        e.advance_hours(10_000.0);
        assert!((e.now_hours() - 10_000.0).abs() < 1e-9);
        e.sq().submit(&[Command::write(a, 0, 1, page(2))]).unwrap();
        e.cq().drain();
        assert_eq!(
            (e.last_batch().op_cache_hits, e.last_batch().op_cache_misses),
            (1, 0),
            "a disabled model must keep cached points valid across time"
        );

        // Enabled model: the same jump re-derives.
        let mut e = EngineBuilder::date2012()
            .seed(77)
            .disturb_model(DisturbModel::date2012())
            .build()
            .unwrap();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.sq()
            .submit(&[Command::erase(a, 0), Command::write(a, 0, 0, page(1))])
            .unwrap();
        e.cq().drain();
        e.advance_hours(10_000.0);
        e.sq().submit(&[Command::write(a, 0, 1, page(2))]).unwrap();
        e.cq().drain();
        assert_eq!(
            (e.last_batch().op_cache_hits, e.last_batch().op_cache_misses),
            (0, 1),
            "a retention jump must invalidate the memo"
        );
        // The explicit hook works too (scrub orchestrators call it
        // after read-disturb accumulation).
        e.invalidate_operating_points();
        e.sq().submit(&[Command::write(a, 0, 2, page(3))]).unwrap();
        e.cq().drain();
        assert_eq!(e.last_batch().op_cache_misses, 1);
    }

    #[test]
    fn derivation_solves_the_schedule_for_disturbed_rber() {
        use mlcx_nand::disturb::DisturbModel;
        // A wear-independent retention model at mid life: after the
        // clock jump, the invalidated memo must re-derive a *stronger*
        // capability — the schedule is solved for endurance + disturb,
        // not endurance alone.
        let mut e = EngineBuilder::date2012()
            .seed(5)
            .disturb_model(DisturbModel {
                retention_scale: 1e-4,
                retention_wear_exponent: 0.0,
                ..DisturbModel::disabled()
            })
            .build()
            .unwrap();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.controller_mut().age_block(0, 100_000).unwrap();
        e.sq()
            .submit(&[Command::erase(a, 0), Command::write(a, 0, 0, page(1))])
            .unwrap();
        let t_before = match e.cq().drain()[1].result.as_ref().unwrap() {
            CommandOutput::Write(w) => w.t_used,
            other => panic!("expected write, got {other:?}"),
        };
        e.advance_hours(10_000.0);
        e.sq().submit(&[Command::write(a, 0, 1, page(2))]).unwrap();
        let t_after = match e.cq().drain()[0].result.as_ref().unwrap() {
            CommandOutput::Write(w) => w.t_used,
            other => panic!("expected write, got {other:?}"),
        };
        assert!(
            t_after > t_before,
            "the disturbed schedule must strengthen: t {t_before} -> {t_after}"
        );
        // The model-side arithmetic agrees: extra rber of the aged
        // block raises the required capability at the same wear.
        let model = e.model();
        let extra = e.controller().device().block_disturb_rber(0).unwrap();
        assert!(extra > 0.0);
        let plain = model.configure(Objective::Baseline, 100_001);
        let disturbed = model.configure_with_extra_rber(Objective::Baseline, 100_001, extra);
        assert!(disturbed.correction > plain.correction);
        assert_eq!(disturbed.algorithm, plain.algorithm);
    }

    #[test]
    fn scrub_policy_rides_the_builder() {
        use mlcx_controller::ScrubPolicy;
        let e = engine();
        assert!(!e.scrub_policy().is_enabled());
        let e = EngineBuilder::date2012()
            .scrub_policy(ScrubPolicy::date2012())
            .build()
            .unwrap();
        assert!(e.scrub_policy().is_enabled());
        assert_eq!(
            e.scrub_policy().read_threshold,
            mlcx_nand::disturb::DisturbModel::SCRUB_READ_THRESHOLD
        );
    }

    #[test]
    fn retry_policy_rides_the_builder_and_counts_in_the_batch() {
        use mlcx_controller::retry::RetryPolicy;
        use mlcx_nand::disturb::DisturbModel;
        let e = engine();
        assert!(!e.retry_policy().is_enabled());

        // The controller unit tests pin the ladder mechanics; here the
        // batch layer: a parked page whose first sense fails must
        // surface retry counters in the BatchReport, and the recovered
        // read must complete successfully.
        let mut e = EngineBuilder::date2012()
            .disturb_model(DisturbModel {
                retention_scale: 2e-3,
                rber_per_step: 1e-3,
                ..DisturbModel::disabled()
            })
            .retry_policy(RetryPolicy::date2012())
            .seed(9)
            .build()
            .unwrap();
        assert!(e.retry_policy().is_enabled());
        let svc = e.register_service("kv", Objective::Baseline, 0..4).unwrap();
        let data = vec![0x3Cu8; 4096];
        // Age first: the retention wear term keys off the wear *at
        // program time*.
        e.controller_mut().age_block(0, 100_000).unwrap();
        e.sq()
            .submit(&[
                Command::erase(svc, 0),
                Command::write(svc, 0, 0, data.clone()),
            ])
            .unwrap();
        assert!(e.cq().drain().iter().all(|c| c.result.is_ok()));
        e.advance_hours(20_000.0);

        e.sq().submit(&[Command::read(svc, 0, 0)]).unwrap();
        let done = e.cq().drain();
        let Ok(CommandOutput::Read(r)) = &done[0].result else {
            panic!("read must complete");
        };
        assert!(r.outcome.is_success() && r.data == data);
        assert!(r.senses > 1);
        let batch = e.last_batch();
        assert_eq!(batch.retry_reads, 1);
        assert_eq!(batch.retry_senses, u64::from(r.senses - 1));
        assert_eq!(batch.retry_exhausted, 0);
        assert!(batch.retry_latency_s > 0.0);
        assert!(batch.read_latency_s >= batch.retry_latency_s);

        // The learned offset flows into derivation: the effective
        // region disturb RBER is now the recovered figure, so a point
        // derived after the retry sees less extra RBER than nominal.
        let learned = e.controller().read_offsets().get(0);
        assert_ne!(learned, 0);
        let eff = e.controller().block_effective_disturb_rber(0).unwrap();
        let nominal = e.controller().device().block_disturb_rber(0).unwrap();
        assert!(eff < nominal, "eff {eff:e} vs nominal {nominal:e}");

        // Steady state: same-seed single-sense read, no new counters.
        e.sq().submit(&[Command::read(svc, 0, 0)]).unwrap();
        assert!(e.cq().drain().iter().all(|c| c.result.is_ok()));
        let batch = e.last_batch();
        assert_eq!((batch.retry_reads, batch.retry_senses), (0, 0));
        assert_eq!(batch.retry_latency_s, 0.0);
    }

    #[test]
    fn builder_rejects_model_controller_mismatch() {
        let model = SubsystemModel::builder().tmax(100).build().unwrap();
        assert!(matches!(
            EngineBuilder::date2012().model(model).build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        let model = SubsystemModel::builder()
            .ecc_m(12)
            .tmax(40)
            .build()
            .unwrap();
        assert!(matches!(
            EngineBuilder::date2012().model(model).build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        let model = SubsystemModel::builder().k_bits(512 * 8).build().unwrap();
        assert!(matches!(
            EngineBuilder::date2012().model(model).build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn log2_bucketing_is_conservative_and_coarse() {
        let mut exact = StorageEngine::with_bucketing(
            MemoryController::new(ControllerConfig::date2012(), 1).unwrap(),
            SubsystemModel::date2012(),
            WearBucketing::Exact,
        );
        let mut log2 = StorageEngine::with_bucketing(
            MemoryController::new(ControllerConfig::date2012(), 1).unwrap(),
            SubsystemModel::date2012(),
            WearBucketing::Log2,
        );
        let he = exact
            .register_service("s", Objective::Baseline, 0..64)
            .unwrap();
        let hl = log2
            .register_service("s", Objective::Baseline, 0..64)
            .unwrap();
        for (engine, h) in [(&mut exact, he), (&mut log2, hl)] {
            // All three wear levels (plus the erase's own cycle) land in
            // the 512..=1023 power-of-two bucket.
            for (b, wear) in [(0usize, 600u64), (1, 700), (2, 800)] {
                engine.controller_mut().age_block(b, wear).unwrap();
                engine
                    .sq()
                    .submit(&[Command::erase(h, b), Command::write(h, b, 0, page(7))])
                    .unwrap();
            }
        }
        let ce: Vec<_> = exact.cq().drain();
        let cl: Vec<_> = log2.cq().drain();
        let t_of = |c: &Completion| match c.result.as_ref().unwrap() {
            CommandOutput::Write(w) => w.t_used,
            _ => panic!("expected write"),
        };
        for (a, b) in ce.iter().zip(&cl) {
            if matches!(a.result.as_ref().unwrap(), CommandOutput::Write(_)) {
                assert!(
                    t_of(b) >= t_of(a),
                    "log2 bucket must never weaken the capability"
                );
            }
        }
        // Three nearby wear levels: exact memoizes three points, log2
        // collapses them into one bucket.
        assert_eq!(exact.last_batch().op_cache_misses, 3);
        assert_eq!(log2.last_batch().op_cache_misses, 1);
        assert_eq!(log2.last_batch().op_cache_hits, 2);
    }

    #[test]
    fn bounded_depth_pushes_back_atomically() {
        let mut e = engine();
        let a = e
            .register_service_with_qos("a", Objective::Baseline, 0..2, QosSpec::default().depth(3))
            .unwrap();
        assert_eq!(e.qos(a).unwrap().depth, 3);
        e.sq()
            .submit(&[Command::erase(a, 0), Command::erase(a, 1)])
            .unwrap();
        // Two queued + two incoming crosses the depth-3 bound: the whole
        // batch bounces and nothing extra is enqueued.
        let err = e
            .sq()
            .submit(&[Command::erase(a, 0), Command::erase(a, 1)])
            .unwrap_err();
        assert!(
            matches!(err, MlcxError::QueueFull { ref service, depth: 3 } if service == "a"),
            "{err:?}"
        );
        assert_eq!(e.pending(), 2);
        // One more still fits exactly.
        e.sq().submit(&[Command::erase(a, 0)]).unwrap();
        assert_eq!(e.pending(), 3);
        // Draining frees the depth again.
        assert_eq!(e.cq().drain().len(), 3);
        e.sq()
            .submit(&[
                Command::erase(a, 0),
                Command::erase(a, 1),
                Command::erase(a, 0),
            ])
            .unwrap();
        assert_eq!(e.cq().drain().len(), 3);
    }

    #[test]
    fn try_complete_delivers_events_one_at_a_time() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.sq()
            .submit(&[Command::erase(a, 0), Command::write(a, 0, 0, page(1))])
            .unwrap();
        let first = e.cq().try_complete().expect("first event");
        assert_eq!(e.completions_pending(), 1);
        // The clock sits at the delivered event's end time.
        assert!((e.now_s() - first.end_s).abs() < 1e-15);
        let second = e.cq().try_complete().expect("second event");
        assert!(second.end_s >= first.end_s);
        assert!(e.cq().try_complete().is_none(), "engine is idle");
        // A later submission arrives at (and completes after) the
        // advanced clock.
        e.sq().submit(&[Command::read(a, 0, 0)]).unwrap();
        let third = e.cq().try_complete().unwrap();
        assert!((third.arrival_s - second.end_s).abs() < 1e-15);
        assert!(third.end_s > second.end_s);
    }

    #[test]
    fn submit_at_floors_the_issue_window() {
        let mut e = engine();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        e.sq().submit(&[Command::erase(a, 0)]).unwrap();
        e.cq().drain();
        let now = e.now_s();
        // A future arrival delays the start; a past one clamps to now.
        let future = now + 1.0;
        e.sq()
            .submit_at(vec![Command::write(a, 0, 0, page(1))], future)
            .unwrap();
        e.sq()
            .submit_at(vec![Command::write(a, 0, 1, page(2))], 0.0)
            .unwrap();
        let done = e.cq().drain();
        // The past-arrival command was dispatched second but could
        // start at the device frontier; the future-arrival one waited.
        let by_id: Vec<&Completion> = done.iter().collect();
        let fut = by_id.iter().find(|c| c.arrival_s == future).unwrap();
        let past = by_id.iter().find(|c| c.arrival_s == now).unwrap();
        assert!(fut.start_s >= future);
        assert!(past.arrival_s == now, "past arrival clamps to the clock");
    }

    #[test]
    fn fifo_arrival_interleaves_across_services() {
        let mut e = EngineBuilder::date2012()
            .seed(77)
            .sched_policy(SchedPolicy::FifoArrival)
            .build()
            .unwrap();
        let a = e.register_service("a", Objective::Baseline, 0..2).unwrap();
        let b = e.register_service("b", Objective::Baseline, 2..4).unwrap();
        let ids = e
            .sq()
            .submit(&[
                Command::erase(a, 0),
                Command::erase(b, 2),
                Command::erase(a, 1),
                Command::erase(b, 3),
            ])
            .unwrap();
        let order: Vec<CmdId> = e.cq().drain().iter().map(|c| c.id).collect();
        assert_eq!(order, ids, "FIFO keeps host submission order");
    }

    #[test]
    fn weighted_fair_favors_the_heavy_service() {
        let mut e = EngineBuilder::date2012()
            .seed(77)
            .sched_policy(SchedPolicy::WeightedFair)
            .build()
            .unwrap();
        let light = e
            .register_service_with_qos("light", Objective::Baseline, 0..2, QosSpec::weighted(1.0))
            .unwrap();
        let heavy = e
            .register_service_with_qos("heavy", Objective::Baseline, 2..4, QosSpec::weighted(4.0))
            .unwrap();
        // Submit light's work first: under service-major it would all
        // run before heavy's. Weighted-fair must interleave, giving
        // heavy ~4 dispatches per light one after the opening round.
        let mut cmds = Vec::new();
        for _ in 0..4 {
            cmds.push(Command::erase(light, 0));
        }
        for _ in 0..8 {
            cmds.push(Command::erase(heavy, 2));
        }
        e.sq().submit(&cmds).unwrap();
        let order: Vec<u32> = e.cq().drain().iter().map(|c| c.service.index()).collect();
        // Not service-major: heavy work must appear before light's last.
        let first_heavy = order.iter().position(|&s| s == heavy.index()).unwrap();
        let last_light = order.iter().rposition(|&s| s == light.index()).unwrap();
        assert!(
            first_heavy < last_light,
            "weighted-fair must interleave: {order:?}"
        );
        // In the first 5 dispatches, heavy (weight 4) gets the majority.
        let heavy_early = order[..5].iter().filter(|&&s| s == heavy.index()).count();
        assert!(heavy_early >= 3, "heavy must dominate early: {order:?}");
    }

    #[test]
    fn deadline_dispatch_runs_the_most_urgent_first() {
        let mut e = EngineBuilder::date2012()
            .seed(77)
            .sched_policy(SchedPolicy::Deadline)
            .build()
            .unwrap();
        let lax = e
            .register_service_with_qos(
                "lax",
                Objective::Baseline,
                0..2,
                QosSpec::with_deadline(10.0),
            )
            .unwrap();
        let urgent = e
            .register_service_with_qos(
                "urgent",
                Objective::Baseline,
                2..4,
                QosSpec::with_deadline(1e-4),
            )
            .unwrap();
        // Same arrivals: the tighter relative deadline must win even
        // though lax was submitted first.
        e.sq()
            .submit(&[
                Command::erase(lax, 0),
                Command::erase(lax, 1),
                Command::erase(urgent, 2),
                Command::erase(urgent, 3),
            ])
            .unwrap();
        let order: Vec<u32> = e.cq().drain().iter().map(|c| c.service.index()).collect();
        assert_eq!(
            order,
            vec![urgent.index(), urgent.index(), lax.index(), lax.index()]
        );
        // Erases take ~ms; a 100 us deadline is missed, the 10 s one is
        // not — and the misses are counted.
        assert_eq!(e.last_batch().deadline_misses, 2);
    }

    #[test]
    fn policy_bundle_configures_engine_and_scenario_knobs_alike() {
        let bundle = PolicyBundle::new()
            .retry(mlcx_controller::retry::RetryPolicy::date2012())
            .scrub(mlcx_controller::ScrubPolicy::date2012())
            .disturb(mlcx_nand::disturb::DisturbModel::date2012())
            .sched(SchedPolicy::WeightedFair);
        let e = EngineBuilder::date2012()
            .policies(bundle.clone())
            .build()
            .unwrap();
        assert!(e.retry_policy().is_enabled());
        assert!(e.scrub_policy().is_enabled());
        assert_eq!(e.sched_policy(), SchedPolicy::WeightedFair);
    }

    #[test]
    fn fault_plan_interrupts_host_programs_and_surfaces_in_batch_counters() {
        let build = |rate: f64| {
            EngineBuilder::date2012()
                .seed(77)
                .disturb_model(mlcx_nand::disturb::DisturbModel::date2012())
                .fault_plan(FaultPlan {
                    partial_program_rate: rate,
                    partial_program_fraction: 0.5,
                    seed: 11,
                })
                .build()
                .unwrap()
        };
        let run = |e: &mut StorageEngine| -> (BatchReport, BatchReport) {
            let svc = e
                .register_service("svc", Objective::Baseline, 0..8)
                .unwrap();
            let mut cmds = vec![Command::erase(svc, 0)];
            for p in 0..4 {
                cmds.push(Command::write(svc, 0, p, page(p as u8)));
            }
            e.sq().submit(&cmds).unwrap();
            e.cq().drain();
            let writes = *e.last_batch();
            let reads: Vec<Command> = (0..4).map(|p| Command::read(svc, 0, p)).collect();
            e.sq().submit(&reads).unwrap();
            e.cq().drain();
            (writes, *e.last_batch())
        };

        // Disabled plan: zero injections — but the neighbor-coupling
        // counter still sees the date2012 interference model (each
        // in-order program couples one event onto its lower neighbor,
        // so the last-written page alone reads interference-free).
        let mut quiet = build(0.0);
        let (w, r) = run(&mut quiet);
        assert_eq!(w.injected_partial_programs, 0);
        assert_eq!(quiet.injected_faults(), 0);
        assert!(!quiet.fault_plan().is_enabled());
        assert_eq!(r.interference_reads, 3);

        // Unit-rate plan: every host program is interrupted halfway, so
        // every page reads back with a partial-program RBER term.
        let mut noisy = build(1.0);
        let (w, r) = run(&mut noisy);
        assert_eq!(w.injected_partial_programs, 4);
        assert_eq!(noisy.injected_faults(), 4);
        assert_eq!(r.interference_reads, 4);

        // The schedule is a pure function of the plan's seed.
        let mut again = build(1.0);
        let reports = run(&mut again);
        assert_eq!(reports, (w, r));
    }
}
