//! The top-level `mlcx` error hierarchy.
//!
//! Every fallible host-facing operation across the workspace funnels into
//! [`MlcxError`]: service-directory violations ([`ServiceError`]),
//! controller datapath failures ([`CtrlError`], itself wrapping the codec
//! and device errors), raw device errors ([`NandError`]), codec errors
//! ([`BchError`]) and the engine/builder-specific conditions introduced
//! by the command-queue API. One `std::error::Error` impl, one `source()`
//! chain, one type to match on at the application boundary.

use std::error::Error;
use std::fmt;

use mlcx_bch::BchError;
use mlcx_controller::ftl::FtlError;
use mlcx_controller::CtrlError;
use mlcx_nand::NandError;

use crate::services::ServiceError;

/// The unified error type of the `mlcx` storage stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlcxError {
    /// Service-directory violation (overlap, unknown service, region
    /// bounds).
    Service(ServiceError),
    /// Memory-controller datapath or configuration failure.
    Ctrl(CtrlError),
    /// Raw NAND device failure (outside the controller datapath).
    Nand(NandError),
    /// BCH codec failure (outside the controller datapath).
    Ecc(BchError),
    /// A command referenced a service handle the engine never issued.
    UnknownHandle {
        /// The raw handle index.
        handle: u32,
    },
    /// A write command carried a payload that does not match the page
    /// size (caught at submission, before anything is enqueued).
    PageSize {
        /// Expected byte length (one page).
        expected: usize,
        /// Provided byte length.
        actual: usize,
    },
    /// A builder was asked to produce an inconsistent configuration.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Flash-translation-layer failure (address range, reclaimable
    /// space) from the workload simulator's logical datapath.
    Ftl(FtlError),
    /// A submission would push a service's queue past its configured
    /// depth — the backpressure signal of the bounded
    /// submission-queue API (caught atomically: nothing from the
    /// batch is enqueued). Hosts should drain completions and resubmit.
    QueueFull {
        /// The service whose queue is at capacity.
        service: String,
        /// The configured queue depth.
        depth: usize,
    },
    /// An internal invariant failed (a scheduler bookkeeping mismatch,
    /// a poisoned frontend lock). Formerly a `panic!`/`expect` on the
    /// datapath; surfaced as a typed error so hosts can fail one run
    /// instead of the whole process.
    Internal {
        /// What broke, for the log.
        reason: String,
    },
}

impl fmt::Display for MlcxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlcxError::Service(e) => write!(f, "service: {e}"),
            MlcxError::Ctrl(e) => write!(f, "controller: {e}"),
            MlcxError::Nand(e) => write!(f, "nand: {e}"),
            MlcxError::Ecc(e) => write!(f, "ecc: {e}"),
            MlcxError::UnknownHandle { handle } => {
                write!(
                    f,
                    "service handle #{handle} was never issued by this engine"
                )
            }
            MlcxError::PageSize { expected, actual } => {
                write!(f, "write payload is {actual} bytes, expected {expected}")
            }
            MlcxError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            MlcxError::Ftl(e) => write!(f, "ftl: {e}"),
            MlcxError::QueueFull { service, depth } => {
                write!(
                    f,
                    "submission queue of service {service} is at its depth limit {depth}"
                )
            }
            MlcxError::Internal { reason } => {
                write!(f, "internal invariant violated: {reason}")
            }
        }
    }
}

impl Error for MlcxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MlcxError::Service(e) => Some(e),
            MlcxError::Ctrl(e) => Some(e),
            MlcxError::Nand(e) => Some(e),
            MlcxError::Ecc(e) => Some(e),
            MlcxError::Ftl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServiceError> for MlcxError {
    fn from(e: ServiceError) -> Self {
        // A propagated controller error is a datapath fact, not a
        // directory fact: surface it under its own variant.
        match e {
            ServiceError::Ctrl(c) => MlcxError::Ctrl(c),
            other => MlcxError::Service(other),
        }
    }
}

impl From<CtrlError> for MlcxError {
    fn from(e: CtrlError) -> Self {
        MlcxError::Ctrl(e)
    }
}

impl From<NandError> for MlcxError {
    fn from(e: NandError) -> Self {
        MlcxError::Nand(e)
    }
}

impl From<BchError> for MlcxError {
    fn from(e: BchError) -> Self {
        MlcxError::Ecc(e)
    }
}

impl From<FtlError> for MlcxError {
    fn from(e: FtlError) -> Self {
        // A propagated controller error is a datapath fact, not a
        // translation-layer fact: surface it under its own variant.
        match e {
            FtlError::Ctrl(c) => MlcxError::Ctrl(c),
            other => MlcxError::Ftl(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let inner = CtrlError::BufferSize {
            expected: 4096,
            actual: 17,
        };
        let e = MlcxError::from(inner.clone());
        assert!(e.to_string().contains("4096"));
        let source = e.source().expect("wrapped error must be the source");
        assert_eq!(source.to_string(), inner.to_string());

        let handle = MlcxError::UnknownHandle { handle: 9 };
        assert!(handle.source().is_none());
        assert!(handle.to_string().contains("#9"));
    }

    #[test]
    fn service_ctrl_errors_normalize_to_ctrl() {
        let e = MlcxError::from(ServiceError::Ctrl(CtrlError::UnknownPageConfig {
            block: 1,
            page: 2,
        }));
        assert!(matches!(e, MlcxError::Ctrl(_)));
        let e = MlcxError::from(ServiceError::UnknownService { name: "x".into() });
        assert!(matches!(e, MlcxError::Service(_)));
    }
}
