//! The discrete-event vocabulary of the engine core.
//!
//! The engine orders execution with events on one *virtual clock* — the
//! same absolute timeline the controller's
//! [`ChannelScheduler`](mlcx_controller::channel::ChannelScheduler)
//! advances its per-die/per-channel busy clocks on. A submitted command
//! is stamped with its *arrival* time; dispatch (in
//! [`SchedPolicy`] order) runs it through the functional datapath and
//! asks the scheduler for the command's merged issue window
//! ([`ChannelScheduler::command_window`](mlcx_controller::channel::ChannelScheduler::command_window));
//! the resulting completion event is keyed by `(end time, dispatch
//! sequence)` in a min-heap, so completions pop in *completion-time*
//! order — out of order with respect to dispatch whenever dies overlap.
//!
//! This module also owns the QoS vocabulary: [`QosSpec`] (per-service
//! weight, deadline and bounded queue depth) and [`PolicyBundle`], the
//! shared policy surface [`EngineBuilder`](crate::engine::EngineBuilder)
//! and [`ScenarioBuilder`](crate::sim::scenario::ScenarioBuilder) both
//! accept so new knobs are added in one place.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mlcx_controller::retry::RetryPolicy;
use mlcx_controller::{CodecKernel, ScrubPolicy};
use mlcx_nand::disturb::DisturbModel;

use crate::engine::Completion;

/// How the engine orders dispatch across services when draining its
/// submission queues. Within one service, dispatch is always FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SchedPolicy {
    /// Drain each service's queue to completion before the next
    /// service's begins (registration order). The historical drain
    /// order — the default, pinned bit-identical by the determinism
    /// tests.
    #[default]
    ServiceMajor,
    /// Global host submission order across services.
    FifoArrival,
    /// Weighted fair queueing: each dispatch picks the backlogged
    /// service with the least accumulated device time per unit
    /// [`QosSpec::weight`] (ties resolve to the lowest service index).
    /// Heavier weights get proportionally more of the device under
    /// contention.
    WeightedFair,
    /// Earliest deadline first: each dispatch picks the backlogged
    /// service whose head-of-queue command has the earliest
    /// `arrival + `[`QosSpec::deadline_s`] (ties resolve to submission
    /// order).
    Deadline,
}

/// Per-service quality-of-service contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    /// Weighted-fair share under [`SchedPolicy::WeightedFair`]
    /// (default 1.0).
    pub weight: f64,
    /// Relative completion deadline, seconds after arrival, under
    /// [`SchedPolicy::Deadline`] — and the threshold
    /// [`BatchReport::deadline_misses`](crate::engine::BatchReport::deadline_misses)
    /// counts against (default infinity: never missed).
    pub deadline_s: f64,
    /// Bounded submission-queue depth: a submission that would push
    /// the service's pending count past this raises
    /// [`MlcxError::QueueFull`](crate::error::MlcxError::QueueFull)
    /// (default `usize::MAX`: unbounded).
    pub depth: usize,
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec {
            weight: 1.0,
            deadline_s: f64::INFINITY,
            depth: usize::MAX,
        }
    }
}

impl QosSpec {
    /// A spec with a weighted-fair share and the remaining fields at
    /// their defaults.
    pub fn weighted(weight: f64) -> Self {
        QosSpec {
            weight,
            ..QosSpec::default()
        }
    }

    /// A spec with a relative deadline and the remaining fields at
    /// their defaults.
    pub fn with_deadline(deadline_s: f64) -> Self {
        QosSpec {
            deadline_s,
            ..QosSpec::default()
        }
    }

    /// Returns the spec with a bounded queue depth.
    pub fn depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }
}

/// The shared policy surface of the stack: every cross-cutting knob a
/// builder accepts, in one struct, so
/// [`EngineBuilder::policies`](crate::engine::EngineBuilder::policies)
/// and
/// [`ScenarioBuilder::policies`](crate::sim::scenario::ScenarioBuilder::policies)
/// stay in lockstep when knobs are added.
#[derive(Debug, Clone, Default)]
pub struct PolicyBundle {
    /// Read-retry ladder on uncorrectable reads (default disabled).
    pub retry: RetryPolicy,
    /// Background scrub / read-reclaim policy (default disabled).
    pub scrub: ScrubPolicy,
    /// Read-disturb / retention model (default disabled).
    pub disturb: DisturbModel,
    /// BCH codec kernel rung (default [`CodecKernel::Auto`]).
    pub codec_kernel: CodecKernel,
    /// Cross-service dispatch order (default
    /// [`SchedPolicy::ServiceMajor`]).
    pub sched: SchedPolicy,
}

impl PolicyBundle {
    /// A bundle with every policy at its default (retry/scrub/disturb
    /// disabled, auto codec kernel, service-major dispatch).
    pub fn new() -> Self {
        PolicyBundle::default()
    }

    /// Returns the bundle with a read-retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns the bundle with a scrub policy.
    pub fn scrub(mut self, scrub: ScrubPolicy) -> Self {
        self.scrub = scrub;
        self
    }

    /// Returns the bundle with a disturb/retention model.
    pub fn disturb(mut self, disturb: DisturbModel) -> Self {
        self.disturb = disturb;
        self
    }

    /// Returns the bundle with a codec kernel rung.
    pub fn codec_kernel(mut self, kernel: CodecKernel) -> Self {
        self.codec_kernel = kernel;
        self
    }

    /// Returns the bundle with a dispatch policy.
    pub fn sched(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }
}

/// One completion, scheduled to surface at `end_s` on the virtual
/// clock.
#[derive(Debug)]
pub(crate) struct CompletionEvent {
    /// Virtual time the command's last device operation drains (its
    /// dispatch frontier for zero-device commands).
    pub end_s: f64,
    /// Dispatch sequence — the deterministic tie-break for events
    /// sharing an end time.
    pub seq: u64,
    /// The completion to deliver.
    pub completion: Completion,
}

impl PartialEq for CompletionEvent {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.end_s.total_cmp(&other.end_s) == Ordering::Equal
    }
}

impl Eq for CompletionEvent {}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the *earliest*
        // (end, seq).
        other
            .end_s
            .total_cmp(&self.end_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The engine's pending completion events, ordered by completion time.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<CompletionEvent>,
}

impl EventQueue {
    pub fn push(&mut self, event: CompletionEvent) {
        self.heap.push(event);
    }

    /// The earliest `(end, seq)` event, if any.
    pub fn pop(&mut self) -> Option<CompletionEvent> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CmdId, CommandOutput, Completion};

    fn event(end_s: f64, seq: u64) -> CompletionEvent {
        CompletionEvent {
            end_s,
            seq,
            completion: Completion {
                id: CmdId::test_only(seq),
                service: crate::engine::ServiceHandle::test_only(0, 0),
                result: Ok(CommandOutput::Trim { was_mapped: false }),
                arrival_s: 0.0,
                start_s: end_s,
                end_s,
            },
        }
    }

    #[test]
    fn events_pop_in_end_time_order_with_seq_tiebreak() {
        let mut q = EventQueue::default();
        q.push(event(3.0, 0));
        q.push(event(1.0, 2));
        q.push(event(1.0, 1));
        q.push(event(2.0, 3));
        assert_eq!(q.len(), 4);
        let order: Vec<(f64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.end_s, e.seq))
            .collect();
        assert_eq!(order, vec![(1.0, 1), (1.0, 2), (2.0, 3), (3.0, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn qos_spec_defaults_are_neutral() {
        let q = QosSpec::default();
        assert_eq!(q.weight, 1.0);
        assert_eq!(q.deadline_s, f64::INFINITY);
        assert_eq!(q.depth, usize::MAX);
        let q = QosSpec::weighted(8.0).depth(4);
        assert_eq!((q.weight, q.depth), (8.0, 4));
        assert_eq!(QosSpec::with_deadline(1e-3).deadline_s, 1e-3);
    }

    #[test]
    fn policy_bundle_builds_fluently() {
        let b = PolicyBundle::new()
            .retry(RetryPolicy::date2012())
            .scrub(ScrubPolicy::date2012())
            .disturb(DisturbModel::date2012())
            .codec_kernel(CodecKernel::Reference)
            .sched(SchedPolicy::WeightedFair);
        assert!(b.retry.is_enabled());
        assert!(b.scrub.is_enabled());
        assert!(b.disturb.is_enabled());
        assert_eq!(b.codec_kernel, CodecKernel::Reference);
        assert_eq!(b.sched, SchedPolicy::WeightedFair);
    }
}
