//! Architecture ablations — sensitivity of the paper's headline numbers
//! to the design choices the reproduction had to fix.
//!
//! Not a paper figure: these sweeps justify (a) the Chien multiplier-pool
//! basis `h = 4` and datapath width `p = 8` behind the Fig. 8 latency
//! envelope, (b) the 32 MB/s flash bus behind the Fig. 11 read gain, and
//! (c) the two-round load mitigation of Section 6.3.3.

use mlcx_controller::buffer::LoadStrategy;

use crate::model::SubsystemModel;
use crate::policy::Objective;
use crate::report::Table;

/// One row of the Chien-parallelism ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChienRow {
    /// Pool basis `h` (evaluations per clock at `t = tmax`).
    pub h: u32,
    /// Worst-case decode latency (t = 65), microseconds.
    pub decode_t65_us: f64,
    /// End-of-life read gain of the cross-layer mode, percent.
    pub eol_read_gain_percent: f64,
}

/// Sweeps the Chien multiplier-pool basis.
pub fn chien_parallelism(model: &SubsystemModel, h_values: &[u32]) -> Vec<ChienRow> {
    h_values
        .iter()
        .map(|&h| {
            let mut m = model.clone();
            m.ecc_hw.chien_parallelism = h;
            let n65 = m.k_bits + m.parity_bits(65);
            let base = m.configure(Objective::Baseline, 1_000_000);
            let fast = m.configure(Objective::MaxReadThroughput, 1_000_000);
            let rb = m.read_path(base.correction).throughput_mbps(m.k_bits / 8);
            let rf = m.read_path(fast.correction).throughput_mbps(m.k_bits / 8);
            ChienRow {
                h,
                decode_t65_us: m.ecc_hw.decode_latency_s(n65, 65) * 1e6,
                eol_read_gain_percent: (rf / rb - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Renders the Chien ablation.
pub fn chien_table(rows: &[ChienRow]) -> Table {
    let mut t = Table::new(vec!["h", "decode(t=65) [us]", "EOL read gain [%]"]);
    for r in rows {
        t.row(vec![
            r.h.to_string(),
            format!("{:.1}", r.decode_t65_us),
            format!("{:.1}", r.eol_read_gain_percent),
        ]);
    }
    t
}

/// One row of the bus-rate ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRow {
    /// Flash bus rate, MB/s.
    pub bus_mbps: f64,
    /// Baseline end-of-life read throughput, MB/s.
    pub baseline_read_mbps: f64,
    /// End-of-life read gain of the cross-layer mode, percent.
    pub eol_read_gain_percent: f64,
}

/// Sweeps the flash bus rate: faster buses make the decode latency a
/// larger share of the read path, *amplifying* the cross-layer gain.
pub fn bus_rate(model: &SubsystemModel, rates_mbps: &[f64]) -> Vec<BusRow> {
    rates_mbps
        .iter()
        .map(|&rate| {
            let mut m = model.clone();
            m.bus.bus_rate_bps = rate * 1e6;
            let base = m.configure(Objective::Baseline, 1_000_000);
            let fast = m.configure(Objective::MaxReadThroughput, 1_000_000);
            let rb = m.read_path(base.correction).throughput_mbps(m.k_bits / 8);
            let rf = m.read_path(fast.correction).throughput_mbps(m.k_bits / 8);
            BusRow {
                bus_mbps: rate,
                baseline_read_mbps: rb,
                eol_read_gain_percent: (rf / rb - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Renders the bus ablation.
pub fn bus_table(rows: &[BusRow]) -> Table {
    let mut t = Table::new(vec!["bus [MB/s]", "baseline read [MB/s]", "EOL gain [%]"]);
    for r in rows {
        t.row(vec![
            format!("{:.0}", r.bus_mbps),
            format!("{:.2}", r.baseline_read_mbps),
            format!("{:.1}", r.eol_read_gain_percent),
        ]);
    }
    t
}

/// One row of the load-strategy ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadRow {
    /// Whether two-round loading is enabled.
    pub two_round: bool,
    /// Fresh ISPP-DV write throughput, MB/s (what the mitigation buys).
    pub fresh_dv_write_mbps: f64,
    /// Fresh write loss, percent.
    pub fresh_loss_percent: f64,
    /// End-of-life write loss, percent.
    pub eol_loss_percent: f64,
}

/// Compares the write loss under both buffer-load strategies.
pub fn load_strategy(model: &SubsystemModel) -> Vec<LoadRow> {
    [LoadStrategy::OneRound, LoadStrategy::TwoRound]
        .into_iter()
        .map(|strategy| {
            let mut m = model.clone();
            m.load_strategy = strategy;
            let eval = |cycles: u64| {
                let base = m.configure(Objective::Baseline, cycles);
                let cross = m.configure(Objective::MaxReadThroughput, cycles);
                let wb = m.write_path(&base, cycles).throughput_mbps(m.k_bits / 8);
                let wc = m.write_path(&cross, cycles).throughput_mbps(m.k_bits / 8);
                (wc, (1.0 - wc / wb) * 100.0)
            };
            let (fresh_dv, fresh_loss) = eval(1);
            let (_, eol_loss) = eval(1_000_000);
            LoadRow {
                two_round: strategy == LoadStrategy::TwoRound,
                fresh_dv_write_mbps: fresh_dv,
                fresh_loss_percent: fresh_loss,
                eol_loss_percent: eol_loss,
            }
        })
        .collect()
}

/// Renders the load-strategy ablation.
pub fn load_table(rows: &[LoadRow]) -> Table {
    let mut t = Table::new(vec![
        "two-round",
        "DV write [MB/s]",
        "fresh loss [%]",
        "EOL loss [%]",
    ]);
    for r in rows {
        t.row(vec![
            r.two_round.to_string(),
            format!("{:.2}", r.fresh_dv_write_mbps),
            format!("{:.1}", r.fresh_loss_percent),
            format!("{:.1}", r.eol_loss_percent),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chien_pool_sizing_explains_fig8() {
        let model = SubsystemModel::date2012();
        let rows = chien_parallelism(&model, &[2, 4, 8]);
        // Decode latency halves-ish with each doubling of h.
        assert!(rows[0].decode_t65_us > rows[1].decode_t65_us);
        assert!(rows[1].decode_t65_us > rows[2].decode_t65_us);
        // h = 4 is the configuration that reproduces the paper's ~160 us.
        assert!((150.0..170.0).contains(&rows[1].decode_t65_us));
        // Bigger pools shrink the decode share, and with it the gain.
        assert!(rows[0].eol_read_gain_percent > rows[2].eol_read_gain_percent);
    }

    #[test]
    fn slower_buses_dilute_the_read_gain() {
        let model = SubsystemModel::date2012();
        let rows = bus_rate(&model, &[16.0, 32.0, 66.0, 200.0]);
        for pair in rows.windows(2) {
            assert!(
                pair[1].eol_read_gain_percent > pair[0].eol_read_gain_percent,
                "gain must grow with bus rate"
            );
            assert!(pair[1].baseline_read_mbps > pair[0].baseline_read_mbps);
        }
        // The paper-era 32 MB/s bus lands on the ~30 % figure.
        let at32 = rows.iter().find(|r| r.bus_mbps == 32.0).unwrap();
        assert!((25.0..35.0).contains(&at32.eol_read_gain_percent));
    }

    #[test]
    fn two_round_load_buys_absolute_write_throughput() {
        // Section 6.3.3's mitigation: overlapping the buffer load raises
        // the DV path's *absolute* write throughput. The relative loss
        // vs. the (equally accelerated) baseline barely moves — the
        // overhead is intrinsic to the slower program algorithm.
        let model = SubsystemModel::date2012();
        let rows = load_strategy(&model);
        let one = rows.iter().find(|r| !r.two_round).unwrap();
        let two = rows.iter().find(|r| r.two_round).unwrap();
        assert!(two.fresh_dv_write_mbps > one.fresh_dv_write_mbps);
        assert!((two.fresh_loss_percent - one.fresh_loss_percent).abs() < 2.0);
    }

    #[test]
    fn tables_render() {
        let model = SubsystemModel::date2012();
        assert!(!chien_table(&chien_parallelism(&model, &[4])).is_empty());
        assert!(!bus_table(&bus_rate(&model, &[32.0])).is_empty());
        assert!(!load_table(&load_strategy(&model)).is_empty());
    }
}
