//! Fig. 4 — compact-model fit: VTH vs. VCG during an ISPP ramp.

use mlcx_nand::compact::{
    experimental_reference, fit_rms_error_v, simulate_staircase, RampConditions,
};

use crate::report::{fixed2, Table};

/// One VCG step with the simulated and experimental thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Control-gate voltage, volts.
    pub vcg: f64,
    /// Simulated threshold, volts.
    pub simulated_vth: f64,
    /// Experimental (reference) threshold, volts.
    pub experimental_vth: f64,
}

/// Generates the staircase comparison under the paper's ramp conditions.
pub fn generate() -> Vec<Row> {
    let cond = RampConditions::fig4();
    simulate_staircase(&cond)
        .into_iter()
        .zip(experimental_reference(&cond))
        .map(|(sim, exp)| Row {
            vcg: sim.vcg,
            simulated_vth: sim.vth,
            experimental_vth: exp.vth,
        })
        .collect()
}

/// The fit quality in RMS volts.
pub fn rms_error_v() -> f64 {
    fit_rms_error_v(&RampConditions::fig4())
}

/// Renders the comparison table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec!["VCG [V]", "VTH sim [V]", "VTH exp [V]"]);
    for r in rows {
        t.row(vec![
            fixed2(r.vcg),
            fixed2(r.simulated_vth),
            fixed2(r.experimental_vth),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_fig4_axes() {
        let rows = generate();
        assert_eq!(rows.first().unwrap().vcg, 6.0);
        assert_eq!(rows.last().unwrap().vcg, 24.0);
        assert!(rows.last().unwrap().simulated_vth > 5.5);
    }

    #[test]
    fn simulation_tracks_experiment() {
        assert!(rms_error_v() < 0.2, "rms = {}", rms_error_v());
    }

    #[test]
    fn table_has_one_row_per_step() {
        let rows = generate();
        assert_eq!(table(&rows).len(), rows.len());
    }
}
