//! Fig. 5 — RBER characterization for ISPP-SV and ISPP-DV over lifetime.

use mlcx_nand::{AgingModel, ProgramAlgorithm};

use crate::model::SubsystemModel;
use crate::report::{sci, Table};

/// One lifetime point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// ISPP-SV raw bit error rate.
    pub rber_sv: f64,
    /// ISPP-DV raw bit error rate.
    pub rber_dv: f64,
}

/// Generates the two Fig. 5 curves on the paper's 1e2..1e6 grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(100, 1_000_000, 2)
        .into_iter()
        .map(|cycles| Row {
            cycles,
            rber_sv: model.rber(ProgramAlgorithm::IsppSv, cycles),
            rber_dv: model.rber(ProgramAlgorithm::IsppDv, cycles),
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec!["P/E cycles", "RBER ISPP-SV", "RBER ISPP-DV", "SV/DV"]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            sci(r.rber_sv),
            sci(r.rber_dv),
            format!("{:.1}", r.rber_sv / r.rber_dv),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_order_of_magnitude_improvement() {
        // The headline of Fig. 5.
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            let ratio = r.rber_sv / r.rber_dv;
            assert!((8.0..15.0).contains(&ratio), "at {}: {ratio}", r.cycles);
        }
    }

    #[test]
    fn both_curves_monotone() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        for w in rows.windows(2) {
            assert!(w[1].rber_sv > w[0].rber_sv);
            assert!(w[1].rber_dv > w[0].rber_dv);
        }
    }

    #[test]
    fn grid_spans_fig5_axis() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        assert_eq!(rows.first().unwrap().cycles, 100);
        assert_eq!(rows.last().unwrap().cycles, 1_000_000);
    }
}
