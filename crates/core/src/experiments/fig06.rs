//! Fig. 6 — program power for {ISPP-SV, ISPP-DV} x {L1, L2, L3} patterns.

use mlcx_nand::{AgingModel, MlcLevel, ProgramAlgorithm};

use crate::model::SubsystemModel;
use crate::report::Table;

/// One lifetime point: the six power series of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// Power for ISPP-SV, patterns L1..L3, watts.
    pub sv_w: [f64; 3],
    /// Power for ISPP-DV, patterns L1..L3, watts.
    pub dv_w: [f64; 3],
}

const PATTERNS: [MlcLevel; 3] = [MlcLevel::L1, MlcLevel::L2, MlcLevel::L3];

/// Generates the six series on the paper's 1..1e5(+) lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 1)
        .into_iter()
        .map(|cycles| {
            let power = |alg| {
                let mut out = [0.0; 3];
                for (slot, &level) in out.iter_mut().zip(&PATTERNS) {
                    *slot = model.pattern_power_w(alg, level, cycles);
                }
                out
            };
            Row {
                cycles,
                sv_w: power(ProgramAlgorithm::IsppSv),
                dv_w: power(ProgramAlgorithm::IsppDv),
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "SV L1",
        "SV L2",
        "SV L3",
        "DV L1",
        "DV L2",
        "DV L3",
    ]);
    for r in rows {
        let mut cells = vec![r.cycles.to_string()];
        for w in r.sv_w.iter().chain(&r.dv_w) {
            cells.push(format!("{w:.4}"));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_in_fig6_band() {
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            for w in r.sv_w.iter().chain(&r.dv_w) {
                assert!((0.14..0.19).contains(w), "at {}: {w}", r.cycles);
            }
        }
    }

    #[test]
    fn pattern_ordering_l1_l2_l3() {
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            assert!(r.sv_w[0] < r.sv_w[1] && r.sv_w[1] < r.sv_w[2]);
            assert!(r.dv_w[0] < r.dv_w[1] && r.dv_w[1] < r.dv_w[2]);
        }
    }

    #[test]
    fn dv_penalty_matches_paper_quote() {
        // "A shift of just 7.5 mW between the two algorithms ... a
        // marginal 4 to 5% increment."
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            for (sv, dv) in r.sv_w.iter().zip(&r.dv_w) {
                let delta_mw = (dv - sv) * 1e3;
                assert!(
                    (3.0..12.0).contains(&delta_mw),
                    "at {}: delta = {delta_mw} mW",
                    r.cycles
                );
                let percent = (dv - sv) / sv * 100.0;
                assert!(percent < 8.0, "increment = {percent}%");
            }
        }
    }
}
