//! Fig. 7 — UBER vs. RBER for the ISPP-SV capability set.

use crate::model::SubsystemModel;
use crate::report::{sci, Table};
use crate::uber;

/// The capability curves the paper plots for ISPP-SV.
pub const T_SET: [u32; 5] = [3, 4, 27, 30, 65];

/// One RBER grid point with `log10(UBER)` per plotted capability.
///
/// Cells are `None` outside eq. (1)'s validity regime (capability below
/// the mean error count) — the region the paper's y-window never shows.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Raw bit error rate (x axis).
    pub rber: f64,
    /// `log10(UBER)` for each entry of [`T_SET`].
    pub log10_uber: Vec<Option<f64>>,
}

/// The working points: the largest RBER each capability serves at the
/// UBER target (the paper's printed x-ticks).
pub fn working_points(model: &SubsystemModel) -> Vec<(u32, f64)> {
    T_SET
        .iter()
        .map(|&t| {
            (
                t,
                uber::max_rber_for_t(model.k_bits, model.ecc_m, t, model.uber_target),
            )
        })
        .collect()
}

/// Generates the curves on a log grid over the paper's 1e-6..1e-3 axis
/// (extended one grid step past the last printed tick so the t = 65
/// curve's crossing of the target is visible, as in the plot).
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    generate_for(model, &T_SET, 1e-6, 1.25e-3)
}

pub(crate) fn generate_for(
    model: &SubsystemModel,
    t_set: &[u32],
    rber_lo: f64,
    rber_hi: f64,
) -> Vec<Row> {
    let points = 25;
    (0..=points)
        .map(|i| {
            let log = rber_lo.log10() + (rber_hi / rber_lo).log10() * i as f64 / points as f64;
            let rber = 10f64.powf(log);
            let log10_uber = t_set
                .iter()
                .map(|&t| {
                    let n = model.k_bits + model.parity_bits(t);
                    uber::first_term_valid(n, t, rber).then(|| uber::log10_uber(n, t, rber))
                })
                .collect();
            Row { rber, log10_uber }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    table_for(rows, &T_SET)
}

pub(crate) fn table_for(rows: &[Row], t_set: &[u32]) -> Table {
    let mut headers = vec!["RBER".to_string()];
    headers.extend(t_set.iter().map(|t| format!("t={t}")));
    let mut t = Table::new(headers);
    for r in rows {
        let mut cells = vec![sci(r.rber)];
        cells.extend(r.log10_uber.iter().map(|u| match u {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        }));
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_points_match_printed_xticks() {
        // Paper Fig. 7 x-ticks: 2.75e-4 (t=27), 3.35e-4 (t=30), 1e-3 (t=65).
        let model = SubsystemModel::date2012();
        let wp = working_points(&model);
        let find = |t: u32| wp.iter().find(|(tt, _)| *tt == t).unwrap().1;
        assert!((find(27) - 2.75e-4).abs() / 2.75e-4 < 0.05);
        assert!((find(30) - 3.35e-4).abs() / 3.35e-4 < 0.05);
        assert!((find(65) - 1.0e-3).abs() / 1.0e-3 < 0.05);
        // And the left side: t = 3 serves ~1.6e-6.
        assert!((find(3) - 1.64e-6).abs() / 1.64e-6 < 0.05);
    }

    #[test]
    fn curves_ordered_by_capability() {
        // Wherever two curves are both valid, the larger t gives a
        // (much) lower UBER.
        let model = SubsystemModel::date2012();
        for row in generate(&model) {
            for pair in row.log10_uber.windows(2) {
                if let (Some(lo_t), Some(hi_t)) = (pair[0], pair[1]) {
                    assert!(hi_t < lo_t, "at RBER {:.2e}", row.rber);
                }
            }
        }
    }

    #[test]
    fn each_curve_crosses_the_target_inside_the_axis() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        for (idx, t) in T_SET.iter().enumerate() {
            let below = rows
                .iter()
                .any(|r| r.log10_uber[idx].is_some_and(|u| u < -11.0));
            let above = rows
                .iter()
                .any(|r| r.log10_uber[idx].is_some_and(|u| u > -11.0));
            assert!(below && above, "t={t} never crosses 1e-11 on the axis");
        }
    }
}
