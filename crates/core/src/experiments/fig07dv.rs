//! The "Fig. ??" lost from the camera-ready: UBER vs. RBER for ISPP-DV.
//!
//! The paper's text fully specifies it: "Fig. ?? shows that, in the worst
//! case, the correction capability required by the code is tMAX = 14
//! errors for the ISPP-DV algorithm", with tMIN = 3 on the left-hand
//! side. We plot the same capability ladder over the DV RBER range
//! (one order of magnitude below the SV axis of Fig. 7).

use crate::experiments::fig07;
use crate::model::SubsystemModel;
use crate::report::Table;
use crate::uber;

/// The capability curves for the ISPP-DV working range.
pub const T_SET: [u32; 4] = [3, 4, 9, 14];

/// Row type shared with Fig. 7.
pub type Row = fig07::Row;

/// Generates the curves over the DV axis (1e-7..1e-4).
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    fig07::generate_for(model, &T_SET, 1e-7, 1e-4)
}

/// The DV working points at the UBER target.
pub fn working_points(model: &SubsystemModel) -> Vec<(u32, f64)> {
    T_SET
        .iter()
        .map(|&t| {
            (
                t,
                uber::max_rber_for_t(model.k_bits, model.ecc_m, t, model.uber_target),
            )
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    fig07::table_for(rows, &T_SET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_nand::ProgramAlgorithm;

    #[test]
    fn t14_serves_the_dv_end_of_life() {
        // The reconstructed figure's defining property: the DV RBER at
        // 1e6 cycles sits exactly at the t = 14 working point.
        let model = SubsystemModel::date2012();
        let wp = working_points(&model);
        let t14 = wp.iter().find(|(t, _)| *t == 14).unwrap().1;
        let dv_eol = model.rber(ProgramAlgorithm::IsppDv, 1_000_000);
        assert!(
            dv_eol <= t14 * 1.01,
            "DV EOL RBER {dv_eol:e} must be served by t=14 (bound {t14:e})"
        );
        // ...and t = 13 must NOT suffice (otherwise tMAX would be 13).
        let t13 = uber::max_rber_for_t(model.k_bits, model.ecc_m, 13, model.uber_target);
        assert!(dv_eol > t13, "t=13 bound {t13:e} vs DV EOL {dv_eol:e}");
    }

    #[test]
    fn axis_sits_one_decade_below_fig7() {
        let model = SubsystemModel::date2012();
        let dv_rows = generate(&model);
        assert!(dv_rows.first().unwrap().rber <= 1.1e-7);
        assert!(dv_rows.last().unwrap().rber >= 0.9e-4);
    }

    #[test]
    fn table_shape() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let t = table(&rows);
        assert_eq!(t.len(), rows.len());
    }
}
