//! Fig. 8 — ECC encode/decode latency over memory lifetime at 80 MHz.
//!
//! With ISPP-SV the adaptive ECC is repeatedly re-configured upward to
//! hold UBER = 1e-11, so decode latency climbs towards ~160 us; with
//! ISPP-DV the requirement stays relaxed and the latency nearly constant.

use mlcx_nand::{AgingModel, ProgramAlgorithm};

use crate::model::SubsystemModel;
use crate::report::Table;

/// One lifetime point of the four latency curves (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// Capability the SV schedule selects here.
    pub t_sv: u32,
    /// Capability the DV schedule selects here.
    pub t_dv: u32,
    /// ISPP-SV encode latency, microseconds.
    pub sv_encode_us: f64,
    /// ISPP-DV encode latency, microseconds.
    pub dv_encode_us: f64,
    /// ISPP-SV decode latency, microseconds.
    pub sv_decode_us: f64,
    /// ISPP-DV decode latency, microseconds.
    pub dv_decode_us: f64,
}

/// Generates the four curves over the lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 2)
        .into_iter()
        .map(|cycles| {
            let t_sv = model
                .required_t(ProgramAlgorithm::IsppSv, cycles)
                .unwrap_or(model.tmax);
            let t_dv = model
                .required_t(ProgramAlgorithm::IsppDv, cycles)
                .unwrap_or(model.tmax);
            let enc = |t: u32| {
                model
                    .ecc_hw
                    .encode_latency_s(model.k_bits, model.parity_bits(t))
                    * 1e6
            };
            let dec = |t: u32| {
                model
                    .ecc_hw
                    .decode_latency_s(model.k_bits + model.parity_bits(t), t)
                    * 1e6
            };
            Row {
                cycles,
                t_sv,
                t_dv,
                sv_encode_us: enc(t_sv),
                dv_encode_us: enc(t_dv),
                sv_decode_us: dec(t_sv),
                dv_decode_us: dec(t_dv),
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "t(SV)",
        "t(DV)",
        "SV enc [us]",
        "DV enc [us]",
        "SV dec [us]",
        "DV dec [us]",
    ]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            r.t_sv.to_string(),
            r.t_dv.to_string(),
            format!("{:.1}", r.sv_encode_us),
            format!("{:.1}", r.dv_encode_us),
            format!("{:.1}", r.sv_decode_us),
            format!("{:.1}", r.dv_decode_us),
        ])
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sv_decode_reaches_fig8_ceiling() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let last = rows.last().unwrap();
        assert_eq!(last.t_sv, 65);
        assert!(
            (150.0..170.0).contains(&last.sv_decode_us),
            "{}",
            last.sv_decode_us
        );
    }

    #[test]
    fn dv_decode_stays_nearly_constant() {
        // Paper: "ISPP-DV can contain the RBER with memory aging ...
        // almost keeping a constant latency."
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let first = rows.first().unwrap().dv_decode_us;
        let last = rows.last().unwrap().dv_decode_us;
        assert!(last / first < 1.45, "DV decode drift {first} -> {last}");
        // While SV drifts by ~3x.
        let sv_drift = rows.last().unwrap().sv_decode_us / rows.first().unwrap().sv_decode_us;
        assert!(sv_drift > 2.0, "SV drift = {sv_drift}");
    }

    #[test]
    fn encode_latency_t_insensitive() {
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            assert!((r.sv_encode_us - r.dv_encode_us).abs() < 3.0);
            assert!((45.0..60.0).contains(&r.sv_encode_us));
        }
    }

    #[test]
    fn decode_monotone_for_sv() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        for w in rows.windows(2) {
            assert!(w[1].sv_decode_us >= w[0].sv_decode_us - 1e-9);
        }
    }
}
