//! Fig. 9 — write-throughput loss of the cross-layer configurations.
//!
//! Both adaptivity modes switch the device to ISPP-DV, whose longer run
//! time (~1.5 ms vs. ~0.9 ms) costs write throughput against the ISPP-SV
//! baseline: ~40 % fresh, drifting towards ~48 % at end of life.

use mlcx_nand::AgingModel;

use crate::model::SubsystemModel;
use crate::policy::Objective;
use crate::report::Table;

/// One lifetime point of the write-loss curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// Baseline (ISPP-SV) write throughput, MB/s.
    pub baseline_mbps: f64,
    /// Cross-layer (ISPP-DV) write throughput, MB/s.
    pub cross_layer_mbps: f64,
    /// Throughput loss, percent.
    pub loss_percent: f64,
}

/// Generates the loss curve over the lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 2)
        .into_iter()
        .map(|cycles| {
            let base = model.configure(Objective::Baseline, cycles);
            let cross = model.configure(Objective::MaxReadThroughput, cycles);
            let baseline_mbps = model
                .write_path(&base, cycles)
                .throughput_mbps(model.k_bits / 8);
            let cross_layer_mbps = model
                .write_path(&cross, cycles)
                .throughput_mbps(model.k_bits / 8);
            Row {
                cycles,
                baseline_mbps,
                cross_layer_mbps,
                loss_percent: (1.0 - cross_layer_mbps / baseline_mbps) * 100.0,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "SV write [MB/s]",
        "DV write [MB/s]",
        "loss [%]",
    ]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            format!("{:.2}", r.baseline_mbps),
            format!("{:.2}", r.cross_layer_mbps),
            format!("{:.1}", r.loss_percent),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_spans_fig9_envelope() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let fresh = rows.first().unwrap().loss_percent;
        let eol = rows.last().unwrap().loss_percent;
        assert!((37.0..44.0).contains(&fresh), "fresh = {fresh}");
        assert!((44.0..52.0).contains(&eol), "eol = {eol}");
    }

    #[test]
    fn loss_grows_with_wear() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        for w in rows.windows(2) {
            assert!(w[1].loss_percent >= w[0].loss_percent - 0.5);
        }
    }

    #[test]
    fn average_loss_about_40_percent() {
        // Paper: "the write throughput loss ... on average amounts to 40%".
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let avg: f64 = rows.iter().map(|r| r.loss_percent).sum::<f64>() / rows.len() as f64;
        assert!((38.0..46.0).contains(&avg), "avg = {avg}");
    }
}
