//! Fig. 10 — UBER improvement from the physical layer alone.
//!
//! Minimizing UBER (Section 6.3.1): keep the ECC exactly on the nominal
//! ISPP-SV schedule, switch only the program algorithm to ISPP-DV. The
//! nominal curve hugs the 1e-11 requirement (sawtooth from the quantized
//! `t` schedule); the modified curve falls far below it, the gap widening
//! with age.
//!
//! Note on magnitudes: the paper's prose quotes a 2-4 order-of-magnitude
//! boost, but eq. (1) — with the paper's own RBER curves — yields far
//! more at high `t` (the binomial tail is steep: a ~11x RBER reduction
//! scales UBER by ~11^-(t+1)). We follow eq. (1) and record the deviation
//! in EXPERIMENTS.md.

use mlcx_nand::AgingModel;

use crate::model::SubsystemModel;
use crate::policy::Objective;
use crate::report::Table;

/// One lifetime point of the two UBER curves (log10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// The shared ECC capability (nominal schedule).
    pub t_nominal: u32,
    /// `log10(UBER)` of the nominal configuration (ISPP-SV).
    pub nominal_log10_uber: f64,
    /// `log10(UBER)` after the physical-layer modification (ISPP-DV).
    pub modified_log10_uber: f64,
}

impl Row {
    /// Orders of magnitude of UBER improvement at this point.
    pub fn boost_orders(&self) -> f64 {
        self.nominal_log10_uber - self.modified_log10_uber
    }
}

/// Generates both curves over the lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 2)
        .into_iter()
        .map(|cycles| {
            let nominal = model.configure(Objective::Baseline, cycles);
            let modified = model.configure(Objective::MinUber, cycles);
            debug_assert_eq!(nominal.correction, modified.correction);
            Row {
                cycles,
                t_nominal: nominal.correction,
                nominal_log10_uber: model.log10_uber(&nominal, cycles),
                modified_log10_uber: model.log10_uber(&modified, cycles),
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "t",
        "log10 UBER nominal",
        "log10 UBER phys-mod",
        "boost [orders]",
    ]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            r.t_nominal.to_string(),
            format!("{:.2}", r.nominal_log10_uber),
            format!("{:.2}", r.modified_log10_uber),
            format!("{:.1}", r.boost_orders()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_hugs_the_requirement() {
        // The adaptive schedule keeps nominal UBER at or below 1e-11 but,
        // once past the tmin clamp region, never more than ~3.5 orders
        // under it (quantized sawtooth).
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            assert!(r.nominal_log10_uber <= -11.0 + 1e-9, "at {}", r.cycles);
            if r.cycles >= 100 {
                assert!(
                    r.nominal_log10_uber > -14.5,
                    "at {}: nominal fell to {}",
                    r.cycles,
                    r.nominal_log10_uber
                );
            }
        }
    }

    #[test]
    fn modification_always_improves() {
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            assert!(
                r.boost_orders() > 2.0,
                "at {}: boost = {}",
                r.cycles,
                r.boost_orders()
            );
        }
    }

    #[test]
    fn boost_peaks_at_end_of_life() {
        // The paper's qualitative claim: the gap widens as the memory
        // wears (t grows, steepening the eq.-1 tail).
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let fresh = rows.first().unwrap().boost_orders();
        let eol = rows.last().unwrap().boost_orders();
        assert!(eol > 3.0 * fresh, "fresh {fresh} vs eol {eol}");
    }

    #[test]
    fn same_ecc_schedule_for_both_curves() {
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            // By construction both curves share t; the boost comes only
            // from the physical layer.
            assert!(r.t_nominal >= model.tmin && r.t_nominal <= model.tmax);
        }
    }
}
