//! Fig. 11 — read-throughput gain of the cross-layer optimization.
//!
//! Maximizing read throughput (Section 6.3.2): ISPP-DV contains the RBER,
//! so the ECC relaxes to the DV schedule at the same UBER target; the
//! shorter decode latency buys up to ~30 % read throughput at end of
//! life, with no UBER cost.

use mlcx_nand::AgingModel;

use crate::model::SubsystemModel;
use crate::policy::Objective;
use crate::report::Table;

/// One lifetime point of the read-gain curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// Baseline read throughput, MB/s.
    pub baseline_mbps: f64,
    /// Cross-layer read throughput, MB/s.
    pub cross_layer_mbps: f64,
    /// Read gain, percent.
    pub gain_percent: f64,
    /// `log10(UBER)` of the cross-layer point (must hold the target).
    pub cross_layer_log10_uber: f64,
}

/// Generates the gain curve over the lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 2)
        .into_iter()
        .map(|cycles| {
            let base = model.configure(Objective::Baseline, cycles);
            let fast = model.configure(Objective::MaxReadThroughput, cycles);
            let baseline_mbps = model
                .read_path(base.correction)
                .throughput_mbps(model.k_bits / 8);
            let cross_layer_mbps = model
                .read_path(fast.correction)
                .throughput_mbps(model.k_bits / 8);
            Row {
                cycles,
                baseline_mbps,
                cross_layer_mbps,
                gain_percent: (cross_layer_mbps / baseline_mbps - 1.0) * 100.0,
                cross_layer_log10_uber: model.log10_uber(&fast, cycles),
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "SV read [MB/s]",
        "DV read [MB/s]",
        "gain [%]",
        "log10 UBER (DV)",
    ]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            format!("{:.2}", r.baseline_mbps),
            format!("{:.2}", r.cross_layer_mbps),
            format!("{:.1}", r.gain_percent),
            format!("{:.2}", r.cross_layer_log10_uber),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_starts_at_zero_and_reaches_30_percent() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let fresh = rows.first().unwrap().gain_percent;
        let eol = rows.last().unwrap().gain_percent;
        assert!(fresh.abs() < 1.0, "fresh gain = {fresh}");
        assert!((25.0..35.0).contains(&eol), "eol gain = {eol}");
    }

    #[test]
    fn gain_monotone_with_wear() {
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        for w in rows.windows(2) {
            assert!(w[1].gain_percent >= w[0].gain_percent - 0.5);
        }
    }

    #[test]
    fn uber_never_sacrificed() {
        // The key novelty: the gain comes at zero UBER cost.
        let model = SubsystemModel::date2012();
        for r in generate(&model) {
            assert!(
                r.cross_layer_log10_uber <= -11.0 + 1e-9,
                "at {}: log10 UBER = {}",
                r.cycles,
                r.cross_layer_log10_uber
            );
        }
    }
}
