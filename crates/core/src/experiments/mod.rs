//! One generator per figure of the paper's evaluation (Section 6).
//!
//! Each module produces the same series its figure plots, as typed rows
//! plus a rendered [`crate::report::Table`]. The Criterion benches in
//! `mlcx-bench` time the generators; the `reproduce_figures` example
//! prints every table; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | Module | Paper figure | Content |
//! |--------|--------------|---------|
//! | [`fig04`] | Fig. 4 | compact-model fit: VTH vs. VCG staircase |
//! | [`fig05`] | Fig. 5 | RBER vs. P/E cycles, ISPP-SV vs. ISPP-DV |
//! | [`fig06`] | Fig. 6 | program power, {SV, DV} x {L1, L2, L3} |
//! | [`fig07`] | Fig. 7 | UBER vs. RBER, ISPP-SV capability set |
//! | [`fig07dv`] | "Fig. ??" | UBER vs. RBER, ISPP-DV capability set |
//! | [`fig08`] | Fig. 8 | ECC encode/decode latency over lifetime |
//! | [`fig09`] | Fig. 9 | write-throughput loss over lifetime |
//! | [`fig10`] | Fig. 10 | UBER: nominal vs. physical-layer modification |
//! | [`fig11`] | Fig. 11 | read-throughput gain over lifetime |
//! | [`power_budget`] | Section 6.3.2 | ECC vs. NAND power compensation |
//! | [`ablation`] | (extension) | sensitivity of the headline numbers to h, p, bus rate and load strategy |

pub mod ablation;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig07dv;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod power_budget;

use crate::model::SubsystemModel;

/// Renders every experiment table, in paper order, with headers.
pub fn render_all(model: &SubsystemModel) -> String {
    let sections: Vec<(&str, String)> = vec![
        (
            "Fig. 4 — compact model fit (VTH vs VCG, 7us pulses, 1V steps)",
            fig04::table(&fig04::generate()).render(),
        ),
        (
            "Fig. 5 — RBER vs P/E cycles",
            fig05::table(&fig05::generate(model)).render(),
        ),
        (
            "Fig. 6 — program power vs P/E cycles [W]",
            fig06::table(&fig06::generate(model)).render(),
        ),
        (
            "Fig. 7 — UBER vs RBER (ISPP-SV), log10(UBER)",
            fig07::table(&fig07::generate(model)).render(),
        ),
        (
            "Fig. ?? — UBER vs RBER (ISPP-DV), log10(UBER)",
            fig07dv::table(&fig07dv::generate(model)).render(),
        ),
        (
            "Fig. 8 — ECC latency vs P/E cycles (80 MHz) [us]",
            fig08::table(&fig08::generate(model)).render(),
        ),
        (
            "Fig. 9 — write throughput loss [%]",
            fig09::table(&fig09::generate(model)).render(),
        ),
        (
            "Fig. 10 — UBER improvement (nominal vs physical-layer mod)",
            fig10::table(&fig10::generate(model)).render(),
        ),
        (
            "Fig. 11 — read throughput gain [%]",
            fig11::table(&fig11::generate(model)).render(),
        ),
        (
            "Section 6.3.2 — power budget compensation [mW]",
            power_budget::table(&power_budget::generate(model)).render(),
        ),
    ];
    let mut out = String::new();
    for (title, body) in sections {
        out.push_str("== ");
        out.push_str(title);
        out.push_str(" ==\n");
        out.push_str(&body);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_all_contains_every_section() {
        let model = SubsystemModel::date2012();
        let all = render_all(&model);
        for needle in [
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 7",
            "Fig. ??",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "power budget",
        ] {
            assert!(all.contains(needle), "missing section {needle}");
        }
    }
}
