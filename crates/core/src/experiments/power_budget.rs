//! Section 6.3.2's power-budget claim, quantified.
//!
//! "The relaxation of ECC performance allows to keep the memory power
//! budget constant since the increased power needs of the physical layer
//! are compensated by the lower power of the ECC sub-system" — the ECC
//! drops from 7 mW to ~1 mW while ISPP-DV adds ~7.5 mW of program power.

use mlcx_nand::AgingModel;

use crate::model::SubsystemModel;
use crate::policy::Objective;
use crate::report::Table;

/// One lifetime point of the power ledger (milliwatts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Program/erase cycles.
    pub cycles: u64,
    /// Baseline NAND program power, mW.
    pub nand_sv_mw: f64,
    /// Cross-layer NAND program power, mW.
    pub nand_dv_mw: f64,
    /// Baseline ECC power, mW.
    pub ecc_sv_mw: f64,
    /// Cross-layer (relaxed) ECC power, mW.
    pub ecc_dv_mw: f64,
}

impl Row {
    /// NAND power increase of the cross-layer mode, mW.
    pub fn nand_penalty_mw(&self) -> f64 {
        self.nand_dv_mw - self.nand_sv_mw
    }

    /// ECC power saving of the cross-layer mode, mW.
    pub fn ecc_saving_mw(&self) -> f64 {
        self.ecc_sv_mw - self.ecc_dv_mw
    }

    /// Net budget change (positive = more power), mW.
    pub fn net_mw(&self) -> f64 {
        self.nand_penalty_mw() - self.ecc_saving_mw()
    }
}

/// Generates the ledger over the lifetime grid.
pub fn generate(model: &SubsystemModel) -> Vec<Row> {
    AgingModel::lifetime_grid(1, 1_000_000, 1)
        .into_iter()
        .map(|cycles| {
            let base = model.configure(Objective::Baseline, cycles);
            let fast = model.configure(Objective::MaxReadThroughput, cycles);
            let mb = model.metrics(&base, cycles);
            let mf = model.metrics(&fast, cycles);
            Row {
                cycles,
                nand_sv_mw: mb.program_power_w * 1e3,
                nand_dv_mw: mf.program_power_w * 1e3,
                ecc_sv_mw: mb.ecc_power_w * 1e3,
                ecc_dv_mw: mf.ecc_power_w * 1e3,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(vec![
        "P/E cycles",
        "NAND SV",
        "NAND DV",
        "ECC SV",
        "ECC DV",
        "net",
    ]);
    for r in rows {
        t.row(vec![
            r.cycles.to_string(),
            format!("{:.1}", r.nand_sv_mw),
            format!("{:.1}", r.nand_dv_mw),
            format!("{:.2}", r.ecc_sv_mw),
            format!("{:.2}", r.ecc_dv_mw),
            format!("{:+.1}", r.net_mw()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_relaxation_at_end_of_life_matches_quotes() {
        // 7 mW -> ~1 mW (Section 6.3.2).
        let model = SubsystemModel::date2012();
        let rows = generate(&model);
        let last = rows.last().unwrap();
        assert!((6.5..7.5).contains(&last.ecc_sv_mw), "{}", last.ecc_sv_mw);
        assert!((0.7..1.5).contains(&last.ecc_dv_mw), "{}", last.ecc_dv_mw);
    }

    #[test]
    fn compensation_shrinks_the_net_change() {
        // At end of life the ECC saving covers most of the NAND penalty:
        // the net budget change is well below the raw penalty.
        let model = SubsystemModel::date2012();
        let last = *generate(&model).last().unwrap();
        assert!(last.nand_penalty_mw() > 3.0);
        assert!(last.net_mw().abs() < last.nand_penalty_mw());
    }

    #[test]
    fn ledger_arithmetic() {
        let r = Row {
            cycles: 1,
            nand_sv_mw: 160.0,
            nand_dv_mw: 167.5,
            ecc_sv_mw: 7.0,
            ecc_dv_mw: 1.0,
        };
        assert!((r.nand_penalty_mw() - 7.5).abs() < 1e-12);
        assert!((r.ecc_saving_mw() - 6.0).abs() < 1e-12);
        assert!((r.net_mw() - 1.5).abs() < 1e-12);
    }
}
