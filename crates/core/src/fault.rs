//! Deterministic program-fault injection.
//!
//! Two-step MLC programming is interruptible: power loss after k of N
//! ISPP pulses leaves a page mid-staircase, where it reads back corrupt
//! until its block is erased (Cai et al., arXiv:1805.03291 catalog the
//! mechanism; Luo, arXiv:1808.04016 the controller-side mitigations).
//! [`FaultPlan`] schedules such interruptions over an engine's program
//! stream: a per-program interruption probability drawn from a
//! dedicated seeded stream — never the device's error-injection RNG, so
//! enabling injection cannot perturb the error sequences of programs
//! that complete, and a disabled plan draws nothing at all (the
//! disabled datapath stays bit-identical).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic, seed-driven schedule of partial-program (power-loss)
/// faults. The default ([`FaultPlan::disabled`]) injects nothing and
/// costs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that any given program is interrupted mid-staircase
    /// (0.0 disables injection outright; 1.0 interrupts every program).
    pub partial_program_rate: f64,
    /// Fraction of the ISPP staircase an interrupted program completes
    /// before the (modeled) power loss, clamped to `[0.0, 1.0]` by the
    /// device.
    pub partial_program_fraction: f64,
    /// Seed of the injection stream. Independent of the engine/device
    /// seed: the same workload can be replayed under different fault
    /// schedules, or the same schedule over different error streams.
    pub seed: u64,
}

impl FaultPlan {
    /// No injection — the default everywhere, and bit-identical to an
    /// engine without the subsystem.
    pub fn disabled() -> Self {
        FaultPlan {
            partial_program_rate: 0.0,
            partial_program_fraction: 0.5,
            seed: 0,
        }
    }

    /// A demonstration schedule: 5 % of programs interrupted halfway up
    /// the staircase — frequent enough that preset-sized traces hit it.
    pub fn demo(seed: u64) -> Self {
        FaultPlan {
            partial_program_rate: 0.05,
            partial_program_fraction: 0.5,
            seed,
        }
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_enabled(&self) -> bool {
        self.partial_program_rate > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The engine-owned executor of a [`FaultPlan`]: rolls the schedule's
/// own seeded stream once per program *only when the plan is enabled*,
/// so a disabled plan leaves every RNG stream untouched.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    injected: u64,
}

impl FaultInjector {
    /// An injector executing `plan` from its seed.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            injected: 0,
        }
    }

    /// The schedule being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of the next program: `Some(fraction)` orders an
    /// interruption after that fraction of the staircase, `None` lets
    /// the program complete. Draws nothing under a disabled plan.
    pub fn next_program(&mut self) -> Option<f64> {
        if !self.plan.is_enabled() {
            return None;
        }
        let roll: f64 = self.rng.random();
        if roll < self.plan.partial_program_rate {
            self.injected += 1;
            Some(self.plan.partial_program_fraction)
        } else {
            None
        }
    }

    /// Lifetime count of faults this injector has ordered.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_injects_and_never_draws() {
        let mut a = FaultInjector::new(FaultPlan::disabled());
        for _ in 0..100 {
            assert_eq!(a.next_program(), None);
        }
        assert_eq!(a.injected(), 0);
    }

    #[test]
    fn enabled_plan_is_a_fixed_function_of_its_seed() {
        let run = |seed: u64| -> Vec<Option<f64>> {
            let mut inj = FaultInjector::new(FaultPlan {
                partial_program_rate: 0.3,
                partial_program_fraction: 0.25,
                seed,
            });
            (0..200).map(|_| inj.next_program()).collect()
        };
        let a = run(9);
        assert_eq!(a, run(9), "same seed, same schedule");
        assert_ne!(a, run(10), "different seed, different schedule");
        let hits = a.iter().flatten().count();
        assert!((20..120).contains(&hits), "rate ~0.3 of 200: {hits}");
        assert!(a.iter().flatten().all(|&f| f == 0.25));
    }

    #[test]
    fn unit_rate_interrupts_every_program() {
        let mut inj = FaultInjector::new(FaultPlan {
            partial_program_rate: 1.0,
            partial_program_fraction: 0.5,
            seed: 3,
        });
        for _ in 0..10 {
            assert_eq!(inj.next_program(), Some(0.5));
        }
        assert_eq!(inj.injected(), 10);
    }
}
