//! Concurrent host frontend: N submitter threads over one engine.
//!
//! The offline tree models a multi-tenant host with plain
//! `std::thread` workers (no async runtime): a [`HostFrontend`] wraps a
//! [`StorageEngine`] behind a mutex and hands out cloneable
//! [`Submitter`]s, one per host thread. Each submitter pushes batches
//! through the engine's typed submission queue; when a service's
//! bounded depth pushes back ([`MlcxError::QueueFull`]), the submitter
//! drains completions into the frontend's shared sink and retries —
//! the same drain-and-resubmit loop a real host driver runs on a full
//! NVMe submission queue.
//!
//! Completions end up in one shared sink regardless of which thread's
//! submission produced them; [`HostFrontend::into_engine`] tears the
//! frontend down and hands the engine back for report extraction.
//!
//! Lock poisoning (a submitter thread panicking while holding the
//! engine or sink mutex) surfaces as [`MlcxError::Internal`] on every
//! path rather than a cascading panic: one poisoned run fails loudly,
//! the host process survives.
//!
//! Determinism note: with several submitters racing, the *interleaving*
//! of batches (and therefore per-die RNG draws) is scheduling-dependent
//! — but the *set* of functional outcomes per service is not, which is
//! what the multi-submitter stress test pins. Single-submitter use is
//! fully deterministic.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::engine::{CmdId, Command, Completion, StorageEngine};
use crate::error::MlcxError;

struct Shared {
    engine: Mutex<StorageEngine>,
    sink: Mutex<Vec<Completion>>,
}

/// Locks a frontend mutex, mapping poisoning to a typed error.
fn lock<'a, T>(mutex: &'a Mutex<T>, what: &str) -> Result<MutexGuard<'a, T>, MlcxError> {
    mutex.lock().map_err(|_| MlcxError::Internal {
        reason: format!("frontend {what} lock poisoned by a panicked submitter thread"),
    })
}

/// A multi-threaded host frontend over one [`StorageEngine`].
pub struct HostFrontend {
    shared: Arc<Shared>,
}

impl HostFrontend {
    /// Wraps an engine for concurrent submission.
    pub fn new(engine: StorageEngine) -> Self {
        HostFrontend {
            shared: Arc::new(Shared {
                engine: Mutex::new(engine),
                sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A new submitter sharing this frontend's engine. Submitters are
    /// cheap to clone and `Send` — hand one to each host thread.
    pub fn submitter(&self) -> Submitter {
        Submitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drains every queued command and pending completion into the
    /// shared sink, then returns the sink's contents so far.
    ///
    /// # Errors
    ///
    /// [`MlcxError::Internal`] when a submitter thread panicked while
    /// holding a frontend lock.
    pub fn drain(&self) -> Result<Vec<Completion>, MlcxError> {
        let mut engine = lock(&self.shared.engine, "engine")?;
        let done = engine.cq().drain();
        drop(engine);
        let mut sink = lock(&self.shared.sink, "sink")?;
        sink.extend(done);
        Ok(std::mem::take(&mut sink))
    }

    /// Tears the frontend down, returning the engine and any
    /// completions still in the sink.
    ///
    /// # Errors
    ///
    /// [`MlcxError::Internal`] when a [`Submitter`] is still alive
    /// (join the host threads first) or a frontend lock was poisoned.
    pub fn into_engine(self) -> Result<(StorageEngine, Vec<Completion>), MlcxError> {
        let shared = Arc::try_unwrap(self.shared).map_err(|_| MlcxError::Internal {
            reason: "submitters still alive; join host threads before into_engine".to_string(),
        })?;
        let engine = shared
            .engine
            .into_inner()
            .map_err(|_| MlcxError::Internal {
                reason: "frontend engine lock poisoned by a panicked submitter thread".to_string(),
            })?;
        let sink = shared.sink.into_inner().map_err(|_| MlcxError::Internal {
            reason: "frontend sink lock poisoned by a panicked submitter thread".to_string(),
        })?;
        Ok((engine, sink))
    }
}

impl std::fmt::Debug for HostFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostFrontend")
            .field("submitters", &(Arc::strong_count(&self.shared) - 1))
            .finish()
    }
}

/// One host thread's handle for pushing work through a
/// [`HostFrontend`].
#[derive(Clone)]
pub struct Submitter {
    shared: Arc<Shared>,
}

impl Submitter {
    /// Submits a batch, transparently absorbing backpressure: on
    /// [`MlcxError::QueueFull`] the engine's queues are drained into
    /// the frontend's shared sink and the batch is retried. Any other
    /// validation error is returned as-is (nothing enqueued).
    ///
    /// # Errors
    ///
    /// As for
    /// [`SubmissionQueue::submit_owned`](crate::engine::SubmissionQueue::submit_owned),
    /// except [`MlcxError::QueueFull`] which is handled internally;
    /// plus [`MlcxError::Internal`] on a poisoned frontend lock.
    pub fn submit(&self, commands: Vec<Command>) -> Result<Vec<CmdId>, MlcxError> {
        loop {
            let mut engine = lock(&self.shared.engine, "engine")?;
            // Borrowing submit: the batch survives a QueueFull rejection
            // (submission is atomic — nothing was enqueued) so it can be
            // retried after reaping.
            match engine.sq().submit(&commands) {
                Ok(ids) => return Ok(ids),
                Err(MlcxError::QueueFull { .. }) => {
                    // Make room the way a host driver does: reap
                    // completions into the shared sink, then resubmit.
                    let done = engine.cq().drain();
                    drop(engine);
                    let mut sink = lock(&self.shared.sink, "sink")?;
                    sink.extend(done);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drains every queued command and pending completion into the
    /// frontend's shared sink.
    ///
    /// # Errors
    ///
    /// [`MlcxError::Internal`] when a submitter thread panicked while
    /// holding a frontend lock.
    pub fn drain_into_sink(&self) -> Result<(), MlcxError> {
        let mut engine = lock(&self.shared.engine, "engine")?;
        let done = engine.cq().drain();
        drop(engine);
        let mut sink = lock(&self.shared.sink, "sink")?;
        sink.extend(done);
        Ok(())
    }
}

impl std::fmt::Debug for Submitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Submitter")
    }
}
