//! Concurrent host frontend: N submitter threads over one engine.
//!
//! The offline tree models a multi-tenant host with plain
//! `std::thread` workers (no async runtime): a [`HostFrontend`] wraps a
//! [`StorageEngine`] behind a mutex and hands out cloneable
//! [`Submitter`]s, one per host thread. Each submitter pushes batches
//! through the engine's typed submission queue; when a service's
//! bounded depth pushes back ([`MlcxError::QueueFull`]), the submitter
//! drains completions into the frontend's shared sink and retries —
//! the same drain-and-resubmit loop a real host driver runs on a full
//! NVMe submission queue.
//!
//! Completions end up in one shared sink regardless of which thread's
//! submission produced them; [`HostFrontend::into_engine`] tears the
//! frontend down and hands the engine back for report extraction.
//!
//! Determinism note: with several submitters racing, the *interleaving*
//! of batches (and therefore per-die RNG draws) is scheduling-dependent
//! — but the *set* of functional outcomes per service is not, which is
//! what the multi-submitter stress test pins. Single-submitter use is
//! fully deterministic.

use std::sync::{Arc, Mutex};

use crate::engine::{CmdId, Command, Completion, StorageEngine};
use crate::error::MlcxError;

struct Shared {
    engine: Mutex<StorageEngine>,
    sink: Mutex<Vec<Completion>>,
}

/// A multi-threaded host frontend over one [`StorageEngine`].
pub struct HostFrontend {
    shared: Arc<Shared>,
}

impl HostFrontend {
    /// Wraps an engine for concurrent submission.
    pub fn new(engine: StorageEngine) -> Self {
        HostFrontend {
            shared: Arc::new(Shared {
                engine: Mutex::new(engine),
                sink: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A new submitter sharing this frontend's engine. Submitters are
    /// cheap to clone and `Send` — hand one to each host thread.
    pub fn submitter(&self) -> Submitter {
        Submitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drains every queued command and pending completion into the
    /// shared sink, then returns the sink's contents so far.
    pub fn drain(&self) -> Vec<Completion> {
        let mut engine = self.shared.engine.lock().expect("engine lock");
        let done = engine.cq().drain();
        drop(engine);
        let mut sink = self.shared.sink.lock().expect("sink lock");
        sink.extend(done);
        std::mem::take(&mut sink)
    }

    /// Tears the frontend down, returning the engine and any
    /// completions still in the sink.
    ///
    /// # Panics
    ///
    /// Panics if any [`Submitter`] is still alive — join the host
    /// threads first.
    pub fn into_engine(self) -> (StorageEngine, Vec<Completion>) {
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("submitters still alive; join host threads first"));
        let engine = shared.engine.into_inner().expect("engine lock");
        let sink = shared.sink.into_inner().expect("sink lock");
        (engine, sink)
    }
}

impl std::fmt::Debug for HostFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostFrontend")
            .field("submitters", &(Arc::strong_count(&self.shared) - 1))
            .finish()
    }
}

/// One host thread's handle for pushing work through a
/// [`HostFrontend`].
#[derive(Clone)]
pub struct Submitter {
    shared: Arc<Shared>,
}

impl Submitter {
    /// Submits a batch, transparently absorbing backpressure: on
    /// [`MlcxError::QueueFull`] the engine's queues are drained into
    /// the frontend's shared sink and the batch is retried. Any other
    /// validation error is returned as-is (nothing enqueued).
    ///
    /// # Errors
    ///
    /// As for
    /// [`SubmissionQueue::submit_owned`](crate::engine::SubmissionQueue::submit_owned),
    /// except [`MlcxError::QueueFull`] which is handled internally.
    pub fn submit(&self, commands: Vec<Command>) -> Result<Vec<CmdId>, MlcxError> {
        loop {
            let mut engine = self.shared.engine.lock().expect("engine lock");
            // Borrowing submit: the batch survives a QueueFull rejection
            // (submission is atomic — nothing was enqueued) so it can be
            // retried after reaping.
            match engine.sq().submit(&commands) {
                Ok(ids) => return Ok(ids),
                Err(MlcxError::QueueFull { .. }) => {
                    // Make room the way a host driver does: reap
                    // completions into the shared sink, then resubmit.
                    let done = engine.cq().drain();
                    drop(engine);
                    let mut sink = self.shared.sink.lock().expect("sink lock");
                    sink.extend(done);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Drains every queued command and pending completion into the
    /// frontend's shared sink.
    pub fn drain_into_sink(&self) {
        let mut engine = self.shared.engine.lock().expect("engine lock");
        let done = engine.cq().drain();
        drop(engine);
        let mut sink = self.shared.sink.lock().expect("sink lock");
        sink.extend(done);
    }
}

impl std::fmt::Debug for Submitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Submitter")
    }
}
