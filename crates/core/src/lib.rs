//! Cross-layer optimization framework for MLC NAND flash memories.
//!
//! This crate is the **primary contribution** of the DATE 2012 paper: it
//! co-configures the architecture layer (the adaptive BCH correction
//! capability `t` of `mlcx-bch`) with the technology layer (the ISPP-SV /
//! ISPP-DV program-algorithm selection of `mlcx-nand`) and quantifies the
//! resulting trade-off space:
//!
//! * [`engine`] — the event-driven host engine [`StorageEngine`]: typed
//!   submission/completion queues over one virtual clock, per-service
//!   QoS (weights, deadlines, bounded depth), per-batch latency/energy
//!   and tail-latency accounting, and memoized cross-layer
//!   configuration (see [`engine::WearBucketing`]).
//! * [`event`] — the discrete-event vocabulary: [`SchedPolicy`],
//!   [`QosSpec`] and the shared [`PolicyBundle`] both the engine and
//!   scenario builders accept.
//! * [`fault`] — deterministic fault injection: [`FaultPlan`] schedules
//!   partial-program (power-loss) interruptions over the engine's
//!   program stream from its own seeded RNG.
//! * [`frontend`] — [`HostFrontend`]: N concurrent host submitters
//!   (plain threads) over one engine, with backpressure-aware
//!   submission.
//! * [`uber`] — eq. (1) of the paper: the uncorrectable bit error rate of
//!   a `t`-error-correcting page code at a given RBER, in log domain, and
//!   the required-`t` solver that drives every ECC schedule.
//! * `model` — [`SubsystemModel`]: one struct bundling every calibrated
//!   sub-model (aging, ISPP timing, ECC hardware, buses, HV power) with
//!   evaluation of complete operating points.
//! * [`policy`] — the cross-layer optimizer: objective-driven
//!   configuration ([`Objective::MinUber`], [`Objective::MaxReadThroughput`])
//!   and the controller-only strawman the paper argues against.
//! * [`experiments`] — one generator per evaluation figure (Fig. 4-11
//!   plus the ISPP-DV twin of Fig. 7 lost from the camera-ready), each
//!   rendering the same series the paper plots.
//! * [`sim`] — trace-driven workload and lifetime simulation: synthetic
//!   trace generators, a [`Scenario`] builder for multi-service mixes
//!   across wear fast-forwards, and a [`WorkloadRunner`] routing
//!   logical traffic through the FTL and the batched engine.
//!
//! # Example
//!
//! ```
//! use mlcx_core::{Objective, SubsystemModel};
//!
//! let model = SubsystemModel::date2012();
//! // At end of life, the cross-layer max-read configuration gains ~30 %
//! // read throughput over the baseline at the same UBER target.
//! let base = model.configure(Objective::Baseline, 1_000_000);
//! let fast = model.configure(Objective::MaxReadThroughput, 1_000_000);
//! let mb = model.metrics(&base, 1_000_000);
//! let mf = model.metrics(&fast, 1_000_000);
//! assert!(mf.read_mbps / mb.read_mbps > 1.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;

pub mod engine;
pub mod event;
pub mod experiments;
pub mod fault;
pub mod frontend;
pub mod policy;
pub mod report;
pub mod services;
pub mod sim;
pub mod uber;

pub use engine::{
    BatchReport, CmdId, Command, CommandOutput, Completion, CompletionQueue, EngineBuilder,
    ServiceHandle, StorageEngine, SubmissionQueue, WearBucketing,
};
pub use error::MlcxError;
pub use event::{PolicyBundle, QosSpec, SchedPolicy};
pub use fault::{FaultInjector, FaultPlan};
pub use frontend::{HostFrontend, Submitter};
pub use mlcx_controller::CodecKernel;
pub use model::{Metrics, OperatingPoint, SubsystemModel, SubsystemModelBuilder};
pub use policy::Objective;
pub use services::{ServiceError, ServiceRegion, ServiceStats};
pub use sim::{Scenario, ScenarioReport, TraceGenerator, TraceKind, WorkloadRunner};
