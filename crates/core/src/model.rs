//! The complete cross-layer subsystem model and operating-point metrics.

use std::fmt;

use mlcx_bch::hardware::{EccHardware, EccPowerModel};
use mlcx_controller::buffer::LoadStrategy;
use mlcx_controller::flash_if::FlashInterface;
use mlcx_controller::ocp::OcpSocket;
use mlcx_controller::throughput::{read_path, write_path, ReadPath, WritePath};
use mlcx_hv::HvSubsystem;
use mlcx_nand::ispp::{pattern_profile, program_profile, IsppConfig, ProgramProfile};
use mlcx_nand::{AgingModel, MlcLevel, NandTiming, ProgramAlgorithm};

use crate::error::MlcxError;
use crate::policy::Objective;
use crate::uber;

/// One point of the cross-layer configuration space: a program algorithm
/// at the technology layer plus a correction capability at the
/// architecture layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    /// The physical-layer knob.
    pub algorithm: ProgramAlgorithm,
    /// The architecture-layer knob.
    pub correction: u32,
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / t={}", self.algorithm, self.correction)
    }
}

/// Evaluated quality metrics of an operating point at a wear level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `log10` of the uncorrectable bit error rate (eq. 1).
    pub log10_uber: f64,
    /// Sustained read throughput, MB/s.
    pub read_mbps: f64,
    /// Sustained write throughput, MB/s.
    pub write_mbps: f64,
    /// Average device power during programming, watts.
    pub program_power_w: f64,
    /// ECC sub-system power, watts.
    pub ecc_power_w: f64,
}

/// Every calibrated sub-model of the memory sub-system in one place.
///
/// This is the paper's "extensive modeling, simulation and implementation
/// framework" reduced to its quantitative core: evaluate any
/// (algorithm, t, wear) triple into UBER, throughputs and power.
///
/// # Example
///
/// ```
/// use mlcx_core::{OperatingPoint, SubsystemModel};
/// use mlcx_nand::ProgramAlgorithm;
///
/// let model = SubsystemModel::date2012();
/// let op = OperatingPoint { algorithm: ProgramAlgorithm::IsppSv, correction: 65 };
/// let m = model.metrics(&op, 1_000_000);
/// assert!(m.log10_uber <= -11.0); // meets the paper's target at EOL
/// ```
#[derive(Debug, Clone)]
pub struct SubsystemModel {
    /// Lifetime RBER curves.
    pub aging: AgingModel,
    /// ISPP staircase/timing parameters.
    pub ispp: IsppConfig,
    /// ECC hardware latency parameters.
    pub ecc_hw: EccHardware,
    /// ECC power model.
    pub ecc_power: EccPowerModel,
    /// HV subsystem (program power).
    pub hv: HvSubsystem,
    /// Flash bus interface.
    pub bus: FlashInterface,
    /// NoC socket interface.
    pub ocp: OcpSocket,
    /// Device timing constants.
    pub timing: NandTiming,
    /// Page-buffer load strategy.
    pub load_strategy: LoadStrategy,
    /// Message length (one page), bits.
    pub k_bits: usize,
    /// Galois-field degree of the codec.
    pub ecc_m: u32,
    /// Capability floor.
    pub tmin: u32,
    /// Capability ceiling.
    pub tmax: u32,
    /// The UBER requirement (1e-11 in the paper).
    pub uber_target: f64,
}

impl SubsystemModel {
    /// A fluent builder seeded with the [`SubsystemModel::date2012`]
    /// preset; every knob is overridable before
    /// [`SubsystemModelBuilder::build`].
    pub fn builder() -> SubsystemModelBuilder {
        SubsystemModelBuilder {
            model: Self::date2012(),
        }
    }

    /// The paper's full calibration.
    pub fn date2012() -> Self {
        SubsystemModel {
            aging: AgingModel::date2012(),
            ispp: IsppConfig::date2012(),
            ecc_hw: EccHardware::date2012(),
            ecc_power: EccPowerModel::date2012(),
            hv: HvSubsystem::date2012(),
            bus: FlashInterface::date2012(),
            ocp: OcpSocket::date2012(),
            timing: NandTiming::date2012(),
            load_strategy: LoadStrategy::OneRound,
            k_bits: 4096 * 8,
            ecc_m: 16,
            tmin: 3,
            tmax: 65,
            uber_target: 1e-11,
        }
    }

    /// RBER of an algorithm at a wear level.
    pub fn rber(&self, algorithm: ProgramAlgorithm, cycles: u64) -> f64 {
        self.aging.rber(algorithm, cycles)
    }

    /// The ECC schedule: smallest `t` meeting the UBER target for the
    /// algorithm's RBER at this wear level (clamped to `tmin`), or `None`
    /// past the capability ceiling.
    pub fn required_t(&self, algorithm: ProgramAlgorithm, cycles: u64) -> Option<u32> {
        uber::required_t(
            self.k_bits,
            self.ecc_m,
            self.rber(algorithm, cycles),
            self.uber_target,
            self.tmin,
            self.tmax,
        )
    }

    /// Parity bits at capability `t` (`m * t` for the shortened code).
    pub fn parity_bits(&self, t: u32) -> usize {
        self.ecc_m as usize * t as usize
    }

    /// `log10(UBER)` of an operating point at a wear level.
    ///
    /// Uses the paper's eq. (1) inside its validity regime; outside it
    /// (capability below the mean raw error count — only reachable by
    /// deliberately mis-configured points like the controller-only
    /// strawman) falls back to the exact tail probability so the metric
    /// stays honest.
    pub fn log10_uber(&self, op: &OperatingPoint, cycles: u64) -> f64 {
        self.log10_uber_at_rber(op, self.rber(op.algorithm, cycles))
    }

    /// `log10(UBER)` of an operating point at an explicitly supplied
    /// raw bit error rate — the entry point for RBER compositions the
    /// endurance curves alone cannot express, e.g. endurance *plus* the
    /// additive read-disturb/retention terms of
    /// [`DisturbModel`](mlcx_nand::disturb::DisturbModel). Same eq. (1)
    /// / exact-tail fallback as [`SubsystemModel::log10_uber`].
    pub fn log10_uber_at_rber(&self, op: &OperatingPoint, rber: f64) -> f64 {
        let n = self.k_bits + self.parity_bits(op.correction);
        if uber::first_term_valid(n, op.correction, rber) {
            uber::log10_uber(n, op.correction, rber)
        } else {
            uber::log10_uber_exact(n, op.correction, rber)
        }
    }

    /// Read-path latency breakdown at capability `t`.
    pub fn read_path(&self, t: u32) -> ReadPath {
        read_path(
            &self.timing,
            &self.bus,
            &self.ecc_hw,
            self.k_bits,
            self.parity_bits(t),
            t,
        )
    }

    /// Write-path latency breakdown for an operating point at a wear
    /// level.
    pub fn write_path(&self, op: &OperatingPoint, cycles: u64) -> WritePath {
        let profile = program_profile(&self.ispp, op.algorithm, cycles);
        write_path(
            &self.ocp,
            self.load_strategy,
            &self.bus,
            &self.ecc_hw,
            self.k_bits,
            self.parity_bits(op.correction),
            profile.duration_s,
        )
    }

    /// Average device power over a mixed-pattern page program.
    pub fn program_power_w(&self, algorithm: ProgramAlgorithm, cycles: u64) -> f64 {
        let profile = program_profile(&self.ispp, algorithm, cycles);
        self.profile_power_w(&profile)
    }

    /// Average device power over a single-level pattern program (the
    /// L1/L2/L3 sweeps of Fig. 6).
    pub fn pattern_power_w(
        &self,
        algorithm: ProgramAlgorithm,
        level: MlcLevel,
        cycles: u64,
    ) -> f64 {
        let profile = pattern_profile(&self.ispp, algorithm, level, cycles);
        self.profile_power_w(&profile)
    }

    fn profile_power_w(&self, profile: &ProgramProfile) -> f64 {
        let pulse_time = profile.pulses * self.ispp.pulse_s;
        let verify_time = profile.pulses * profile.verifies_per_pulse * self.ispp.verify_s;
        let pulse_energy = pulse_time * self.hv.pulse_power_w(profile.mean_pulse_v);
        let verify_energy = verify_time * self.hv.verify_power_w();
        (pulse_energy + verify_energy) / (pulse_time + verify_time)
    }

    /// Full metric evaluation of an operating point.
    pub fn metrics(&self, op: &OperatingPoint, cycles: u64) -> Metrics {
        let rp = self.read_path(op.correction);
        let wp = self.write_path(op, cycles);
        Metrics {
            log10_uber: self.log10_uber(op, cycles),
            read_mbps: rp.throughput_mbps(self.k_bits / 8),
            write_mbps: wp.throughput_mbps(self.k_bits / 8),
            program_power_w: self.program_power_w(op.algorithm, cycles),
            ecc_power_w: self.ecc_power.power_w(op.correction),
        }
    }

    /// The operating point an [`Objective`] selects at a wear level.
    ///
    /// * `Baseline` — ISPP-SV with the ECC tracking the UBER target;
    /// * `MinUber` — ISPP-DV while *keeping the SV ECC schedule*
    ///   (Section 6.3.1: UBER boost at zero read cost);
    /// * `MaxReadThroughput` — ISPP-DV with the ECC relaxed to the DV
    ///   schedule (Section 6.3.2: read gain at constant UBER).
    ///
    /// Falls back to the capability ceiling when the RBER exceeds what
    /// the codec can serve (end of usable life).
    pub fn configure(&self, objective: Objective, cycles: u64) -> OperatingPoint {
        self.configure_with_extra_rber(objective, cycles, 0.0)
    }

    /// [`SubsystemModel::configure`] with an additive RBER term on top
    /// of the endurance curves — the entry point for scheduling against
    /// workload-dependent mechanisms the wear axis cannot see
    /// (read-disturb / retention, per
    /// [`DisturbModel`](mlcx_nand::disturb::DisturbModel)): the ECC
    /// schedule is solved for `rber(algorithm, cycles) + extra_rber`,
    /// so the selected capability keeps meeting the UBER target on
    /// disturbed data. `extra_rber = 0.0` is exactly
    /// [`SubsystemModel::configure`].
    pub fn configure_with_extra_rber(
        &self,
        objective: Objective,
        cycles: u64,
        extra_rber: f64,
    ) -> OperatingPoint {
        let t_for = |algorithm| {
            uber::required_t(
                self.k_bits,
                self.ecc_m,
                self.rber(algorithm, cycles) + extra_rber,
                self.uber_target,
                self.tmin,
                self.tmax,
            )
            .unwrap_or(self.tmax)
        };
        let t_sv = t_for(ProgramAlgorithm::IsppSv);
        match objective {
            Objective::Baseline => OperatingPoint {
                algorithm: ProgramAlgorithm::IsppSv,
                correction: t_sv,
            },
            Objective::MinUber => OperatingPoint {
                algorithm: ProgramAlgorithm::IsppDv,
                correction: t_sv,
            },
            Objective::MaxReadThroughput => OperatingPoint {
                algorithm: ProgramAlgorithm::IsppDv,
                correction: t_for(ProgramAlgorithm::IsppDv),
            },
        }
    }
}

impl Default for SubsystemModel {
    fn default() -> Self {
        Self::date2012()
    }
}

/// Fluent construction of a [`SubsystemModel`], starting from the
/// paper's calibration.
///
/// # Example
///
/// ```
/// use mlcx_core::SubsystemModel;
///
/// // Tighten the reliability requirement by two orders of magnitude:
/// // the schedule responds with a higher capability everywhere.
/// let strict = SubsystemModel::builder().uber_target(1e-13).build()?;
/// let nominal = SubsystemModel::date2012();
/// use mlcx_nand::ProgramAlgorithm;
/// let t_strict = strict.required_t(ProgramAlgorithm::IsppSv, 100_000).unwrap();
/// let t_nominal = nominal.required_t(ProgramAlgorithm::IsppSv, 100_000).unwrap();
/// assert!(t_strict > t_nominal);
/// # Ok::<(), mlcx_core::MlcxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubsystemModelBuilder {
    model: SubsystemModel,
}

impl SubsystemModelBuilder {
    /// Lifetime RBER curves.
    pub fn aging(mut self, aging: AgingModel) -> Self {
        self.model.aging = aging;
        self
    }

    /// ISPP staircase/timing parameters.
    pub fn ispp(mut self, ispp: IsppConfig) -> Self {
        self.model.ispp = ispp;
        self
    }

    /// ECC hardware latency parameters.
    pub fn ecc_hw(mut self, ecc_hw: EccHardware) -> Self {
        self.model.ecc_hw = ecc_hw;
        self
    }

    /// ECC power model.
    pub fn ecc_power(mut self, ecc_power: EccPowerModel) -> Self {
        self.model.ecc_power = ecc_power;
        self
    }

    /// HV subsystem (program power).
    pub fn hv(mut self, hv: HvSubsystem) -> Self {
        self.model.hv = hv;
        self
    }

    /// Flash bus interface.
    pub fn bus(mut self, bus: FlashInterface) -> Self {
        self.model.bus = bus;
        self
    }

    /// NoC socket interface.
    pub fn ocp(mut self, ocp: OcpSocket) -> Self {
        self.model.ocp = ocp;
        self
    }

    /// Device timing constants.
    pub fn timing(mut self, timing: NandTiming) -> Self {
        self.model.timing = timing;
        self
    }

    /// Page-buffer load strategy.
    pub fn load_strategy(mut self, strategy: LoadStrategy) -> Self {
        self.model.load_strategy = strategy;
        self
    }

    /// Message length (one page), bits.
    pub fn k_bits(mut self, k_bits: usize) -> Self {
        self.model.k_bits = k_bits;
        self
    }

    /// Galois-field degree of the codec.
    pub fn ecc_m(mut self, m: u32) -> Self {
        self.model.ecc_m = m;
        self
    }

    /// Capability floor.
    pub fn tmin(mut self, tmin: u32) -> Self {
        self.model.tmin = tmin;
        self
    }

    /// Capability ceiling.
    pub fn tmax(mut self, tmax: u32) -> Self {
        self.model.tmax = tmax;
        self
    }

    /// The UBER requirement (1e-11 in the paper).
    pub fn uber_target(mut self, target: f64) -> Self {
        self.model.uber_target = target;
        self
    }

    /// Validates and produces the model.
    ///
    /// # Errors
    ///
    /// [`MlcxError::InvalidConfig`] when the capability range is empty,
    /// the field degree is outside 2..=16, the page is empty, or the
    /// UBER target is not a probability in (0, 1).
    pub fn build(self) -> Result<SubsystemModel, MlcxError> {
        let m = &self.model;
        if m.tmin == 0 || m.tmin > m.tmax {
            return Err(MlcxError::InvalidConfig {
                reason: format!("empty capability range {}..={}", m.tmin, m.tmax),
            });
        }
        if !(2..=16).contains(&m.ecc_m) {
            return Err(MlcxError::InvalidConfig {
                reason: format!("field degree m = {} outside 2..=16", m.ecc_m),
            });
        }
        if m.k_bits == 0 {
            return Err(MlcxError::InvalidConfig {
                reason: "message length k_bits must be positive".into(),
            });
        }
        if !(m.uber_target > 0.0 && m.uber_target < 1.0) {
            return Err(MlcxError::InvalidConfig {
                reason: format!("UBER target {} outside (0, 1)", m.uber_target),
            });
        }
        Ok(self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SubsystemModel {
        SubsystemModel::date2012()
    }

    #[test]
    fn ecc_schedule_matches_paper_working_points() {
        let m = model();
        assert_eq!(m.required_t(ProgramAlgorithm::IsppSv, 100), Some(3));
        assert_eq!(m.required_t(ProgramAlgorithm::IsppDv, 100), Some(3));
        assert_eq!(m.required_t(ProgramAlgorithm::IsppSv, 1_000_000), Some(65));
        assert_eq!(m.required_t(ProgramAlgorithm::IsppDv, 1_000_000), Some(14));
    }

    #[test]
    fn schedule_is_monotone_over_life() {
        let m = model();
        for alg in ProgramAlgorithm::ALL {
            let mut prev = 0;
            for c in AgingModel::lifetime_grid(1, 1_000_000, 3) {
                let t = m.required_t(alg, c).unwrap();
                assert!(t >= prev, "{alg} at {c}: t = {t}");
                prev = t;
            }
        }
    }

    #[test]
    fn all_objectives_meet_the_uber_target() {
        let m = model();
        for objective in [
            Objective::Baseline,
            Objective::MinUber,
            Objective::MaxReadThroughput,
        ] {
            for c in [1u64, 1_000, 100_000, 1_000_000] {
                let op = m.configure(objective, c);
                let log_u = m.log10_uber(&op, c);
                assert!(
                    log_u <= -11.0 + 1e-9,
                    "{objective:?} at {c} cycles: log10 UBER = {log_u}"
                );
            }
        }
    }

    #[test]
    fn min_uber_beats_baseline_without_read_cost() {
        let m = model();
        let c = 1_000_000;
        let base = m.configure(Objective::Baseline, c);
        let safe = m.configure(Objective::MinUber, c);
        let mb = m.metrics(&base, c);
        let ms = m.metrics(&safe, c);
        assert!(ms.log10_uber < mb.log10_uber - 5.0, "UBER boost expected");
        assert!((ms.read_mbps - mb.read_mbps).abs() / mb.read_mbps < 1e-9);
        assert!(ms.write_mbps < mb.write_mbps);
    }

    #[test]
    fn max_read_gains_throughput_at_same_uber() {
        let m = model();
        let c = 1_000_000;
        let base = m.configure(Objective::Baseline, c);
        let fast = m.configure(Objective::MaxReadThroughput, c);
        let mb = m.metrics(&base, c);
        let mf = m.metrics(&fast, c);
        let gain = mf.read_mbps / mb.read_mbps - 1.0;
        assert!((0.25..0.35).contains(&gain), "gain = {gain}");
        assert!(mf.log10_uber <= -11.0);
        // ECC power relaxes from 7 mW to ~1 mW (Section 6.3.2).
        assert!((mb.ecc_power_w - 7e-3).abs() < 0.5e-3);
        assert!((mf.ecc_power_w - 1e-3).abs() < 0.5e-3);
    }

    #[test]
    fn program_power_in_fig6_band_and_ordering() {
        let m = model();
        for c in [1u64, 1_000, 100_000] {
            let sv = m.program_power_w(ProgramAlgorithm::IsppSv, c);
            let dv = m.program_power_w(ProgramAlgorithm::IsppDv, c);
            assert!((0.14..0.19).contains(&sv), "sv = {sv}");
            let delta_mw = (dv - sv) * 1e3;
            assert!((4.0..12.0).contains(&delta_mw), "delta = {delta_mw} mW");
        }
        // Pattern ordering L1 < L2 < L3.
        let p = |lvl| m.pattern_power_w(ProgramAlgorithm::IsppSv, lvl, 1_000);
        assert!(p(MlcLevel::L1) < p(MlcLevel::L2));
        assert!(p(MlcLevel::L2) < p(MlcLevel::L3));
    }

    #[test]
    fn operating_point_display() {
        let op = OperatingPoint {
            algorithm: ProgramAlgorithm::IsppDv,
            correction: 14,
        };
        assert_eq!(op.to_string(), "ISPP-DV / t=14");
    }
}
