//! Cross-layer configuration objectives and the trade-off explorer.

use mlcx_nand::ProgramAlgorithm;

use crate::model::{Metrics, OperatingPoint, SubsystemModel};

/// What the host asks the memory sub-system to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Factory default: ISPP-SV, ECC tracking the UBER target.
    Baseline,
    /// Mission-critical storage (web payments, OS upgrades, backups):
    /// minimize UBER without giving up read throughput.
    MinUber,
    /// Multimedia/read-intensive storage: maximize read throughput
    /// without giving up UBER.
    MaxReadThroughput,
}

impl Objective {
    /// All objectives, baseline first.
    pub const ALL: [Objective; 3] = [
        Objective::Baseline,
        Objective::MinUber,
        Objective::MaxReadThroughput,
    ];
}

/// An evaluated configuration alternative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alternative {
    /// The configuration.
    pub op: OperatingPoint,
    /// Its evaluated metrics.
    pub metrics: Metrics,
}

/// The *controller-only* attempt at maximizing read throughput that the
/// paper argues against (Section 6.3.2): reduce `t` below the SV schedule
/// without touching the physical layer. Returns the configuration that
/// matches the read latency of the cross-layer solution — and its now
/// degraded UBER.
pub fn controller_only_read_boost(model: &SubsystemModel, cycles: u64) -> Alternative {
    let cross = model.configure(Objective::MaxReadThroughput, cycles);
    let op = OperatingPoint {
        algorithm: ProgramAlgorithm::IsppSv,
        correction: cross.correction,
    };
    Alternative {
        op,
        metrics: model.metrics(&op, cycles),
    }
}

/// Enumerates the whole (algorithm x capability) plane at a wear level —
/// the raw material for Pareto analysis.
pub fn enumerate_plane(model: &SubsystemModel, cycles: u64, t_stride: u32) -> Vec<Alternative> {
    let mut out = Vec::new();
    for algorithm in ProgramAlgorithm::ALL {
        let mut t = model.tmin;
        while t <= model.tmax {
            let op = OperatingPoint {
                algorithm,
                correction: t,
            };
            out.push(Alternative {
                op,
                metrics: model.metrics(&op, cycles),
            });
            t += t_stride;
        }
    }
    out
}

/// Filters [`enumerate_plane`] down to the Pareto frontier over
/// (UBER, read throughput, write throughput) — lower UBER and higher
/// throughputs dominate.
pub fn pareto_frontier(model: &SubsystemModel, cycles: u64, t_stride: u32) -> Vec<Alternative> {
    let all = enumerate_plane(model, cycles, t_stride);
    let dominates = |a: &Metrics, b: &Metrics| {
        let not_worse = a.log10_uber <= b.log10_uber
            && a.read_mbps >= b.read_mbps
            && a.write_mbps >= b.write_mbps;
        let strictly_better =
            a.log10_uber < b.log10_uber || a.read_mbps > b.read_mbps || a.write_mbps > b.write_mbps;
        not_worse && strictly_better
    };
    all.iter()
        .filter(|cand| {
            !all.iter()
                .any(|other| dominates(&other.metrics, &cand.metrics))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_only_boost_sacrifices_uber() {
        // The paper's core argument: at the architecture layer alone, the
        // read gain is paid in UBER; the cross-layer solution is not.
        let model = SubsystemModel::date2012();
        let cycles = 1_000_000;
        let strawman = controller_only_read_boost(&model, cycles);
        let cross = model.configure(Objective::MaxReadThroughput, cycles);
        let cross_m = model.metrics(&cross, cycles);

        // Same decode latency (same t), hence same read throughput...
        assert!((strawman.metrics.read_mbps - cross_m.read_mbps).abs() < 1e-9);
        // ...but the strawman misses the 1e-11 target by orders of
        // magnitude, while the cross-layer point holds it.
        assert!(strawman.metrics.log10_uber > -11.0 + 3.0);
        assert!(cross_m.log10_uber <= -11.0);
    }

    #[test]
    fn plane_enumeration_covers_both_algorithms() {
        let model = SubsystemModel::date2012();
        let plane = enumerate_plane(&model, 1_000, 10);
        assert!(plane.len() >= 14);
        assert!(plane
            .iter()
            .any(|a| a.op.algorithm == ProgramAlgorithm::IsppSv));
        assert!(plane
            .iter()
            .any(|a| a.op.algorithm == ProgramAlgorithm::IsppDv));
    }

    #[test]
    fn pareto_frontier_is_nonempty_subset() {
        let model = SubsystemModel::date2012();
        let plane = enumerate_plane(&model, 100_000, 8);
        let frontier = pareto_frontier(&model, 100_000, 8);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= plane.len());
        // Every frontier point must actually come from the plane.
        for alt in &frontier {
            assert!(plane.iter().any(|p| p.op == alt.op));
        }
    }

    #[test]
    fn frontier_contains_extreme_reliability_point() {
        // DV at max capability minimizes UBER; nothing dominates it.
        let model = SubsystemModel::date2012();
        let frontier = pareto_frontier(&model, 100_000, 4);
        assert!(frontier.iter().any(|a| {
            a.op.algorithm == ProgramAlgorithm::IsppDv && a.op.correction >= model.tmax - 4
        }));
    }
}
