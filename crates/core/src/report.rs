//! Minimal fixed-width table rendering for the experiment harness.

use std::fmt::Write as _;

/// A fixed-width ASCII table builder.
///
/// # Example
///
/// ```
/// use mlcx_core::report::Table;
///
/// let mut t = Table::new(vec!["cycles", "RBER"]);
/// t.row(vec!["100".into(), "1.5e-6".into()]);
/// let s = t.render();
/// assert!(s.contains("cycles"));
/// assert!(s.contains("1.5e-6"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float in compact scientific notation (`1.50e-6`).
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Formats a float with 2 decimals.
pub fn fixed2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers share the final column position.
        assert!(lines[2].ends_with('2'));
        assert!(lines[3].ends_with("2000"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(sci(1.5e-6), "1.500e-6");
        assert_eq!(fixed2(12.3456), "12.35");
    }
}
