//! Differentiated storage services — the paper's future-work realized.
//!
//! The conclusions promise to "implement the memory controller taking
//! advantage of the new trade-offs, thus exposing differentiated storage
//! services to applications". This module does exactly that: it carves
//! the device's block space into named *service regions*, each bound to a
//! cross-layer [`Objective`], and routes every write through the
//! region-appropriate (algorithm, t) configuration — re-deriving it from
//! the region's wear before each write, so the schedule tracks aging
//! automatically.

use std::collections::HashMap;
use std::ops::Range;

use mlcx_controller::{ConfigCommand, CtrlError, MemoryController, ReadReport, WriteReport};

use crate::model::SubsystemModel;
use crate::policy::Objective;

/// A named region of the device bound to a service objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRegion {
    /// Human-readable service name ("os-image", "media", ...).
    pub name: String,
    /// The cross-layer objective governing the region.
    pub objective: Objective,
    /// The block range the region owns.
    pub blocks: Range<usize>,
}

/// Errors raised by the service directory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Two regions claim the same block.
    Overlap {
        /// The existing region.
        existing: String,
        /// The new region that collides with it.
        incoming: String,
    },
    /// No region has the requested name.
    UnknownService {
        /// The name that failed to resolve.
        name: String,
    },
    /// A page address fell outside the region.
    OutOfRegion {
        /// The service name.
        name: String,
        /// The offending block.
        block: usize,
    },
    /// Propagated controller error.
    Ctrl(CtrlError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overlap { existing, incoming } => {
                write!(f, "region {incoming} overlaps existing region {existing}")
            }
            ServiceError::UnknownService { name } => write!(f, "unknown service {name}"),
            ServiceError::OutOfRegion { name, block } => {
                write!(f, "block {block} outside region {name}")
            }
            ServiceError::Ctrl(e) => write!(f, "controller: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Ctrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtrlError> for ServiceError {
    fn from(e: CtrlError) -> Self {
        ServiceError::Ctrl(e)
    }
}

impl From<mlcx_nand::NandError> for ServiceError {
    fn from(e: mlcx_nand::NandError) -> Self {
        ServiceError::Ctrl(CtrlError::Nand(e))
    }
}

/// Per-service traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pages written through the service.
    pub pages_written: u64,
    /// Pages read through the service.
    pub pages_read: u64,
    /// Raw bit errors the ECC corrected for this service.
    pub corrected_bits: u64,
}

/// A memory controller fronted by a service directory.
///
/// # Example
///
/// ```
/// use mlcx_controller::{ControllerConfig, MemoryController};
/// use mlcx_core::services::ServicedStore;
/// use mlcx_core::{Objective, SubsystemModel};
///
/// let ctrl = MemoryController::new(ControllerConfig::date2012(), 9)?;
/// let mut store = ServicedStore::new(ctrl, SubsystemModel::date2012());
/// store.add_region("payments", Objective::MinUber, 0..4)?;
/// store.add_region("media", Objective::MaxReadThroughput, 4..16)?;
/// store.erase("media", 4)?;
/// store.write("media", 4, 0, &vec![0u8; 4096])?;
/// let read = store.read("media", 4, 0)?;
/// assert!(read.outcome.is_success());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServicedStore {
    ctrl: MemoryController,
    model: SubsystemModel,
    regions: Vec<ServiceRegion>,
    stats: HashMap<String, ServiceStats>,
}

impl ServicedStore {
    /// Wraps a controller with an empty service directory.
    pub fn new(ctrl: MemoryController, model: SubsystemModel) -> Self {
        ServicedStore {
            ctrl,
            model,
            regions: Vec::new(),
            stats: HashMap::new(),
        }
    }

    /// Registers a service region.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overlap`] when the block range collides with an
    /// existing region.
    pub fn add_region(
        &mut self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
    ) -> Result<(), ServiceError> {
        for existing in &self.regions {
            if blocks.start < existing.blocks.end && existing.blocks.start < blocks.end {
                return Err(ServiceError::Overlap {
                    existing: existing.name.clone(),
                    incoming: name.to_string(),
                });
            }
        }
        self.regions.push(ServiceRegion {
            name: name.to_string(),
            objective,
            blocks,
        });
        self.stats.insert(name.to_string(), ServiceStats::default());
        Ok(())
    }

    /// The registered regions.
    pub fn regions(&self) -> &[ServiceRegion] {
        &self.regions
    }

    /// Traffic counters for a service.
    pub fn stats(&self, name: &str) -> Option<ServiceStats> {
        self.stats.get(name).copied()
    }

    /// The wrapped controller (wear inspection etc.).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable controller access (aging blocks in experiments).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    fn region(&self, name: &str) -> Result<ServiceRegion, ServiceError> {
        self.regions
            .iter()
            .find(|r| r.name == name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownService {
                name: name.to_string(),
            })
    }

    fn check_block(region: &ServiceRegion, block: usize) -> Result<(), ServiceError> {
        if !region.blocks.contains(&block) {
            return Err(ServiceError::OutOfRegion {
                name: region.name.clone(),
                block,
            });
        }
        Ok(())
    }

    /// Erases a block belonging to a service.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn erase(&mut self, name: &str, block: usize) -> Result<(), ServiceError> {
        let region = self.region(name)?;
        Self::check_block(&region, block)?;
        self.ctrl.erase_block(block)?;
        Ok(())
    }

    /// Writes a page through a service: the cross-layer configuration is
    /// re-derived from the region's objective and the block's current
    /// wear, then applied before the write.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn write(
        &mut self,
        name: &str,
        block: usize,
        page: usize,
        data: &[u8],
    ) -> Result<WriteReport, ServiceError> {
        let region = self.region(name)?;
        Self::check_block(&region, block)?;
        let wear = self.ctrl.device().block_cycles(block)?;
        let op = self.model.configure(region.objective, wear.max(1));
        self.ctrl.apply(ConfigCommand::SetAlgorithm(op.algorithm))?;
        self.ctrl.apply(ConfigCommand::SetCorrection(op.correction))?;
        let report = self.ctrl.write_page(block, page, data)?;
        let stats = self.stats.entry(name.to_string()).or_default();
        stats.pages_written += 1;
        Ok(report)
    }

    /// Reads a page through a service.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn read(
        &mut self,
        name: &str,
        block: usize,
        page: usize,
    ) -> Result<ReadReport, ServiceError> {
        let region = self.region(name)?;
        Self::check_block(&region, block)?;
        let report = self.ctrl.read_page(block, page)?;
        let stats = self.stats.entry(name.to_string()).or_default();
        stats.pages_read += 1;
        stats.corrected_bits += report.outcome.corrected_bits() as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_controller::ControllerConfig;
    use mlcx_nand::ProgramAlgorithm;

    fn store() -> ServicedStore {
        let ctrl = MemoryController::new(ControllerConfig::date2012(), 77).unwrap();
        ServicedStore::new(ctrl, SubsystemModel::date2012())
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..8).unwrap();
        let err = s.add_region("b", Objective::MinUber, 7..12).unwrap_err();
        assert!(matches!(err, ServiceError::Overlap { .. }));
        // Adjacent is fine.
        s.add_region("c", Objective::MinUber, 8..12).unwrap();
    }

    #[test]
    fn unknown_service_and_out_of_region() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..2).unwrap();
        assert!(matches!(
            s.erase("nope", 0),
            Err(ServiceError::UnknownService { .. })
        ));
        assert!(matches!(
            s.erase("a", 5),
            Err(ServiceError::OutOfRegion { .. })
        ));
    }

    #[test]
    fn services_apply_their_objectives() {
        let mut s = store();
        s.add_region("payments", Objective::MinUber, 0..2).unwrap();
        s.add_region("media", Objective::MaxReadThroughput, 2..4)
            .unwrap();
        // Age the media region to end of life so the objectives diverge.
        s.controller_mut().age_block(2, 1_000_000).unwrap();
        s.erase("payments", 0).unwrap();
        s.erase("media", 2).unwrap();

        let data = vec![0x5Au8; 4096];
        let w_pay = s.write("payments", 0, 0, &data).unwrap();
        let w_med = s.write("media", 2, 0, &data).unwrap();
        // Both services run ISPP-DV, but at very different capabilities:
        // payments at the fresh SV schedule (t = 3), media at the DV
        // end-of-life schedule (t = 14).
        assert_eq!(w_pay.algorithm, ProgramAlgorithm::IsppDv);
        assert_eq!(w_med.algorithm, ProgramAlgorithm::IsppDv);
        assert_eq!(w_pay.t_used, 3);
        assert_eq!(w_med.t_used, 14);

        let r = s.read("media", 2, 0).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.data, data);

        let stats = s.stats("media").unwrap();
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 1);
    }

    #[test]
    fn stats_isolated_per_service() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..2).unwrap();
        s.add_region("b", Objective::Baseline, 2..4).unwrap();
        s.erase("a", 0).unwrap();
        let data = vec![0u8; 4096];
        s.write("a", 0, 0, &data).unwrap();
        assert_eq!(s.stats("a").unwrap().pages_written, 1);
        assert_eq!(s.stats("b").unwrap().pages_written, 0);
        assert!(s.stats("zzz").is_none());
    }
}
