//! Differentiated storage services — the service-directory vocabulary.
//!
//! The conclusions promise to "implement the memory controller taking
//! advantage of the new trade-offs, thus exposing differentiated storage
//! services to applications". The realization of that promise is
//! [`StorageEngine`](crate::engine::StorageEngine); this module owns the
//! service-directory vocabulary it builds on: [`ServiceRegion`] (a named
//! block range bound to a cross-layer objective), [`ServiceStats`]
//! (per-service traffic counters) and [`ServiceError`] (directory
//! violations).
//!
//! The original synchronous per-page facade (`ServicedStore`) has been
//! retired: drive the engine's typed submission/completion queues
//! ([`StorageEngine::sq`](crate::engine::StorageEngine::sq) /
//! [`StorageEngine::cq`](crate::engine::StorageEngine::cq)), or its
//! synchronous [`execute`](crate::engine::StorageEngine::execute) for
//! one-off per-page calls. The migration table in `EXPERIMENTS.md` maps
//! each retired call to its replacement.

use std::ops::Range;

use mlcx_controller::CtrlError;

use crate::policy::Objective;

/// A named region of the device bound to a service objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRegion {
    /// Human-readable service name ("os-image", "media", ...).
    pub name: String,
    /// The cross-layer objective governing the region.
    pub objective: Objective,
    /// The block range the region owns.
    pub blocks: Range<usize>,
}

/// Errors raised by the service directory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Two regions claim the same block.
    Overlap {
        /// The existing region.
        existing: String,
        /// The new region that collides with it.
        incoming: String,
    },
    /// No region has the requested name.
    UnknownService {
        /// The name that failed to resolve.
        name: String,
    },
    /// A page address fell outside the region.
    OutOfRegion {
        /// The service name.
        name: String,
        /// The offending block.
        block: usize,
    },
    /// Propagated controller error.
    Ctrl(CtrlError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overlap { existing, incoming } => {
                write!(f, "region {incoming} overlaps existing region {existing}")
            }
            ServiceError::UnknownService { name } => write!(f, "unknown service {name}"),
            ServiceError::OutOfRegion { name, block } => {
                write!(f, "block {block} outside region {name}")
            }
            ServiceError::Ctrl(e) => write!(f, "controller: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Ctrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtrlError> for ServiceError {
    fn from(e: CtrlError) -> Self {
        ServiceError::Ctrl(e)
    }
}

impl From<mlcx_nand::NandError> for ServiceError {
    fn from(e: mlcx_nand::NandError) -> Self {
        ServiceError::Ctrl(CtrlError::Nand(e))
    }
}

/// Per-service traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pages written through the service.
    pub pages_written: u64,
    /// Pages read through the service.
    pub pages_read: u64,
    /// Raw bit errors the ECC corrected for this service.
    pub corrected_bits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_region() {
        let e = ServiceError::Overlap {
            existing: "a".into(),
            incoming: "b".into(),
        };
        assert_eq!(e.to_string(), "region b overlaps existing region a");
        let e = ServiceError::OutOfRegion {
            name: "media".into(),
            block: 9,
        };
        assert_eq!(e.to_string(), "block 9 outside region media");
    }

    #[test]
    fn nand_errors_wrap_through_ctrl() {
        use std::error::Error;
        let e = ServiceError::from(mlcx_nand::NandError::BlockOutOfRange {
            block: 3,
            blocks: 2,
        });
        assert!(matches!(e, ServiceError::Ctrl(CtrlError::Nand(_))));
        assert!(e.source().is_some());
    }
}
