//! Differentiated storage services — the service directory types and the
//! legacy per-page facade.
//!
//! The conclusions promise to "implement the memory controller taking
//! advantage of the new trade-offs, thus exposing differentiated storage
//! services to applications". The batched realization of that promise is
//! [`StorageEngine`]; this module owns the
//! service-directory vocabulary it builds on ([`ServiceRegion`],
//! [`ServiceStats`], [`ServiceError`]) plus [`ServicedStore`], the
//! original synchronous per-page API, kept as a thin shim over the
//! engine for existing callers.

use std::ops::Range;

use mlcx_controller::{CtrlError, MemoryController, ReadReport, WriteReport};

use crate::engine::{Command, CommandOutput, ServiceHandle, StorageEngine, WearBucketing};
use crate::error::MlcxError;
use crate::model::SubsystemModel;
use crate::policy::Objective;

/// A named region of the device bound to a service objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRegion {
    /// Human-readable service name ("os-image", "media", ...).
    pub name: String,
    /// The cross-layer objective governing the region.
    pub objective: Objective,
    /// The block range the region owns.
    pub blocks: Range<usize>,
}

/// Errors raised by the service directory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Two regions claim the same block.
    Overlap {
        /// The existing region.
        existing: String,
        /// The new region that collides with it.
        incoming: String,
    },
    /// No region has the requested name.
    UnknownService {
        /// The name that failed to resolve.
        name: String,
    },
    /// A page address fell outside the region.
    OutOfRegion {
        /// The service name.
        name: String,
        /// The offending block.
        block: usize,
    },
    /// Propagated controller error.
    Ctrl(CtrlError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overlap { existing, incoming } => {
                write!(f, "region {incoming} overlaps existing region {existing}")
            }
            ServiceError::UnknownService { name } => write!(f, "unknown service {name}"),
            ServiceError::OutOfRegion { name, block } => {
                write!(f, "block {block} outside region {name}")
            }
            ServiceError::Ctrl(e) => write!(f, "controller: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Ctrl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtrlError> for ServiceError {
    fn from(e: CtrlError) -> Self {
        ServiceError::Ctrl(e)
    }
}

impl From<mlcx_nand::NandError> for ServiceError {
    fn from(e: mlcx_nand::NandError) -> Self {
        ServiceError::Ctrl(CtrlError::Nand(e))
    }
}

/// Per-service traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pages written through the service.
    pub pages_written: u64,
    /// Pages read through the service.
    pub pages_read: u64,
    /// Raw bit errors the ECC corrected for this service.
    pub corrected_bits: u64,
}

/// Collapses an engine error back onto the legacy [`ServiceError`]
/// surface (the shim's calls can only produce these shapes).
fn legacy_error(e: MlcxError) -> ServiceError {
    match e {
        MlcxError::Service(s) => s,
        MlcxError::Ctrl(c) => ServiceError::Ctrl(c),
        MlcxError::Nand(n) => ServiceError::Ctrl(CtrlError::Nand(n)),
        MlcxError::Ecc(b) => ServiceError::Ctrl(CtrlError::Ecc(b)),
        MlcxError::PageSize { expected, actual } => {
            ServiceError::Ctrl(CtrlError::BufferSize { expected, actual })
        }
        // UnknownHandle/InvalidConfig cannot arise from the shim's own
        // calls (handles are resolved internally, nothing is rebuilt);
        // surface them as a controller configuration error rather than
        // inventing a fake service name.
        other => ServiceError::Ctrl(CtrlError::InvalidConfig {
            reason: other.to_string(),
        }),
    }
}

/// A memory controller fronted by a service directory — the original
/// synchronous, one-call-per-page API.
///
/// **Deprecated (legacy shim).** New code should drive
/// [`StorageEngine`] directly: it batches, reports per-batch
/// accounting, and memoizes operating-point derivation — and the
/// workload simulator ([`crate::sim`]) only speaks the engine API. The
/// shim is kept (not attribute-deprecated, to keep the workspace
/// warning-free) for existing callers and as the sequential baseline
/// the `engine_batch` bench measures against; it deliberately runs the
/// engine in [`WearBucketing::PerPage`] mode so it keeps the original
/// semantics — the cross-layer configuration is re-derived from the
/// region's wear on *every* write. Expect removal once nothing measures
/// against it.
///
/// # Example
///
/// ```
/// use mlcx_controller::{ControllerConfig, MemoryController};
/// use mlcx_core::services::ServicedStore;
/// use mlcx_core::{Objective, SubsystemModel};
///
/// let ctrl = MemoryController::new(ControllerConfig::date2012(), 9)?;
/// let mut store = ServicedStore::new(ctrl, SubsystemModel::date2012());
/// store.add_region("payments", Objective::MinUber, 0..4)?;
/// store.add_region("media", Objective::MaxReadThroughput, 4..16)?;
/// store.erase("media", 4)?;
/// store.write("media", 4, 0, &vec![0u8; 4096])?;
/// let read = store.read("media", 4, 0)?;
/// assert!(read.outcome.is_success());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServicedStore {
    engine: StorageEngine,
}

impl ServicedStore {
    /// Wraps a controller with an empty service directory.
    pub fn new(ctrl: MemoryController, model: SubsystemModel) -> Self {
        ServicedStore {
            engine: StorageEngine::with_bucketing(ctrl, model, WearBucketing::PerPage),
        }
    }

    /// Registers a service region.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overlap`] when the block range collides with an
    /// existing region.
    pub fn add_region(
        &mut self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
    ) -> Result<(), ServiceError> {
        self.engine
            .register_service(name, objective, blocks)
            .map_err(legacy_error)?;
        Ok(())
    }

    /// The registered regions (live view from the backing engine, in
    /// registration order).
    pub fn regions(&self) -> Vec<ServiceRegion> {
        self.engine.regions().cloned().collect()
    }

    /// Traffic counters for a service.
    pub fn stats(&self, name: &str) -> Option<ServiceStats> {
        let handle = self.engine.service(name)?;
        self.engine.stats(handle).ok()
    }

    /// The wrapped controller (wear inspection etc.).
    pub fn controller(&self) -> &MemoryController {
        self.engine.controller()
    }

    /// Mutable controller access (aging blocks in experiments).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        self.engine.controller_mut()
    }

    /// The backing engine — migration escape hatch for callers moving to
    /// the batched API.
    pub fn engine_mut(&mut self) -> &mut StorageEngine {
        &mut self.engine
    }

    fn handle(&self, name: &str) -> Result<ServiceHandle, ServiceError> {
        self.engine
            .service(name)
            .ok_or_else(|| ServiceError::UnknownService {
                name: name.to_string(),
            })
    }

    /// Erases a block belonging to a service.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn erase(&mut self, name: &str, block: usize) -> Result<(), ServiceError> {
        let handle = self.handle(name)?;
        self.engine
            .execute(Command::erase(handle, block))
            .map_err(legacy_error)?;
        Ok(())
    }

    /// Writes a page through a service: the cross-layer configuration is
    /// re-derived from the region's objective and the block's current
    /// wear, then applied before the write.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn write(
        &mut self,
        name: &str,
        block: usize,
        page: usize,
        data: &[u8],
    ) -> Result<WriteReport, ServiceError> {
        let handle = self.handle(name)?;
        match self
            .engine
            .execute(Command::write(handle, block, page, data.to_vec()))
            .map_err(legacy_error)?
        {
            CommandOutput::Write(report) => Ok(report),
            other => unreachable!("write command produced {other:?}"),
        }
    }

    /// Reads a page through a service.
    ///
    /// # Errors
    ///
    /// Region-membership and controller errors.
    pub fn read(
        &mut self,
        name: &str,
        block: usize,
        page: usize,
    ) -> Result<ReadReport, ServiceError> {
        let handle = self.handle(name)?;
        match self
            .engine
            .execute(Command::read(handle, block, page))
            .map_err(legacy_error)?
        {
            CommandOutput::Read(report) => Ok(report),
            other => unreachable!("read command produced {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_controller::ControllerConfig;
    use mlcx_nand::ProgramAlgorithm;

    fn store() -> ServicedStore {
        let ctrl = MemoryController::new(ControllerConfig::date2012(), 77).unwrap();
        ServicedStore::new(ctrl, SubsystemModel::date2012())
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..8).unwrap();
        let err = s.add_region("b", Objective::MinUber, 7..12).unwrap_err();
        assert!(matches!(err, ServiceError::Overlap { .. }));
        // Adjacent is fine.
        s.add_region("c", Objective::MinUber, 8..12).unwrap();
    }

    #[test]
    fn unknown_service_and_out_of_region() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..2).unwrap();
        assert!(matches!(
            s.erase("nope", 0),
            Err(ServiceError::UnknownService { .. })
        ));
        assert!(matches!(
            s.erase("a", 5),
            Err(ServiceError::OutOfRegion { .. })
        ));
    }

    #[test]
    fn services_apply_their_objectives() {
        let mut s = store();
        s.add_region("payments", Objective::MinUber, 0..2).unwrap();
        s.add_region("media", Objective::MaxReadThroughput, 2..4)
            .unwrap();
        // Age the media region to end of life so the objectives diverge.
        s.controller_mut().age_block(2, 1_000_000).unwrap();
        s.erase("payments", 0).unwrap();
        s.erase("media", 2).unwrap();

        let data = vec![0x5Au8; 4096];
        let w_pay = s.write("payments", 0, 0, &data).unwrap();
        let w_med = s.write("media", 2, 0, &data).unwrap();
        // Both services run ISPP-DV, but at very different capabilities:
        // payments at the fresh SV schedule (t = 3), media at the DV
        // end-of-life schedule (t = 14).
        assert_eq!(w_pay.algorithm, ProgramAlgorithm::IsppDv);
        assert_eq!(w_med.algorithm, ProgramAlgorithm::IsppDv);
        assert_eq!(w_pay.t_used, 3);
        assert_eq!(w_med.t_used, 14);

        let r = s.read("media", 2, 0).unwrap();
        assert!(r.outcome.is_success());
        assert_eq!(r.data, data);

        let stats = s.stats("media").unwrap();
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 1);
    }

    #[test]
    fn stats_isolated_per_service() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..2).unwrap();
        s.add_region("b", Objective::Baseline, 2..4).unwrap();
        s.erase("a", 0).unwrap();
        let data = vec![0u8; 4096];
        s.write("a", 0, 0, &data).unwrap();
        assert_eq!(s.stats("a").unwrap().pages_written, 1);
        assert_eq!(s.stats("b").unwrap().pages_written, 0);
        assert!(s.stats("zzz").is_none());
    }

    #[test]
    fn wrong_page_size_surfaces_as_buffer_error() {
        let mut s = store();
        s.add_region("a", Objective::Baseline, 0..2).unwrap();
        s.erase("a", 0).unwrap();
        let err = s.write("a", 0, 0, &[0u8; 64]).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Ctrl(CtrlError::BufferSize {
                expected: 4096,
                actual: 64
            })
        ));
    }
}
