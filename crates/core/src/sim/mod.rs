//! Trace-driven workload and lifetime simulation.
//!
//! The paper's cross-layer trade-offs (per-service reliability vs.
//! performance objectives) only become visible under realistic host
//! workloads aged over P/E cycles — a hand-rolled 64-page batch shows
//! the mechanism, not the behavior. This module closes that gap with
//! three pieces:
//!
//! * [`trace`] — deterministic synthetic trace generators
//!   ([`TraceGenerator`]) over five access-pattern families
//!   ([`TraceKind`]): sequential logging, uniform random, zipf-like
//!   hot/cold skew, read-mostly serving and bursty ingest. Seeded via
//!   the workspace's deterministic `rand` stub: a `(kind, capacity,
//!   seed)` triple always replays the same stream.
//! * [`WorkloadRunner`] — compiles trace operations into
//!   [`Command`](crate::engine::Command) batches per service and drives
//!   them through the engine's typed submission/completion queues
//!   ([`StorageEngine::sq`](crate::engine::StorageEngine::sq) /
//!   [`cq`](crate::engine::StorageEngine::cq)). Logical addresses
//!   route through a per-service
//!   [`LogicalMap`](mlcx_controller::ftl::LogicalMap) (the FTL planning
//!   core), so overwrites, garbage collection and write amplification
//!   run on the real datapath — relocation writes re-encode at the
//!   service's current cross-layer operating point.
//! * [`Scenario`] — the declarative description of a multi-service mix
//!   (e.g. a `MaxReadThroughput` log service contending with a
//!   `MinUber` archive service) across lifetime phases, each phase
//!   optionally fast-forwarding wear via
//!   `MemoryController::age_all` (backed by
//!   [`AgingModel`](mlcx_nand::AgingModel)'s RBER curves at the next
//!   program). [`Scenario::run`] produces a [`ScenarioReport`] with
//!   per-phase, per-service latency percentiles (p50/p95/p99), energy,
//!   measured and modeled RBER, modeled UBER, FTL counters and write
//!   amplification — and ends with a verification sweep that reads
//!   every mapped page back, so data integrity across GC and aging is
//!   asserted, not assumed.
//!
//! * [`presets`] — named workloads: the die-skew and
//!   channel-contention scenarios that exercise the striped FTL, the
//!   per-die operating-point memo and the channel busy-time scheduler
//!   end-to-end on multi-die topologies
//!   ([`Topology`](mlcx_nand::Topology)); the retention-stress and
//!   read-reclaim scenario pair that turns the device's
//!   disturb/retention models plus the background scrubber
//!   (`mlcx_controller::scrub`) into a measurable
//!   reliability-performance trade-off — run each with scrub off and on
//!   to quantify the UBER recovered and the device time paid; and the
//!   scrub-vs-retry preset that runs the same seeded retention-failure
//!   workload under every [`presets::MitigationMode`], pricing scrub's
//!   write amplification against retry's extra senses; and the
//!   tenant-storm preset ([`presets::tenant_storm`]) that packs
//!   hundreds of QoS-classed tenants onto one bank under
//!   weighted-fair dispatch and reads the per-tenant flow-time tail
//!   (p99/p99.9) out of the report; and the program-interference pair
//!   ([`presets::program_interference`], [`presets::write_hammer`])
//!   that turns neighbour coupling, die-level program disturb and
//!   power-loss fault injection into counted, mitigable damage — the
//!   latter an adversarial tenant hammering a victim's parked data
//!   across the shared die, run under every
//!   [`presets::MitigationMode`].
//!
//! Time is a first-class axis: phases can advance the device wall
//! clock (`ScenarioBuilder::phase_with_elapsed` →
//! `StorageEngine::advance_hours`), stored pages age against the
//! retention model, read-hammered blocks accumulate read disturb, and
//! an enabled `ScrubPolicy` lets per-service scrubbers stage
//! relocate+erase maintenance into the same batches as host traffic.
//!
//! Determinism is end to end: the engine's error-injection stream (one
//! stream per die), the trace streams and the payload derivation are
//! all functions of the scenario seed, so a report reproduces exactly.

pub mod presets;
pub mod scenario;
pub mod trace;

pub use scenario::{
    LatencyStats, PhaseReport, PhaseSpec, Scenario, ScenarioBuilder, ScenarioReport,
    ServicePhaseReport, ServiceSpec, WorkloadRunner,
};
pub use trace::{TraceGenerator, TraceKind, TraceOp};
