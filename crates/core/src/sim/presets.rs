//! Named multi-channel workload presets.
//!
//! The single-target scenarios of the paper cannot express the two
//! failure modes a real multi-die SSD lives with:
//!
//! * **die skew** — dies age at different rates (a die that hosted a
//!   hot tenant, or a weak die binned low at test), so one bank of a
//!   striped region needs a stronger ECC schedule than its siblings;
//! * **channel contention** — tenants whose regions sit on dies behind
//!   the *same* channel serialize on its bus, while a tenant alone on
//!   another channel runs unimpeded.
//!
//! These presets pin both down as deterministic [`Scenario`]s the
//! `WorkloadRunner` drives end-to-end through the striped FTL, the
//! per-die operating-point memo and the channel busy-time scheduler.

use mlcx_controller::{ControllerConfig, RetryPolicy, ScrubPolicy};
use mlcx_nand::disturb::DisturbModel;
use mlcx_nand::{DeviceGeometry, Topology};

use crate::engine::EngineBuilder;
use crate::event::{QosSpec, SchedPolicy};
use crate::fault::FaultPlan;
use crate::policy::Objective;
use crate::sim::{Scenario, TraceKind};

/// A small multi-die engine: `blocks` x 8-page blocks under `topology`
/// (everything else the paper's calibration).
fn engine_with(blocks: usize, topology: Topology) -> EngineBuilder {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks,
        pages_per_block: 8,
        topology,
        ..config.geometry
    };
    EngineBuilder::date2012().controller_config(config)
}

/// Die-skew preset: one zipf key-value service striped over a
/// 2-channel bank (8 blocks per die), with die 1 fast-forwarded 900k
/// cycles between the phases. The `skewed` phase runs against a
/// wear-imbalanced bank: writes landing on die 1 derive their own
/// (stronger) operating point from the per-die memo while die 0 keeps
/// the fresh schedule, and reads of die-1 pages see end-of-life RBER.
pub fn die_skew(seed: u64) -> Scenario {
    Scenario::builder()
        .engine(engine_with(16, Topology::new(2, 1)))
        .seed(seed)
        .batch_size(32)
        .service("kv", Objective::Baseline, 0..16, TraceKind::zipfian())
        .phase_with_die_skew("fresh", 80, 0, &[(1, 900_000)])
        .phase("skewed", 80, 0)
        .build()
        .expect("die-skew preset must validate")
}

/// Channel-contention preset: a 2x2 bank (4 dies, 4 blocks each) where
/// a `noisy` write-burst tenant and a `victim` read-mostly tenant own
/// dies 0 and 1 — both behind channel 0 — while an `isolated` tenant
/// with the victim's exact trace owns die 2, alone on channel 1. The
/// two channels' bus busy-times expose the contention: channel 0
/// carries both tenants' transfers serially, channel 1 only the
/// isolated tenant's.
pub fn channel_contention(seed: u64) -> Scenario {
    Scenario::builder()
        .engine(engine_with(16, Topology::new(2, 2)))
        .seed(seed)
        .batch_size(32)
        .prefill(true)
        .service(
            "noisy",
            Objective::Baseline,
            0..4,
            TraceKind::WriteBurst { burst_len: 8 },
        )
        .service(
            "victim",
            Objective::Baseline,
            4..8,
            TraceKind::read_mostly(),
        )
        .service(
            "isolated",
            Objective::Baseline,
            8..12,
            TraceKind::read_mostly(),
        )
        .phase("contend", 90, 0)
        .build()
        .expect("channel-contention preset must validate")
}

/// Retention-stress preset: a read-hot zipfian key-value service on an
/// end-of-life bank whose stored data then sits for 20,000 hours (~2.3
/// years) before the serving phase. With the (paper-calibrated)
/// retention model enabled, the parked data's additive RBER erodes the
/// ECC margin by several decades of model UBER; with `scrub` the
/// retention-age scrubber read-reclaims the stale blocks during the
/// serving phase — rewriting the data at the current clock — and
/// recovers that margin at a measured relocation/erase/device-time
/// cost. Run both arms with the same seed to quantify the trade-off.
pub fn retention_stress(seed: u64, scrub: bool) -> Scenario {
    let mut builder = Scenario::builder()
        .engine(engine_with(16, Topology::single()))
        .disturb_model(DisturbModel::date2012())
        .seed(seed)
        .batch_size(24)
        .service("kv", Objective::Baseline, 0..16, TraceKind::zipfian())
        // Position the bank at end of life first (a pure fast-forward,
        // no traffic), so the data written next is encoded at the EOL
        // schedule and ages at the EOL retention rate (retention
        // acceleration scales with program-time wear).
        .phase("burn", 0, 1_000_000)
        // Write the working set at EOL wear, then park it.
        .phase_with_elapsed("write", 120, 0, 20_000.0)
        // Serve read-hot traffic against the parked data.
        .phase("serve", 280, 0);
    if scrub {
        builder = builder.scrub_policy(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: 5_000.0,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 2,
        });
    }
    builder
        .build()
        .expect("retention-stress preset must validate")
}

/// Read-reclaim preset: the read-disturb twin of
/// [`retention_stress`]. A read-hot serving tenant (95 % reads over a
/// deliberately small working set) hammers its blocks on an
/// end-of-life bank under an (aggressive, demo-scaled) read-disturb
/// model; with almost no write traffic, garbage collection never
/// recycles the hot blocks, so their `reads_since_erase` accumulators
/// climb unchecked. With `scrub` the scrubber relocates and erases
/// them once they cross the read threshold — resetting the accumulator
/// exactly as arXiv:1706.08642's read-reclaim describes — before the
/// disturb RBER can stack onto the end-of-life endurance floor.
pub fn read_reclaim(seed: u64, scrub: bool) -> Scenario {
    let mut builder = Scenario::builder()
        .engine(engine_with(16, Topology::single()))
        .disturb_model(DisturbModel {
            // Demo-scaled: the date2012 per-read constant needs ~100k
            // reads to matter; 3e-6 reaches the same disturb RBER in
            // the ~100 reads a preset-sized trace can issue.
            read_disturb_per_read: 3e-6,
            ..DisturbModel::disabled()
        })
        .seed(seed)
        .batch_size(24)
        // A small working set concentrates the reads on few blocks.
        .utilization(0.25)
        .service(
            "hot",
            Objective::Baseline,
            0..16,
            TraceKind::ReadMostly { read_ratio: 0.95 },
        )
        .phase("burn", 0, 1_000_000)
        .phase("hammer", 500, 0);
    if scrub {
        builder = builder.scrub_policy(ScrubPolicy {
            read_threshold: 40,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 2,
        });
    }
    builder.build().expect("read-reclaim preset must validate")
}

/// Multi-tenant QoS storm: `n_tenants` read-mostly tenants (at least
/// one; hundreds are the point) packed onto **one bank** — a single
/// die, two 8-page blocks per tenant — under
/// [`SchedPolicy::WeightedFair`] dispatch. Tenants cycle through three
/// QoS classes by index: `gold` (weight 8), `silver` (weight 2) and
/// `bronze` (weight 1). Every tenant prefills its working set, then the
/// serve phase round-robins trace traffic across all of them, so every
/// batch is a many-way contention for the same die and the dispatch
/// order *is* the latency story: each tenant's observed queueing +
/// device flow time lands in its
/// [`ServicePhaseReport::flow_latency`](crate::sim::ServicePhaseReport::flow_latency)
/// percentiles (p50/p99/p99.9) per phase.
///
/// The storm is deliberately single-die: with no channel overlap
/// available, weighted-fair dispatch is the only mechanism that can
/// shape the tail, which makes its effect on the favored class's
/// p99/p99.9 directly measurable against
/// [`SchedPolicy::FifoArrival`] (the `qos_tail` bench does exactly
/// that comparison).
pub fn tenant_storm(seed: u64, n_tenants: usize) -> Scenario {
    let n_tenants = n_tenants.max(1);
    let blocks_per_tenant = 2;
    let mut builder = Scenario::builder()
        .engine(engine_with(
            n_tenants * blocks_per_tenant,
            Topology::single(),
        ))
        .sched_policy(SchedPolicy::WeightedFair)
        .seed(seed)
        .batch_size(64)
        // A tiny per-tenant working set keeps the prefill proportional
        // to the tenant count, not dominated by it.
        .utilization(0.25)
        .prefill(true);
    for i in 0..n_tenants {
        let (class, weight) = match i % 3 {
            0 => ("gold", 8.0),
            1 => ("silver", 2.0),
            _ => ("bronze", 1.0),
        };
        let lo = i * blocks_per_tenant;
        builder = builder.service_with_qos(
            &format!("{class}-{i:04}"),
            Objective::Baseline,
            lo..lo + blocks_per_tenant,
            TraceKind::read_mostly(),
            QosSpec::weighted(weight),
        );
    }
    builder
        .phase("storm", 4, 0)
        .build()
        .expect("tenant-storm preset must validate")
}

/// Which reliability mitigations a [`scrub_vs_retry`] arm enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationMode {
    /// Neither mitigation: the parked data's reads fail uncorrectable.
    None,
    /// Background scrub only: stale blocks are relocated and erased
    /// (data-movement domain — pays write amplification and erases).
    ScrubOnly,
    /// Read-retry only: failing reads re-sense at ladder offsets
    /// (voltage domain — pays extra senses, moves no data).
    RetryOnly,
    /// Both mitigations together.
    Both,
}

impl MitigationMode {
    /// Whether the arm runs the background scrubber.
    pub fn scrub(self) -> bool {
        matches!(self, MitigationMode::ScrubOnly | MitigationMode::Both)
    }

    /// Whether the arm runs stepped read-reference retry.
    pub fn retry(self) -> bool {
        matches!(self, MitigationMode::RetryOnly | MitigationMode::Both)
    }
}

/// Scrub-vs-retry preset: the *same* seeded retention-failure workload
/// run under each [`MitigationMode`], so the two mitigations' costs are
/// directly comparable. A read-only serving tenant's working set is
/// prefilled once (no overwrites, so no stale garbage pages muddy the
/// per-block disturb accounting), parked for 20,000 hours under a
/// demo-scaled wear-independent retention model harsh enough that
/// nominal-reference reads come back *uncorrectable* (unlike
/// [`retention_stress`], where the EOL schedule still decodes), then
/// read-served:
///
/// * [`MitigationMode::None`] — every read of parked data fails; the
///   report's `read_failures` and disturbed-UBER columns show the
///   exposure.
/// * [`MitigationMode::ScrubOnly`] — the retention scrubber rewrites
///   stale blocks at the current clock: recovery paid in relocations
///   and erases (pure write amplification — the workload itself writes
///   nothing).
/// * [`MitigationMode::RetryOnly`] — the ladder re-senses failing reads
///   near the shifted optimum and the per-block offset table makes
///   steady state single-sense: recovery paid purely in read latency —
///   zero relocations, zero erases.
/// * [`MitigationMode::Both`] — retry absorbs errors between scrub
///   passes; scrub bounds how far the ladder must reach.
pub fn scrub_vs_retry(seed: u64, mode: MitigationMode) -> Scenario {
    let mut builder = Scenario::builder()
        .engine(engine_with(16, Topology::single()))
        .disturb_model(DisturbModel {
            // Demo-scaled retention, independent of program-time wear
            // (exponent 0) so the prefilled data ages at full rate:
            // ~1.5e-3 additive RBER after the park (~50 raw errors per
            // codeword — uncorrectable at the fresh-wear schedule),
            // with a step size that puts the Vth shift almost exactly
            // two reference steps out, squarely on a date2012 ladder
            // rung.
            retention_scale: 3.5e-4,
            retention_wear_exponent: 0.0,
            rber_per_step: 7.5e-4,
            offset_residual_fraction: 0.01,
            ..DisturbModel::disabled()
        })
        .seed(seed)
        .batch_size(24)
        // A small working set: the prefill packs it into a few blocks
        // and the read-only serve phase revisits every block.
        .utilization(0.25)
        .prefill(true)
        .service(
            "serve",
            Objective::Baseline,
            0..16,
            TraceKind::ReadMostly { read_ratio: 1.0 },
        )
        // Park the prefilled working set ~2.3 years.
        .phase_with_elapsed("park", 0, 0, 20_000.0)
        // Serve pure read traffic against the parked data.
        .phase("serve", 280, 0);
    if mode.scrub() {
        builder = builder.scrub_policy(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: 5_000.0,
            interference_rber_threshold: f64::INFINITY,
            max_blocks_per_pass: 2,
        });
    }
    if mode.retry() {
        builder = builder.retry_policy(RetryPolicy::date2012());
    }
    builder
        .build()
        .expect("scrub-vs-retry preset must validate")
}

/// Program-interference preset: one zipfian key-value tenant whose own
/// overwrite churn is the aggressor. Every program couples RBER onto
/// its programmed wordline neighbours (demo-scaled cell-to-cell
/// interference), and a deterministic fault schedule interrupts 2 % of
/// programs mid-staircase — the power-loss mode, whose pages read back
/// corrupt until erased. The interference-pressure scrubber
/// (`interference_rber_threshold`) is the mitigation: a partially
/// programmed page alone presses its block far past the threshold, so
/// the scrubber reclaims exactly the damaged blocks, attributed in
/// [`FtlStats::interference_reclaims`](mlcx_controller::ftl::FtlStats::interference_reclaims).
///
/// Power loss without end-to-end write protection *is* data loss: the
/// interrupted pages fail ECC (surfacing as `read_failures`), and a GC
/// or scrub relocation that copies such a page forward preserves the
/// corruption — so unlike the other presets, a run is *expected* to
/// report failures. The preset exists to count them deterministically.
pub fn program_interference(seed: u64) -> Scenario {
    Scenario::builder()
        .engine(engine_with(16, Topology::single()))
        .disturb_model(DisturbModel {
            // Demo-scaled: the date2012 coupling constant needs ~200
            // neighbour events per page to matter; 1e-4 per event shows
            // up within a preset-sized trace. Partial-program corruption
            // keeps its real (catastrophic) severity.
            program_coupling_rber: 1e-4,
            partial_program_rber: 5e-2,
            ..DisturbModel::disabled()
        })
        .fault_plan(FaultPlan {
            partial_program_rate: 0.02,
            partial_program_fraction: 0.5,
            seed: seed ^ 0xFA17,
        })
        .scrub_policy(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: 2e-3,
            max_blocks_per_pass: 2,
        })
        .seed(seed)
        .batch_size(24)
        .utilization(0.5)
        .prefill(true)
        .service("kv", Objective::Baseline, 0..16, TraceKind::zipfian())
        .phase("churn", 240, 0)
        .build()
        // mlcx-lint: allow(datapath-unwrap, reason = "preset constructor; invalid preset is a programming error")
        .expect("program-interference preset must validate")
}

/// Write-hammer preset: the adversarial twin of
/// [`program_interference`]. An `attacker` tenant floods its own block
/// range with write bursts while a `victim` tenant's prefilled data
/// sits parked on the *same die*, read-only. Every attacker program
/// stresses the die's inhibited bitlines (demo-scaled die-level program
/// disturb), so the victim's parked blocks accumulate interference RBER
/// they did nothing to earn — the program-side analogue of a
/// read-disturb neighbourhood attack, with the FTL's block-range
/// isolation bypassed entirely by the shared die.
///
/// Run under each [`MitigationMode`] with the same seed:
///
/// * [`MitigationMode::None`] — victim reads start failing once the
///   accumulated shift outruns the fresh-wear ECC schedule.
/// * [`MitigationMode::ScrubOnly`] — the interference-pressure scrubber
///   relocates the victim's pressed blocks (rewriting them resets their
///   exposure snapshot), paid in relocations/erases.
/// * [`MitigationMode::RetryOnly`] — the stepped ladder tracks the
///   interference Vth shift (~2-3 reference steps at the demo scale)
///   and the learned per-block offsets make steady state single-sense,
///   paid in extra read latency.
/// * [`MitigationMode::Both`] — retry absorbs the shift between scrub
///   passes.
pub fn write_hammer(seed: u64, mode: MitigationMode) -> Scenario {
    let mut builder = Scenario::builder()
        .engine(engine_with(16, Topology::single()))
        .disturb_model(DisturbModel {
            // Demo-scaled: the date2012 per-program constant needs ~100k
            // programs on the die to matter; 4e-6 reaches a schedule-
            // breaking victim RBER within the few hundred programs a
            // preset-sized burst trace issues. The step size puts the
            // end-of-run shift almost exactly two reference rungs out —
            // squarely on the date2012 ladder — and the residual keeps
            // the tracked optimum clean.
            program_disturb_per_program: 4e-6,
            program_coupling_rber: 1e-5,
            rber_per_step: 5e-4,
            offset_residual_fraction: 0.01,
            ..DisturbModel::disabled()
        })
        .seed(seed)
        .batch_size(24)
        // Small working sets: the victim's parked data packs into a few
        // blocks and the attacker's churn stays GC-light.
        .utilization(0.25)
        .prefill(true)
        .service(
            "attacker",
            Objective::Baseline,
            0..8,
            TraceKind::WriteBurst { burst_len: 8 },
        )
        .service(
            "victim",
            Objective::Baseline,
            8..16,
            TraceKind::ReadMostly { read_ratio: 1.0 },
        )
        .phase("hammer", 280, 0);
    if mode.scrub() {
        builder = builder.scrub_policy(ScrubPolicy {
            read_threshold: u64::MAX,
            retention_age_hours: f64::INFINITY,
            interference_rber_threshold: 7.5e-4,
            max_blocks_per_pass: 2,
        });
    }
    if mode.retry() {
        builder = builder.retry_policy(RetryPolicy::date2012());
    }
    builder
        .build()
        // mlcx-lint: allow(datapath-unwrap, reason = "preset constructor; invalid preset is a programming error")
        .expect("write-hammer preset must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_skew_preset_splits_the_wear_and_stays_clean() {
        let report = die_skew(11).run().expect("preset must run");
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        let fresh = &report.phases[0].services[0];
        let skewed = &report.phases[1].services[0];
        assert!(fresh.max_wear < 10_000, "fresh phase: {}", fresh.max_wear);
        assert!(
            skewed.max_wear >= 900_000,
            "the skewed die must dominate the service's wear: {}",
            skewed.max_wear
        );
        assert!(skewed.model_rber > fresh.model_rber * 10.0);
        // Two channels: batches overlap, so the run's overlapped time
        // beats the serial sum.
        assert!(report.total_parallel_time_s < report.total_device_time_s);
        assert!(report.achieved_parallelism() > 1.0);
    }

    #[test]
    fn channel_contention_preset_loads_the_shared_channel() {
        let report = channel_contention(23).run().expect("preset must run");
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        let contend = report
            .phases
            .iter()
            .find(|p| p.name == "contend")
            .expect("contend phase");
        // All three tenants ran traffic and the topology overlapped it.
        assert_eq!(contend.services.len(), 3);
        assert!(contend.parallel_time_s < contend.device_time_s);
        assert!(contend.channel_busy_s > 0.0);
        // Determinism: the preset is a fixed function of its seed.
        let again = channel_contention(23).run().unwrap();
        assert_eq!(report, again);
    }

    /// The serve/hammer phase of a preset report.
    fn phase<'a>(
        report: &'a crate::sim::ScenarioReport,
        name: &str,
    ) -> &'a crate::sim::PhaseReport {
        report
            .phases
            .iter()
            .find(|p| p.name == name)
            .expect("phase must exist")
    }

    #[test]
    fn retention_stress_scrubber_recovers_uber_at_a_latency_cost() {
        let off = retention_stress(7, false).run().expect("off arm runs");
        let on = retention_stress(7, true).run().expect("on arm runs");
        // Both arms stay functionally clean: the EOL schedule absorbs
        // the retention errors; the damage is UBER margin, not data.
        for report in [&off, &on] {
            assert_eq!(report.integrity_violations, 0);
            assert_eq!(report.read_failures, 0);
        }
        assert_eq!(off.total_scrub_relocations, 0);
        assert!(on.total_scrub_relocations > 0, "scrubber must have run");
        assert!(on.total_scrub_erases > 0);

        let s_off = &phase(&off, "serve").services[0];
        let s_on = &phase(&on, "serve").services[0];
        // Unscrubbed, two years of parked EOL data erodes the margin...
        assert!(
            s_off.model_disturb_rber > 1e-4,
            "parked data must accumulate retention RBER: {:e}",
            s_off.model_disturb_rber
        );
        assert!(s_off.model_log10_uber_disturbed > s_off.model_log10_uber + 1.0);
        // ...and the scrubber recovers >= 1 decade of model log10 UBER.
        let recovered = s_off.model_log10_uber_disturbed - s_on.model_log10_uber_disturbed;
        assert!(
            recovered >= 1.0,
            "scrubber must recover >= 1 decade of UBER, got {recovered:.2} \
             (off {:.2}, on {:.2})",
            s_off.model_log10_uber_disturbed,
            s_on.model_log10_uber_disturbed
        );
        // The recovery is paid for in measured device time (relocation
        // reads/writes + erases competing with host traffic).
        let cost = phase(&on, "serve").device_time_s - phase(&off, "serve").device_time_s;
        assert!(cost > 0.0, "scrub traffic must cost device time");
        assert!(s_on.scrub_relocations > 0 && s_on.scrub_erases > 0);

        // Determinism: both arms are fixed functions of the seed.
        assert_eq!(off, retention_stress(7, false).run().unwrap());
        assert_eq!(on, retention_stress(7, true).run().unwrap());
    }

    #[test]
    fn read_reclaim_resets_the_disturb_accumulator() {
        let off = read_reclaim(31, false).run().expect("off arm runs");
        let on = read_reclaim(31, true).run().expect("on arm runs");
        for report in [&off, &on] {
            assert_eq!(report.integrity_violations, 0);
            assert_eq!(report.read_failures, 0);
        }
        let s_off = &phase(&off, "hammer").services[0];
        let s_on = &phase(&on, "hammer").services[0];
        // Unscrubbed, the hammered hot blocks stack read disturb on top
        // of the end-of-life endurance floor.
        assert!(
            s_off.model_disturb_rber > 1e-4,
            "hot blocks must accumulate read disturb: {:e}",
            s_off.model_disturb_rber
        );
        assert!(on.total_scrub_relocations + on.total_scrub_erases > 0);
        // Read-reclaim keeps the worst block's disturb bounded near the
        // threshold instead of growing with the hammer.
        assert!(
            s_on.model_disturb_rber < s_off.model_disturb_rber,
            "reclaim must bound the disturb: on {:e} vs off {:e}",
            s_on.model_disturb_rber,
            s_off.model_disturb_rber
        );
        assert!(s_on.model_log10_uber_disturbed < s_off.model_log10_uber_disturbed);
        assert_eq!(on, read_reclaim(31, true).run().unwrap());
    }

    #[test]
    fn tenant_storm_serves_256_tenants_on_one_bank_with_flow_tails() {
        let report = tenant_storm(7, 256).run().expect("storm must run");
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        let storm = phase(&report, "storm");
        assert_eq!(storm.services.len(), 256);
        // One bank: no channel overlap to hide behind.
        assert!((report.achieved_parallelism() - 1.0).abs() < 1e-9);
        // Every tenant that saw traffic reports a full flow-time tail.
        let mut classes_seen = [false; 3];
        for s in &storm.services {
            let flows = s.flow_latency;
            assert!(flows.count > 0, "tenant {} saw no traffic", s.service);
            assert!(flows.p50_s > 0.0);
            assert!(flows.p999_s >= flows.p99_s && flows.p99_s >= flows.p50_s);
            match s.service.split('-').next().unwrap() {
                "gold" => classes_seen[0] = true,
                "silver" => classes_seen[1] = true,
                "bronze" => classes_seen[2] = true,
                other => panic!("unexpected class {other}"),
            }
        }
        assert_eq!(classes_seen, [true; 3]);
        // Determinism: the storm is a fixed function of its seed.
        let again = tenant_storm(7, 256).run().unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn scrub_vs_retry_recovers_uber_in_different_currencies() {
        let none = scrub_vs_retry(7, MitigationMode::None).run().unwrap();
        let scrub = scrub_vs_retry(7, MitigationMode::ScrubOnly).run().unwrap();
        let retry = scrub_vs_retry(7, MitigationMode::RetryOnly).run().unwrap();
        let both = scrub_vs_retry(7, MitigationMode::Both).run().unwrap();

        // Unmitigated, the parked data genuinely fails: this preset is
        // harsher than retention_stress on purpose.
        assert!(none.read_failures > 0, "none arm must see failed reads");
        assert_eq!(none.total_retried_reads, 0);
        assert_eq!(none.total_scrub_relocations + none.total_scrub_erases, 0);

        // Retry-only moves no data at all...
        assert_eq!(retry.total_scrub_relocations, 0);
        assert_eq!(retry.total_scrub_erases, 0);
        assert!(retry.total_retried_reads > 0, "the ladder must have walked");
        assert!(retry.total_retry_senses >= retry.total_retried_reads);
        // ...and recovers the reads the none arm lost.
        assert!(
            retry.read_failures < none.read_failures / 4,
            "retry must recover most failing reads: {} vs {}",
            retry.read_failures,
            none.read_failures
        );
        assert_eq!(retry.integrity_violations, 0);

        // The verify sweep reads every mapped page, so by its end every
        // parked block has a learned offset: >= 1 decade of model UBER
        // recovered at the effective (offset-aware) reference, with
        // zero relocations/erases.
        let v_none = &phase(&none, "verify").services[0];
        let v_retry = &phase(&retry, "verify").services[0];
        let recovered = v_none.model_log10_uber_disturbed - v_retry.model_log10_uber_disturbed;
        assert!(
            recovered >= 1.0,
            "retry must recover >= 1 decade of UBER, got {recovered:.2} \
             (none {:.2}, retry {:.2})",
            v_none.model_log10_uber_disturbed,
            v_retry.model_log10_uber_disturbed
        );
        // The price is read latency: extra senses, accounted per read.
        let s_retry = &phase(&retry, "serve").services[0];
        assert!(s_retry.retry_latency_s > 0.0);
        assert!(s_retry.retried_reads > 0);

        // Scrub-only pays in data movement: relocation writes and
        // erases against a workload that itself writes nothing — pure
        // write amplification, where retry moved no data at all.
        assert!(scrub.total_scrub_relocations > 0, "scrubber must have run");
        assert!(scrub.total_scrub_erases > 0);
        assert_eq!(scrub.total_retried_reads, 0);
        assert!(
            scrub.read_failures < none.read_failures,
            "scrub must stem the failures once it has swept: {} vs {}",
            scrub.read_failures,
            none.read_failures
        );

        // Both together: retry absorbs what scrub hasn't reached yet.
        assert!(both.total_scrub_relocations > 0);
        assert!(both.read_failures <= retry.read_failures);

        // Determinism: every arm is a fixed function of the seed.
        assert_eq!(none, scrub_vs_retry(7, MitigationMode::None).run().unwrap());
        assert_eq!(
            retry,
            scrub_vs_retry(7, MitigationMode::RetryOnly).run().unwrap()
        );
    }

    #[test]
    fn program_interference_counts_coupling_faults_and_reclaims() {
        let report = program_interference(7).run().expect("preset must run");
        // The fault schedule fired, the coupled/corrupt pages were seen
        // at read time, and the interference-pressure scrubber reclaimed
        // the damaged blocks with explicit attribution.
        assert!(
            report.total_injected_partial_programs > 0,
            "the 2% schedule must interrupt some of the preset's programs"
        );
        assert!(report.total_interference_reads > 0);
        let interference_reclaims: u64 = report
            .service_reports()
            .map(|s| s.ftl.interference_reclaims)
            .sum();
        assert!(
            interference_reclaims > 0,
            "partially-programmed pages must press blocks past the scrub threshold"
        );
        assert!(report.total_scrub_relocations + report.total_scrub_erases > 0);
        // Power loss without end-to-end protection is data loss: the
        // interrupted pages fail ECC deterministically.
        assert!(report.read_failures > 0);
        let churn = &phase(&report, "churn").services[0];
        assert!(churn.model_interference_rber > 0.0);
        assert!(churn.injected_partial_programs > 0);
        // Determinism: the preset is a fixed function of its seed.
        assert_eq!(report, program_interference(7).run().unwrap());
    }

    #[test]
    fn write_hammer_attacker_damage_is_recovered_by_scrub_or_retry() {
        let none = write_hammer(7, MitigationMode::None).run().unwrap();
        let scrub = write_hammer(7, MitigationMode::ScrubOnly).run().unwrap();
        let retry = write_hammer(7, MitigationMode::RetryOnly).run().unwrap();

        let victim = |r: &crate::sim::ScenarioReport, ph: &str| {
            phase(r, ph)
                .services
                .iter()
                .find(|s| s.service == "victim")
                .expect("victim service")
                .clone()
        };

        // Unmitigated, the attacker's programs press the victim's
        // parked blocks across the shared die until its reads fail.
        let v_none = victim(&none, "hammer");
        assert!(
            v_none.model_interference_rber > 1e-3,
            "attacker must press the victim: {:e}",
            v_none.model_interference_rber
        );
        assert!(v_none.interference_reads > 0);
        assert!(v_none.read_failures > 0, "victim reads must start failing");
        assert_eq!(v_none.writes, 0, "the victim is read-only by design");
        assert!(none.total_injected_partial_programs == 0);

        // The damage in UBER terms, measured at the closing sweep: the
        // victim loses more than a decade, and either mitigation alone
        // recovers at least one decade of it.
        let vv_none = victim(&none, "verify");
        assert!(vv_none.model_log10_uber_disturbed > vv_none.model_log10_uber + 1.0);
        for (arm, report) in [("scrub", &scrub), ("retry", &retry)] {
            let vv = victim(report, "verify");
            let recovered = vv_none.model_log10_uber_disturbed - vv.model_log10_uber_disturbed;
            assert!(
                recovered >= 1.0,
                "{arm} must recover >= 1 decade of victim UBER, got {recovered:.2} \
                 (none {:.2}, {arm} {:.2})",
                vv_none.model_log10_uber_disturbed,
                vv.model_log10_uber_disturbed
            );
        }

        // Each mitigation pays in its own currency.
        assert!(scrub.total_scrub_relocations > 0, "scrubber must have run");
        assert_eq!(scrub.total_retried_reads, 0);
        assert!(retry.total_retried_reads > 0, "the ladder must have walked");
        assert_eq!(retry.total_scrub_relocations + retry.total_scrub_erases, 0);
        assert!(
            retry.read_failures < none.read_failures,
            "retry must recover failing victim reads: {} vs {}",
            retry.read_failures,
            none.read_failures
        );

        // Determinism: every arm is a fixed function of the seed.
        assert_eq!(none, write_hammer(7, MitigationMode::None).run().unwrap());
        assert_eq!(
            scrub,
            write_hammer(7, MitigationMode::ScrubOnly).run().unwrap()
        );
    }
}
