//! Named multi-channel workload presets.
//!
//! The single-target scenarios of the paper cannot express the two
//! failure modes a real multi-die SSD lives with:
//!
//! * **die skew** — dies age at different rates (a die that hosted a
//!   hot tenant, or a weak die binned low at test), so one bank of a
//!   striped region needs a stronger ECC schedule than its siblings;
//! * **channel contention** — tenants whose regions sit on dies behind
//!   the *same* channel serialize on its bus, while a tenant alone on
//!   another channel runs unimpeded.
//!
//! These presets pin both down as deterministic [`Scenario`]s the
//! `WorkloadRunner` drives end-to-end through the striped FTL, the
//! per-die operating-point memo and the channel busy-time scheduler.

use mlcx_controller::ControllerConfig;
use mlcx_nand::{DeviceGeometry, Topology};

use crate::engine::EngineBuilder;
use crate::policy::Objective;
use crate::sim::{Scenario, TraceKind};

/// A small multi-die engine: `blocks` x 8-page blocks under `topology`
/// (everything else the paper's calibration).
fn engine_with(blocks: usize, topology: Topology) -> EngineBuilder {
    let mut config = ControllerConfig::date2012();
    config.geometry = DeviceGeometry {
        blocks,
        pages_per_block: 8,
        topology,
        ..config.geometry
    };
    EngineBuilder::date2012().controller_config(config)
}

/// Die-skew preset: one zipf key-value service striped over a
/// 2-channel bank (8 blocks per die), with die 1 fast-forwarded 900k
/// cycles between the phases. The `skewed` phase runs against a
/// wear-imbalanced bank: writes landing on die 1 derive their own
/// (stronger) operating point from the per-die memo while die 0 keeps
/// the fresh schedule, and reads of die-1 pages see end-of-life RBER.
pub fn die_skew(seed: u64) -> Scenario {
    Scenario::builder()
        .engine(engine_with(16, Topology::new(2, 1)))
        .seed(seed)
        .batch_size(32)
        .service("kv", Objective::Baseline, 0..16, TraceKind::zipfian())
        .phase_with_die_skew("fresh", 80, 0, &[(1, 900_000)])
        .phase("skewed", 80, 0)
        .build()
        .expect("die-skew preset must validate")
}

/// Channel-contention preset: a 2x2 bank (4 dies, 4 blocks each) where
/// a `noisy` write-burst tenant and a `victim` read-mostly tenant own
/// dies 0 and 1 — both behind channel 0 — while an `isolated` tenant
/// with the victim's exact trace owns die 2, alone on channel 1. The
/// two channels' bus busy-times expose the contention: channel 0
/// carries both tenants' transfers serially, channel 1 only the
/// isolated tenant's.
pub fn channel_contention(seed: u64) -> Scenario {
    Scenario::builder()
        .engine(engine_with(16, Topology::new(2, 2)))
        .seed(seed)
        .batch_size(32)
        .prefill(true)
        .service(
            "noisy",
            Objective::Baseline,
            0..4,
            TraceKind::WriteBurst { burst_len: 8 },
        )
        .service(
            "victim",
            Objective::Baseline,
            4..8,
            TraceKind::read_mostly(),
        )
        .service(
            "isolated",
            Objective::Baseline,
            8..12,
            TraceKind::read_mostly(),
        )
        .phase("contend", 90, 0)
        .build()
        .expect("channel-contention preset must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_skew_preset_splits_the_wear_and_stays_clean() {
        let report = die_skew(11).run().expect("preset must run");
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        let fresh = &report.phases[0].services[0];
        let skewed = &report.phases[1].services[0];
        assert!(fresh.max_wear < 10_000, "fresh phase: {}", fresh.max_wear);
        assert!(
            skewed.max_wear >= 900_000,
            "the skewed die must dominate the service's wear: {}",
            skewed.max_wear
        );
        assert!(skewed.model_rber > fresh.model_rber * 10.0);
        // Two channels: batches overlap, so the run's overlapped time
        // beats the serial sum.
        assert!(report.total_parallel_time_s < report.total_device_time_s);
        assert!(report.achieved_parallelism() > 1.0);
    }

    #[test]
    fn channel_contention_preset_loads_the_shared_channel() {
        let report = channel_contention(23).run().expect("preset must run");
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        let contend = report
            .phases
            .iter()
            .find(|p| p.name == "contend")
            .expect("contend phase");
        // All three tenants ran traffic and the topology overlapped it.
        assert_eq!(contend.services.len(), 3);
        assert!(contend.parallel_time_s < contend.device_time_s);
        assert!(contend.channel_busy_s > 0.0);
        // Determinism: the preset is a fixed function of its seed.
        let again = channel_contention(23).run().unwrap();
        assert_eq!(report, again);
    }
}
