//! Multi-service scenarios, the workload runner and the report types.

use std::collections::BTreeMap;
use std::ops::Range;

use mlcx_controller::ftl::{FtlOp, FtlStats, LogicalMap};
use mlcx_controller::scrub::{ScrubPolicy, Scrubber};

use crate::engine::{
    Command, CommandOutput, Completion, EngineBuilder, ServiceHandle, StorageEngine, WearBucketing,
};
use crate::error::MlcxError;
use crate::event::{PolicyBundle, QosSpec, SchedPolicy};
use crate::policy::Objective;
use crate::report::{fixed2, sci, Table};
use crate::sim::trace::{TraceGenerator, TraceKind, TraceOp};

/// One service of a scenario: a named block region bound to a
/// cross-layer objective, exercised by one trace pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Service name ("log", "archive", ...).
    pub name: String,
    /// The cross-layer objective the region is bound to.
    pub objective: Objective,
    /// The block range the service owns (at least two blocks; one is
    /// FTL garbage-collection headroom).
    pub blocks: Range<usize>,
    /// The access pattern driving the service.
    pub trace: TraceKind,
    /// The service's QoS contract (weight/deadline/queue depth) under
    /// the engine's dispatch policy.
    pub qos: QosSpec,
}

/// One phase of a scenario: a slice of trace traffic followed by an
/// optional lifetime fast-forward.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name ("fresh", "mid-life", ...).
    pub name: String,
    /// Trace operations issued *per service* during the phase.
    pub ops_per_service: usize,
    /// P/E cycles added to **every** block after the phase's traffic
    /// (see `MemoryController::age_all`); 0 skips the fast-forward.
    pub fast_forward_cycles: u64,
    /// Additional per-die fast-forwards `(die, cycles)` applied after
    /// the uniform one — the die-skew knob (dies age independently; a
    /// die that hosted a hot tenant, or a weak die binned low at test).
    pub die_skew: Vec<(usize, u64)>,
    /// Hours added to the device wall clock after the phase's traffic
    /// (see `StorageEngine::advance_hours`) — the retention time base.
    /// 0 skips the jump; with the default disabled disturb model the
    /// jump has no observable effect at all.
    pub elapsed_hours: f64,
}

/// Latency percentiles over one population of device operations.
///
/// Percentiles use the nearest-rank method on the sorted samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples, seconds.
    pub total_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds — the tail the QoS scheduler trades
    /// between tenants.
    pub p999_s: f64,
    /// Worst observed sample, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let rank = |q: f64| samples[(((q * n as f64).ceil() as usize).max(1) - 1).min(n - 1)];
        LatencyStats {
            count: n,
            total_s: samples.iter().sum(),
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            p99_s: rank(0.99),
            p999_s: rank(0.999),
            max_s: samples[n - 1],
        }
    }

    /// Arithmetic mean, seconds (0 with no samples).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// Per-service accounting of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePhaseReport {
    /// Service name.
    pub service: String,
    /// The objective the service ran under.
    pub objective: Objective,
    /// The trace pattern that drove the service.
    pub trace: TraceKind,
    /// Host reads issued (mapped pages only).
    pub reads: usize,
    /// Host writes completed.
    pub writes: usize,
    /// Trace reads of never-written pages (skipped, not issued).
    pub cold_reads: usize,
    /// Reads whose ECC decode did not succeed (or that errored).
    pub read_failures: usize,
    /// Successful reads whose payload did not match the expected
    /// deterministic pattern.
    pub integrity_violations: u64,
    /// Host read latency percentiles.
    pub read_latency: LatencyStats,
    /// Host write latency percentiles.
    pub write_latency: LatencyStats,
    /// Host flow-time percentiles (completion minus arrival on the
    /// engine's virtual clock, over every host command of the service):
    /// queueing delay *plus* device time — the latency a tenant
    /// actually observes, and the one the dispatch policy
    /// redistributes.
    pub flow_latency: LatencyStats,
    /// Modeled energy over all the service's operations (incl. GC),
    /// joules.
    pub energy_j: f64,
    /// Raw bit errors the ECC corrected for this service this phase.
    pub corrected_bits: u64,
    /// Measured raw bit error rate: corrected bits over codeword bits
    /// read (0 with no reads).
    pub measured_rber: f64,
    /// The model's RBER for the service's program algorithm at the
    /// phase-end wear.
    pub model_rber: f64,
    /// The model's `log10(UBER)` at the service's operating point at
    /// the phase-end wear.
    pub model_log10_uber: f64,
    /// Worst additive disturb RBER (read disturb + retention) across
    /// the service's blocks at phase end — 0 under the default disabled
    /// disturb model; what a scrubber exists to pull back down.
    pub model_disturb_rber: f64,
    /// The model's `log10(UBER)` at the operating point with the
    /// worst-block disturb RBER added on top of the endurance RBER —
    /// equals [`ServicePhaseReport::model_log10_uber`] when disturb is
    /// disabled or fully scrubbed away.
    pub model_log10_uber_disturbed: f64,
    /// Scrub relocations executed for this service this phase.
    pub scrub_relocations: u64,
    /// Scrub erases executed for this service this phase.
    pub scrub_erases: u64,
    /// Reads (host, GC, or scrub-relocate source) whose first sense was
    /// uncorrectable and entered the retry ladder this phase.
    pub retried_reads: u64,
    /// Extra read-retry senses beyond each read's first this phase.
    pub retry_senses: u64,
    /// Extra device time the retry senses cost this phase, seconds
    /// (already included in the read latencies).
    pub retry_latency_s: f64,
    /// Reads (host or GC) whose page carried a nonzero
    /// program-interference RBER term — neighbor coupling, die-level
    /// program disturb, or a partially programmed page — at sense time.
    /// 0 under the default disabled interference model.
    pub interference_reads: u64,
    /// Programs of this service the engine's fault-injection schedule
    /// interrupted mid-staircase this phase (0 with injection disabled).
    pub injected_partial_programs: u64,
    /// Worst program-interference RBER across the service's blocks at
    /// phase end — the pressure the scrub candidate scan sees; 0 under
    /// the default disabled interference model.
    pub model_interference_rber: f64,
    /// Highest P/E cycle count across the service's blocks at phase
    /// end (before the phase's fast-forward).
    pub max_wear: u64,
    /// FTL counter deltas for the phase.
    pub ftl: FtlStats,
    /// Write amplification over the phase's FTL delta.
    pub write_amplification: f64,
}

/// Aggregate accounting of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// The fast-forward applied *after* this phase's traffic.
    pub fast_forward_cycles: u64,
    /// The wall-clock jump applied *after* this phase's traffic, hours.
    pub elapsed_hours: f64,
    /// Per-service breakdowns.
    pub services: Vec<ServicePhaseReport>,
    /// Engine commands executed.
    pub commands: usize,
    /// Total modeled device time, seconds (serial sum).
    pub device_time_s: f64,
    /// Total modeled batch time with channel/die overlap (the sum of
    /// the phase's batch makespans; equals
    /// [`PhaseReport::device_time_s`] on a 1-channel/1-die topology).
    pub parallel_time_s: f64,
    /// Total bus busy time across every channel, seconds.
    pub channel_busy_s: f64,
    /// Total modeled energy, joules.
    pub energy_j: f64,
    /// Operating points served from the engine's memo cache.
    pub op_cache_hits: u64,
    /// Operating points derived from the model.
    pub op_cache_misses: u64,
    /// Configuration register writes actually issued.
    pub knob_writes: u64,
    /// Scrub relocations executed across every service this phase.
    pub scrub_relocations: u64,
    /// Scrub erases executed across every service this phase.
    pub scrub_erases: u64,
    /// Reads that entered the retry ladder across every service this
    /// phase.
    pub retried_reads: u64,
    /// Extra read-retry senses across every service this phase.
    pub retry_senses: u64,
    /// Reads that carried a nonzero interference RBER term across every
    /// service this phase.
    pub interference_reads: u64,
    /// Programs the fault-injection schedule interrupted across every
    /// service this phase.
    pub injected_partial_programs: u64,
}

impl PhaseReport {
    fn totals(services: &[ServicePhaseReport]) -> f64 {
        services.iter().map(|s| s.energy_j).sum()
    }
}

/// The full record of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Every executed phase, in order: the optional `prefill`, the
    /// configured phases, then the closing `verify` sweep.
    pub phases: Vec<PhaseReport>,
    /// Engine commands executed across all phases.
    pub total_commands: usize,
    /// Total modeled device time, seconds (serial sum).
    pub total_device_time_s: f64,
    /// Total modeled batch time with channel/die overlap, seconds.
    pub total_parallel_time_s: f64,
    /// Total modeled energy, joules.
    pub total_energy_j: f64,
    /// Operating points derived from the model across the whole run
    /// (the memoization pressure a [`WearBucketing`] policy absorbs).
    pub op_cache_misses: u64,
    /// Operating points served from the engine's memo cache.
    pub op_cache_hits: u64,
    /// Mapped pages read back by the closing verification sweep.
    pub verified_pages: usize,
    /// Integrity violations across all phases (0 on a healthy run).
    pub integrity_violations: u64,
    /// ECC decode failures across all phases.
    pub read_failures: usize,
    /// Scrub relocations executed across the whole run.
    pub total_scrub_relocations: u64,
    /// Scrub erases executed across the whole run.
    pub total_scrub_erases: u64,
    /// Reads that entered the retry ladder across the whole run.
    pub total_retried_reads: u64,
    /// Extra read-retry senses across the whole run (the latency-domain
    /// price of recovery, where scrub's is
    /// [`ScenarioReport::total_scrub_relocations`]).
    pub total_retry_senses: u64,
    /// Reads that carried a nonzero interference RBER term across the
    /// whole run (0 under the default disabled interference model).
    pub total_interference_reads: u64,
    /// Programs the fault-injection schedule interrupted across the
    /// whole run (0 with injection disabled).
    pub total_injected_partial_programs: u64,
}

impl ScenarioReport {
    /// All per-service reports of every phase, flattened.
    pub fn service_reports(&self) -> impl Iterator<Item = &ServicePhaseReport> {
        self.phases.iter().flat_map(|p| p.services.iter())
    }

    /// Serial device time over overlapped batch time across the run:
    /// how many channels' worth of work the topology absorbed (1.0 on a
    /// single die; 0 with no device time).
    pub fn achieved_parallelism(&self) -> f64 {
        if self.total_parallel_time_s <= 0.0 {
            return 0.0;
        }
        self.total_device_time_s / self.total_parallel_time_s
    }

    /// Renders the per-phase, per-service breakdown as an ASCII table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "phase",
            "service",
            "trace",
            "reads",
            "writes",
            "cold",
            "WA",
            "p50r_us",
            "p99r_us",
            "p50w_us",
            "p99w_us",
            "mJ",
            "rber",
            "d-rber",
            "lg-uber",
            "lg-uber+d",
            "scrub",
            "retry",
            "i-rber",
            "interf",
            "wear",
        ]);
        for phase in &self.phases {
            for s in &phase.services {
                t.row(vec![
                    phase.name.clone(),
                    s.service.clone(),
                    s.trace.label().into(),
                    s.reads.to_string(),
                    s.writes.to_string(),
                    s.cold_reads.to_string(),
                    fixed2(s.write_amplification),
                    fixed2(s.read_latency.p50_s * 1e6),
                    fixed2(s.read_latency.p99_s * 1e6),
                    fixed2(s.write_latency.p50_s * 1e6),
                    fixed2(s.write_latency.p99_s * 1e6),
                    fixed2(s.energy_j * 1e3),
                    sci(s.measured_rber),
                    sci(s.model_disturb_rber),
                    fixed2(s.model_log10_uber),
                    fixed2(s.model_log10_uber_disturbed),
                    format!("{}r/{}e", s.scrub_relocations, s.scrub_erases),
                    format!("{}r/{}s", s.retried_reads, s.retry_senses),
                    sci(s.model_interference_rber),
                    format!("{}r/{}i", s.interference_reads, s.injected_partial_programs),
                    s.max_wear.to_string(),
                ]);
            }
        }
        let mut out = t.render();
        out.push_str(&format!(
            "total: {} commands, {:.3} ms device time ({:.3} ms overlapped, {:.2}x parallel), {:.3} mJ, {} pages verified, {} integrity violations, {} scrub relocations, {} scrub erases, {} retried reads, {} retry senses, {} interference reads, {} injected partial programs\n",
            self.total_commands,
            self.total_device_time_s * 1e3,
            self.total_parallel_time_s * 1e3,
            self.achieved_parallelism(),
            self.total_energy_j * 1e3,
            self.verified_pages,
            self.integrity_violations,
            self.total_scrub_relocations,
            self.total_scrub_erases,
            self.total_retried_reads,
            self.total_retry_senses,
            self.total_interference_reads,
            self.total_injected_partial_programs,
        ));
        out
    }
}

/// A declarative multi-service workload/lifetime scenario.
///
/// Built with [`Scenario::builder`]; executed with [`Scenario::run`],
/// which constructs a fresh engine, formats the service regions, drives
/// every phase's trace traffic through the engine's typed
/// submission/completion queues (logical addresses routed through a
/// per-service [`LogicalMap`]), applies the lifetime fast-forwards, and
/// closes with a full verification sweep.
///
/// # Example
///
/// ```
/// use mlcx_controller::ControllerConfig;
/// use mlcx_core::engine::EngineBuilder;
/// use mlcx_core::sim::{Scenario, TraceKind};
/// use mlcx_core::Objective;
/// use mlcx_nand::DeviceGeometry;
///
/// // A small device keeps the example fast.
/// let mut config = ControllerConfig::date2012();
/// config.geometry = DeviceGeometry { blocks: 8, pages_per_block: 8, ..config.geometry };
/// let scenario = Scenario::builder()
///     .engine(EngineBuilder::date2012().controller_config(config))
///     .seed(7)
///     .service("log", Objective::MaxReadThroughput, 0..4, TraceKind::Sequential)
///     .service("archive", Objective::MinUber, 4..8, TraceKind::zipfian())
///     .phase("fresh", 24, 100_000)
///     .phase("aged", 24, 0)
///     .build()?;
/// let report = scenario.run()?;
/// assert_eq!(report.integrity_violations, 0);
/// assert!(report.total_energy_j > 0.0);
/// # Ok::<(), mlcx_core::MlcxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    engine: EngineBuilder,
    services: Vec<ServiceSpec>,
    phases: Vec<PhaseSpec>,
    seed: u64,
    batch_size: usize,
    prefill: bool,
    utilization: f64,
}

impl Scenario {
    /// A builder with the paper's engine calibration, seed 2012, batch
    /// size 64, no prefill and 85 % utilization.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            engine: EngineBuilder::date2012(),
            services: Vec::new(),
            phases: Vec::new(),
            seed: 2012,
            batch_size: 64,
            prefill: false,
            utilization: 0.85,
        }
    }

    /// The configured services.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// The configured phases.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The master seed (engine error injection + trace streams).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// Engine construction/validation errors, FTL space exhaustion, and
    /// datapath errors on writes or the simulator's own (GC) traffic;
    /// host read failures (ECC decode misses) are reported in the
    /// [`ScenarioReport`] counters instead.
    pub fn run(&self) -> Result<ScenarioReport, MlcxError> {
        WorkloadRunner::new(self)?.run()
    }
}

/// Fluent construction of a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    engine: EngineBuilder,
    services: Vec<ServiceSpec>,
    phases: Vec<PhaseSpec>,
    seed: u64,
    batch_size: usize,
    prefill: bool,
    utilization: f64,
}

impl ScenarioBuilder {
    /// Overrides the engine configuration (geometry, model, wear
    /// bucketing). The scenario's [`ScenarioBuilder::seed`] is applied
    /// on top at run time.
    pub fn engine(mut self, engine: EngineBuilder) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the engine's operating-point memoization policy.
    pub fn wear_bucketing(mut self, bucketing: WearBucketing) -> Self {
        self.engine = self.engine.wear_bucketing(bucketing);
        self
    }

    /// The master seed: drives the device error-injection stream and
    /// (via per-service derivation) every trace generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Commands accumulated before a submit/drain round trip through
    /// the engine's queues (default 64).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Writes every logical page of every service's trace space once
    /// before phase 1, so read-heavy traces never miss (reported as a
    /// `prefill` phase).
    pub fn prefill(mut self, prefill: bool) -> Self {
        self.prefill = prefill;
        self
    }

    /// Fraction of each service's exported FTL capacity the trace
    /// address space covers, in `(0, 1]` (default 0.85, clamped).
    ///
    /// This is the standard over-provisioning knob of SSD workload
    /// studies: at 100 % utilization a one-spare-block FTL is forced
    /// into pathological write amplification (every GC victim is almost
    /// entirely live), which drowns the cross-layer signal in
    /// relocation traffic.
    pub fn utilization(mut self, utilization: f64) -> Self {
        self.utilization = utilization.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Adds a service with the default (neutral) QoS contract.
    pub fn service(
        self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
        trace: TraceKind,
    ) -> Self {
        self.service_with_qos(name, objective, blocks, trace, QosSpec::default())
    }

    /// Adds a service with an explicit QoS contract — weighted-fair
    /// share, deadline and bounded queue depth under the scenario's
    /// dispatch policy (see [`ScenarioBuilder::sched_policy`]).
    pub fn service_with_qos(
        mut self,
        name: &str,
        objective: Objective,
        blocks: Range<usize>,
        trace: TraceKind,
        qos: QosSpec,
    ) -> Self {
        self.services.push(ServiceSpec {
            name: name.to_string(),
            objective,
            blocks,
            trace,
            qos,
        });
        self
    }

    /// Adds a phase.
    pub fn phase(mut self, name: &str, ops_per_service: usize, fast_forward_cycles: u64) -> Self {
        self.phases.push(PhaseSpec {
            name: name.to_string(),
            ops_per_service,
            fast_forward_cycles,
            die_skew: Vec::new(),
            elapsed_hours: 0.0,
        });
        self
    }

    /// Adds a phase that also advances the device wall clock by
    /// `elapsed_hours` after its traffic (and after the wear
    /// fast-forward): stored pages age against the retention model, so
    /// the *next* phase reads data that sat for `elapsed_hours`. With
    /// the default disabled disturb model the jump is a no-op, keeping
    /// clocked scenarios bit-identical to unclocked ones.
    pub fn phase_with_elapsed(
        mut self,
        name: &str,
        ops_per_service: usize,
        fast_forward_cycles: u64,
        elapsed_hours: f64,
    ) -> Self {
        self.phases.push(PhaseSpec {
            name: name.to_string(),
            ops_per_service,
            fast_forward_cycles,
            die_skew: Vec::new(),
            elapsed_hours,
        });
        self
    }

    /// Adds a phase whose fast-forward is skewed per die: after the
    /// phase's traffic (and the uniform `fast_forward_cycles`, if any),
    /// each `(die, cycles)` entry ages that die's blocks further. The
    /// next phase then runs against a wear-imbalanced bank — the
    /// per-die operating-point memo must split, and read traffic on the
    /// skewed die sees the aged RBER.
    pub fn phase_with_die_skew(
        mut self,
        name: &str,
        ops_per_service: usize,
        fast_forward_cycles: u64,
        die_skew: &[(usize, u64)],
    ) -> Self {
        self.phases.push(PhaseSpec {
            name: name.to_string(),
            ops_per_service,
            fast_forward_cycles,
            die_skew: die_skew.to_vec(),
            elapsed_hours: 0.0,
        });
        self
    }

    /// Installs a read-disturb / retention model on the device (default
    /// disabled — the paper's evaluation conditions). The knob lives on
    /// the inner engine builder, so call this *after*
    /// [`ScenarioBuilder::engine`], which replaces that builder — and
    /// this knob with it.
    pub fn disturb_model(mut self, disturb: mlcx_nand::disturb::DisturbModel) -> Self {
        self.engine = self.engine.disturb_model(disturb);
        self
    }

    /// Installs a program-fault injection schedule (default
    /// [`crate::FaultPlan::disabled`] — zero injections, zero RNG draws,
    /// bit-identical reports). The knob lives on the inner engine
    /// builder, so call this *after* [`ScenarioBuilder::engine`], which
    /// replaces that builder — and this knob with it.
    pub fn fault_plan(mut self, fault: crate::FaultPlan) -> Self {
        self.engine = self.engine.fault_plan(fault);
        self
    }

    /// Enables background scrub / read-reclaim: every service gets its
    /// own `Scrubber` enforcing `policy` against its block region, and
    /// the resulting relocate+erase maintenance is compiled into the
    /// same command batches as host traffic — competing with it for
    /// bus/cell time on the channel scheduler. As with
    /// [`ScenarioBuilder::disturb_model`], call this *after*
    /// [`ScenarioBuilder::engine`]: replacing the engine builder
    /// replaces this knob too.
    pub fn scrub_policy(mut self, policy: ScrubPolicy) -> Self {
        self.engine = self.engine.scrub_policy(policy);
        self
    }

    /// Enables stepped read-reference retry on uncorrectable reads: the
    /// controller walks `policy`'s ladder and remembers the winning
    /// offset per block, trading read latency for recovered reads where
    /// [`ScenarioBuilder::scrub_policy`] trades write amplification
    /// (see `RetryPolicy` for the precedence between the two). As with
    /// [`ScenarioBuilder::disturb_model`], call this *after*
    /// [`ScenarioBuilder::engine`]: replacing the engine builder
    /// replaces this knob too.
    pub fn retry_policy(mut self, policy: mlcx_controller::retry::RetryPolicy) -> Self {
        self.engine = self.engine.retry_policy(policy);
        self
    }

    /// Selects the codec kernel rung of the BCH datapath (default
    /// `Auto`, the fastest rung). Every rung decodes bit-identically, so
    /// scenario reports do not depend on this knob — only wall-clock
    /// speed does. As with [`ScenarioBuilder::disturb_model`], call this
    /// *after* [`ScenarioBuilder::engine`]: replacing the engine builder
    /// replaces this knob too.
    pub fn codec_kernel(mut self, kernel: mlcx_controller::CodecKernel) -> Self {
        self.engine = self.engine.codec_kernel(kernel);
        self
    }

    /// Selects the engine's cross-service dispatch policy (default
    /// [`SchedPolicy::ServiceMajor`], the bit-identical historical
    /// order). As with [`ScenarioBuilder::disturb_model`], call this
    /// *after* [`ScenarioBuilder::engine`]: replacing the engine builder
    /// replaces this knob too.
    pub fn sched_policy(mut self, sched: SchedPolicy) -> Self {
        self.engine = self.engine.sched_policy(sched);
        self
    }

    /// Installs a whole [`PolicyBundle`] (retry, scrub, disturb, codec
    /// kernel, dispatch policy) in one call — the same bundle
    /// [`EngineBuilder::policies`] accepts, so an experiment configures
    /// its engine and its scenario from one value. As with
    /// [`ScenarioBuilder::disturb_model`], call this *after*
    /// [`ScenarioBuilder::engine`]: replacing the engine builder
    /// replaces these knobs too.
    pub fn policies(mut self, bundle: PolicyBundle) -> Self {
        self.engine = self.engine.policies(bundle);
        self
    }

    /// Validates and produces the scenario.
    ///
    /// # Errors
    ///
    /// [`MlcxError::InvalidConfig`] when no service or phase is
    /// configured, a service region holds fewer than two blocks (the
    /// FTL needs one block of garbage-collection headroom per region),
    /// or a trace's parameters fail [`TraceKind::validate`].
    pub fn build(self) -> Result<Scenario, MlcxError> {
        if self.services.is_empty() {
            return Err(MlcxError::InvalidConfig {
                reason: "scenario needs at least one service".into(),
            });
        }
        if self.phases.is_empty() {
            return Err(MlcxError::InvalidConfig {
                reason: "scenario needs at least one phase".into(),
            });
        }
        for s in &self.services {
            if s.blocks.len() < 2 {
                return Err(MlcxError::InvalidConfig {
                    reason: format!(
                        "service {} owns {} block(s); at least 2 required (GC headroom)",
                        s.name,
                        s.blocks.len()
                    ),
                });
            }
            if let Err(reason) = s.trace.validate() {
                return Err(MlcxError::InvalidConfig {
                    reason: format!("service {}: {reason}", s.name),
                });
            }
        }
        Ok(Scenario {
            engine: self.engine,
            services: self.services,
            phases: self.phases,
            seed: self.seed,
            batch_size: self.batch_size,
            prefill: self.prefill,
            utilization: self.utilization,
        })
    }
}

/// What a submitted command was for (accounting + data routing).
enum CmdMeta {
    /// A trace read: verify the payload against `(svc, lpn, version)`.
    HostRead {
        svc: usize,
        lpn: usize,
        version: u64,
    },
    /// A trace write.
    HostWrite { svc: usize },
    /// A GC relocation read: stash the data in `gc_data[slot]`.
    GcRead { svc: usize, slot: usize },
    /// A GC relocation write.
    GcWrite { svc: usize },
    /// A GC victim erase.
    GcErase { svc: usize },
    /// A scrub relocation (engine-level copy-back).
    ScrubRelocate { svc: usize },
    /// A scrub erase.
    ScrubErase { svc: usize },
}

/// Per-phase, per-service accumulator.
#[derive(Default)]
struct Acc {
    reads: usize,
    writes: usize,
    cold_reads: usize,
    read_failures: usize,
    integrity_violations: u64,
    read_lat: Vec<f64>,
    write_lat: Vec<f64>,
    flow_lat: Vec<f64>,
    energy_j: f64,
    corrected_bits: u64,
    codeword_bits_read: u64,
    scrub_relocations: u64,
    scrub_erases: u64,
    retried_reads: u64,
    retry_senses: u64,
    retry_latency_s: f64,
    interference_reads: u64,
    injected_partial_programs: u64,
}

struct SimService {
    name: String,
    objective: Objective,
    trace: TraceKind,
    handle: ServiceHandle,
    map: LogicalMap,
    gen: TraceGenerator,
    /// lpn -> version of the latest accepted write (payload derivation).
    versions: BTreeMap<usize, u64>,
    ftl_at_phase_start: FtlStats,
    acc: Acc,
}

/// Compiles trace streams into engine command batches and drives them
/// through the engine's submission/completion queues, routing logical
/// addresses through a per-service [`LogicalMap`] so garbage collection
/// and write amplification are exercised on the real datapath.
///
/// Most callers want [`Scenario::run`]; the runner is public so
/// experiment harnesses can inspect the [`StorageEngine`] mid-run.
pub struct WorkloadRunner {
    engine: StorageEngine,
    services: Vec<SimService>,
    /// Per-service scrubbers (present only under an enabled
    /// [`ScrubPolicy`]); each scans its own service's region/map.
    scrubbers: Vec<Option<Scrubber>>,
    phases: Vec<PhaseSpec>,
    batch_size: usize,
    prefill: bool,
    page_bytes: usize,
    k_bits: usize,
    ecc_m: u32,
    /// Commands staged for the next submit, with their accounting tags.
    pending: Vec<(Command, CmdMeta)>,
    /// CmdId -> accounting tag for everything submitted and unpolled.
    meta: BTreeMap<u64, CmdMeta>,
    /// Relocation read payloads, indexed by the batch slot.
    gc_data: Vec<Option<Vec<u8>>>,
    phase_commands: usize,
    phase_device_time_s: f64,
    phase_parallel_time_s: f64,
    phase_channel_busy_s: f64,
    phase_op_cache_hits: u64,
    phase_op_cache_misses: u64,
    phase_knob_writes: u64,
}

/// The deterministic page payload of `(service, lpn, version)`.
fn payload(page_bytes: usize, svc: usize, lpn: usize, version: u64) -> Vec<u8> {
    let tag = (svc as u64 + 1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((lpn as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
        .wrapping_add(version.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    (0..page_bytes)
        .map(|i| {
            (tag.wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 56) as u8
        })
        .collect()
}

impl WorkloadRunner {
    /// Builds the engine, registers and formats every service region,
    /// and seeds the trace generators.
    ///
    /// # Errors
    ///
    /// Engine construction errors; [`MlcxError::InvalidConfig`] when a
    /// region exceeds the device geometry; controller errors from the
    /// format pass.
    pub fn new(scenario: &Scenario) -> Result<Self, MlcxError> {
        let mut engine = scenario.engine.clone().seed(scenario.seed).build()?;
        let geometry = engine.controller().config().geometry;
        let mut services = Vec::with_capacity(scenario.services.len());
        for (i, spec) in scenario.services.iter().enumerate() {
            if spec.blocks.end > geometry.blocks {
                return Err(MlcxError::InvalidConfig {
                    reason: format!(
                        "service {} region {:?} exceeds the {}-block device",
                        spec.name, spec.blocks, geometry.blocks
                    ),
                });
            }
            let handle = engine.register_service_with_qos(
                &spec.name,
                spec.objective,
                spec.blocks.clone(),
                spec.qos,
            )?;
            for block in spec.blocks.clone() {
                engine.controller_mut().erase_block(block)?;
            }
            // Striped allocation: within the region, open blocks
            // round-robin across the dies the region covers, so a
            // service spanning several channels genuinely overlaps.
            let map = LogicalMap::striped(
                spec.blocks.clone(),
                geometry.pages_per_block,
                geometry.blocks_per_die(),
            );
            let trace_seed = scenario
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let trace_space =
                (((map.capacity_pages() as f64) * scenario.utilization) as usize).max(1);
            let gen = TraceGenerator::new(spec.trace, trace_space, trace_seed)
                .map_err(|reason| MlcxError::InvalidConfig { reason })?;
            services.push(SimService {
                name: spec.name.clone(),
                objective: spec.objective,
                trace: spec.trace,
                handle,
                map,
                gen,
                versions: BTreeMap::new(),
                ftl_at_phase_start: FtlStats::default(),
                acc: Acc::default(),
            });
        }
        let model = engine.model();
        let (k_bits, ecc_m) = (model.k_bits, model.ecc_m);
        let scrub = *engine.scrub_policy();
        let scrubbers = services
            .iter()
            .map(|_| scrub.is_enabled().then(|| Scrubber::new(scrub)))
            .collect();
        Ok(WorkloadRunner {
            engine,
            services,
            scrubbers,
            phases: scenario.phases.clone(),
            batch_size: scenario.batch_size,
            prefill: scenario.prefill,
            page_bytes: geometry.page_bytes,
            k_bits,
            ecc_m,
            pending: Vec::new(),
            meta: BTreeMap::new(),
            gc_data: Vec::new(),
            phase_commands: 0,
            phase_device_time_s: 0.0,
            phase_parallel_time_s: 0.0,
            phase_channel_busy_s: 0.0,
            phase_op_cache_hits: 0,
            phase_op_cache_misses: 0,
            phase_knob_writes: 0,
        })
    }

    /// The engine under the runner (wear inspection etc.).
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// Executes every phase (plus the optional prefill and the closing
    /// verification sweep) and consumes the runner.
    ///
    /// # Errors
    ///
    /// FTL space exhaustion and datapath errors on writes or
    /// simulator-issued (GC) traffic; host read failures (ECC decode
    /// misses) are reported in the [`ScenarioReport`] counters instead.
    pub fn run(mut self) -> Result<ScenarioReport, MlcxError> {
        let mut phases = Vec::new();
        if self.prefill {
            phases.push(self.run_prefill()?);
        }
        for spec in self.phases.clone() {
            phases.push(self.run_phase(&spec)?);
        }
        let (verify, verified_pages) = self.run_final_verify()?;
        phases.push(verify);

        let total_commands = phases.iter().map(|p| p.commands).sum();
        let total_device_time_s = phases.iter().map(|p| p.device_time_s).sum();
        let total_parallel_time_s = phases.iter().map(|p| p.parallel_time_s).sum();
        let total_energy_j = phases.iter().map(|p| p.energy_j).sum();
        let op_cache_misses = phases.iter().map(|p| p.op_cache_misses).sum();
        let op_cache_hits = phases.iter().map(|p| p.op_cache_hits).sum();
        let integrity_violations = phases
            .iter()
            .flat_map(|p| &p.services)
            .map(|s| s.integrity_violations)
            .sum();
        let read_failures = phases
            .iter()
            .flat_map(|p| &p.services)
            .map(|s| s.read_failures)
            .sum();
        let total_scrub_relocations = phases.iter().map(|p| p.scrub_relocations).sum();
        let total_scrub_erases = phases.iter().map(|p| p.scrub_erases).sum();
        let total_retried_reads = phases.iter().map(|p| p.retried_reads).sum();
        let total_retry_senses = phases.iter().map(|p| p.retry_senses).sum();
        let total_interference_reads = phases.iter().map(|p| p.interference_reads).sum();
        let total_injected_partial_programs =
            phases.iter().map(|p| p.injected_partial_programs).sum();
        Ok(ScenarioReport {
            phases,
            total_commands,
            total_device_time_s,
            total_parallel_time_s,
            total_energy_j,
            op_cache_misses,
            op_cache_hits,
            verified_pages,
            integrity_violations,
            read_failures,
            total_scrub_relocations,
            total_scrub_erases,
            total_retried_reads,
            total_retry_senses,
            total_interference_reads,
            total_injected_partial_programs,
        })
    }

    fn begin_phase(&mut self) {
        self.phase_commands = 0;
        self.phase_device_time_s = 0.0;
        self.phase_parallel_time_s = 0.0;
        self.phase_channel_busy_s = 0.0;
        self.phase_op_cache_hits = 0;
        self.phase_op_cache_misses = 0;
        self.phase_knob_writes = 0;
        for s in &mut self.services {
            s.ftl_at_phase_start = s.map.stats();
            s.acc = Acc::default();
        }
    }

    fn run_phase(&mut self, spec: &PhaseSpec) -> Result<PhaseReport, MlcxError> {
        self.begin_phase();
        // Round-robin across services per op, so the services genuinely
        // contend inside shared batches.
        for _ in 0..spec.ops_per_service {
            for svc in 0..self.services.len() {
                let op = self.services[svc].gen.next_op();
                self.apply_op(svc, op)?;
            }
        }
        // One closing scrub pass so a phase ends with its maintenance
        // debt visible in its own report, then drain everything.
        self.flush()?;
        self.scrub_tick()?;
        self.flush()?;
        let report = self.phase_report(&spec.name, spec.fast_forward_cycles, spec.elapsed_hours);
        if spec.fast_forward_cycles > 0 {
            self.engine
                .controller_mut()
                .age_all(spec.fast_forward_cycles);
        }
        for &(die, cycles) in &spec.die_skew {
            self.engine.controller_mut().age_die(die, cycles)?;
        }
        if spec.elapsed_hours > 0.0 {
            self.engine.advance_hours(spec.elapsed_hours);
        }
        Ok(report)
    }

    fn run_prefill(&mut self) -> Result<PhaseReport, MlcxError> {
        self.begin_phase();
        let spaces: Vec<usize> = self.services.iter().map(|s| s.gen.capacity()).collect();
        for (svc, space) in spaces.into_iter().enumerate() {
            for lpn in 0..space {
                self.apply_op(svc, TraceOp::Write(lpn))?;
            }
        }
        self.flush()?;
        Ok(self.phase_report("prefill", 0, 0.0))
    }

    fn run_final_verify(&mut self) -> Result<(PhaseReport, usize), MlcxError> {
        self.begin_phase();
        let mut verified = 0;
        for svc in 0..self.services.len() {
            for lpn in self.services[svc].map.mapped_lpns() {
                verified += 1;
                self.apply_op(svc, TraceOp::Read(lpn))?;
            }
        }
        self.flush()?;
        Ok((self.phase_report("verify", 0, 0.0), verified))
    }

    /// One background-scrub round: every enabled service scans its
    /// region's disturb state and *stages* the resulting relocate+erase
    /// maintenance onto the pending queue, so scrub traffic rides the
    /// next submitted batch — competing with host commands for bus and
    /// cell time inside the same scheduler window.
    ///
    /// Must run only while nothing is staged (right after a flush): the
    /// reclaim plans assume the map's physical state has landed on the
    /// device. Host operations staged *after* the tick are consistent —
    /// per-service FIFO executes the maintenance first, in plan order.
    fn scrub_tick(&mut self) -> Result<(), MlcxError> {
        if self.scrubbers.iter().all(Option::is_none) {
            return Ok(());
        }
        debug_assert!(
            self.pending.is_empty(),
            "scrub planning needs the staged state flushed"
        );
        let WorkloadRunner {
            engine,
            services,
            scrubbers,
            pending,
            ..
        } = self;
        let device = engine.controller().device();
        for (svc, (service, scrubber)) in services.iter_mut().zip(scrubbers.iter_mut()).enumerate()
        {
            let Some(scrubber) = scrubber.as_mut() else {
                continue;
            };
            let handle = service.handle;
            for op in scrubber.plan_pass(device, &mut service.map) {
                match op {
                    FtlOp::Relocate { from, to, .. } => pending.push((
                        Command::relocate(handle, from, to),
                        CmdMeta::ScrubRelocate { svc },
                    )),
                    FtlOp::Erase { block } => pending.push((
                        Command::scrub_erase(handle, block),
                        CmdMeta::ScrubErase { svc },
                    )),
                    FtlOp::Write { .. } => unreachable!("reclaim plans never host-write"),
                }
            }
        }
        Ok(())
    }

    /// Routes one trace operation: reads translate through the service's
    /// map; writes are planned (allocation + GC) and compiled into
    /// engine commands.
    fn apply_op(&mut self, svc: usize, op: TraceOp) -> Result<(), MlcxError> {
        match op {
            TraceOp::Read(lpn) => match self.services[svc].map.translate(lpn) {
                Some((block, page)) => {
                    let service = &self.services[svc];
                    let version = service.versions[&lpn];
                    let handle = service.handle;
                    self.services[svc].acc.reads += 1;
                    self.pending.push((
                        Command::read(handle, block, page),
                        CmdMeta::HostRead { svc, lpn, version },
                    ));
                }
                None => self.services[svc].acc.cold_reads += 1,
            },
            TraceOp::Write(lpn) => {
                let plan = {
                    let engine = &self.engine;
                    self.services[svc].map.plan_write(lpn, &mut |b| {
                        engine.controller().device().block_cycles(b).unwrap_or(0)
                    })?
                };
                if let [FtlOp::Write { lpn, to }] = plan[..] {
                    self.stage_host_write(svc, lpn, to);
                } else {
                    // The plan needs garbage collection: relocation
                    // reads must observe every previously staged write,
                    // so the pending batch is flushed first.
                    self.flush()?;
                    self.execute_plan(svc, &plan)?;
                }
            }
        }
        if self.pending.len() >= self.batch_size {
            self.flush()?;
            // With the staged state landed, let the scrubbers scan; any
            // maintenance they plan is staged ahead of the next batch's
            // host commands.
            self.scrub_tick()?;
        }
        Ok(())
    }

    /// Stages the host write of `lpn` to its allocated destination.
    fn stage_host_write(&mut self, svc: usize, lpn: usize, to: (usize, usize)) {
        let service = &mut self.services[svc];
        let version = service.versions.entry(lpn).or_insert(0);
        *version += 1;
        let data = payload(self.page_bytes, svc, lpn, *version);
        let handle = service.handle;
        self.pending.push((
            Command::write(handle, to.0, to.1, data),
            CmdMeta::HostWrite { svc },
        ));
    }

    /// Executes a multi-op FTL plan: runs of relocations become a read
    /// batch (harvesting the live data) followed by staged relocation
    /// writes; erases and the final host write ride the pending queue
    /// in plan order (FIFO per service preserves it).
    fn execute_plan(&mut self, svc: usize, plan: &[FtlOp]) -> Result<(), MlcxError> {
        let handle = self.services[svc].handle;
        let mut i = 0;
        while i < plan.len() {
            match plan[i] {
                FtlOp::Relocate { .. } => {
                    let start = i;
                    while i < plan.len() && matches!(plan[i], FtlOp::Relocate { .. }) {
                        i += 1;
                    }
                    self.relocate(svc, &plan[start..i])?;
                }
                FtlOp::Erase { block } => {
                    self.pending
                        .push((Command::erase(handle, block), CmdMeta::GcErase { svc }));
                    i += 1;
                }
                FtlOp::Write { lpn, to } => {
                    self.stage_host_write(svc, lpn, to);
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// One run of relocations: read every source page (its own batch,
    /// after a flush so earlier relocation writes have landed), then
    /// stage the copies. The destination writes re-encode through the
    /// service's current operating point at the destination wear.
    fn relocate(&mut self, svc: usize, relocs: &[FtlOp]) -> Result<(), MlcxError> {
        self.flush()?;
        let handle = self.services[svc].handle;
        self.gc_data = vec![None; relocs.len()];
        let mut batch = Vec::with_capacity(relocs.len());
        for (slot, op) in relocs.iter().enumerate() {
            let FtlOp::Relocate { from, .. } = *op else {
                unreachable!("relocate run holds only Relocate ops");
            };
            batch.push((
                Command::read(handle, from.0, from.1),
                CmdMeta::GcRead { svc, slot },
            ));
        }
        self.submit_batch(batch)?;
        for (slot, op) in relocs.iter().enumerate() {
            let FtlOp::Relocate { to, .. } = *op else {
                unreachable!("relocate run holds only Relocate ops");
            };
            let data = self.gc_data[slot]
                .take()
                .ok_or_else(|| MlcxError::Internal {
                    reason: format!("relocation read for slot {slot} never stashed its payload"),
                })?;
            self.pending.push((
                Command::write(handle, to.0, to.1, data),
                CmdMeta::GcWrite { svc },
            ));
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), MlcxError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        self.submit_batch(batch)
    }

    fn submit_batch(&mut self, batch: Vec<(Command, CmdMeta)>) -> Result<(), MlcxError> {
        let (commands, metas): (Vec<_>, Vec<_>) = batch.into_iter().unzip();
        let ids = self.engine.sq().submit_owned(commands)?;
        for (id, meta) in ids.into_iter().zip(metas) {
            self.meta.insert(id.raw(), meta);
        }
        let completions = self.engine.cq().drain();
        let batch = self.engine.last_batch();
        self.phase_commands += batch.commands;
        self.phase_device_time_s += batch.device_latency_s;
        self.phase_parallel_time_s += batch.parallel_latency_s;
        self.phase_channel_busy_s += batch.channel_busy_s;
        self.phase_op_cache_hits += batch.op_cache_hits;
        self.phase_op_cache_misses += batch.op_cache_misses;
        self.phase_knob_writes += batch.knob_writes;
        // Flow times (completion minus arrival on the virtual clock)
        // book against the issuing service — GC and scrub traffic
        // included, since a tenant's maintenance rides its own queue.
        for &(svc, flow_s) in self.engine.last_batch_flows() {
            self.services[svc as usize].acc.flow_lat.push(flow_s);
        }
        self.process(completions)
    }

    /// Books every completion against its service accumulator.
    ///
    /// Host *read* failures become counters — an ECC decode miss is a
    /// modeled reliability event the report exists to surface. Write
    /// and GC failures abort the run instead: the runner only targets
    /// slots its own FTL allocated, so a rejected write or erase means
    /// the runner and the device disagree about physical state (a bug,
    /// not a modeled event).
    fn process(&mut self, completions: Vec<Completion>) -> Result<(), MlcxError> {
        for c in completions {
            let meta = self
                .meta
                .remove(&c.id.raw())
                .ok_or_else(|| MlcxError::Internal {
                    reason: format!(
                        "completion for command #{} the runner never submitted",
                        c.id.raw()
                    ),
                })?;
            match meta {
                CmdMeta::HostRead { svc, lpn, version } => {
                    let codeword_extra = self.ecc_m as usize;
                    let k_bits = self.k_bits;
                    let page_bytes = self.page_bytes;
                    let acc = &mut self.services[svc].acc;
                    match c.result {
                        Ok(CommandOutput::Read(r)) => {
                            acc.read_lat.push(r.latency_s);
                            acc.energy_j += r.energy_j;
                            acc.corrected_bits += r.outcome.corrected_bits() as u64;
                            acc.codeword_bits_read +=
                                (k_bits + codeword_extra * r.t_used as usize) as u64;
                            if r.senses > 1 {
                                acc.retried_reads += 1;
                                acc.retry_senses += u64::from(r.senses - 1);
                                acc.retry_latency_s += r.retry_latency_s;
                            }
                            if r.interference_rber > 0.0 {
                                acc.interference_reads += 1;
                            }
                            if !r.outcome.is_success() {
                                acc.read_failures += 1;
                            } else if r.data != payload(page_bytes, svc, lpn, version) {
                                acc.integrity_violations += 1;
                            }
                        }
                        Ok(other) => unreachable!("read command produced {other:?}"),
                        Err(_) => acc.read_failures += 1,
                    }
                }
                CmdMeta::HostWrite { svc } => {
                    let acc = &mut self.services[svc].acc;
                    match c.result {
                        Ok(CommandOutput::Write(w)) => {
                            acc.writes += 1;
                            acc.write_lat.push(w.latency_s);
                            acc.energy_j += w.energy_j;
                            if w.injected_partial {
                                acc.injected_partial_programs += 1;
                            }
                        }
                        Ok(other) => unreachable!("write command produced {other:?}"),
                        Err(e) => return Err(e),
                    }
                }
                CmdMeta::GcRead { svc, slot } => {
                    let codeword_extra = self.ecc_m as usize;
                    let k_bits = self.k_bits;
                    let acc = &mut self.services[svc].acc;
                    match c.result {
                        Ok(CommandOutput::Read(r)) => {
                            acc.energy_j += r.energy_j;
                            acc.corrected_bits += r.outcome.corrected_bits() as u64;
                            acc.codeword_bits_read +=
                                (k_bits + codeword_extra * r.t_used as usize) as u64;
                            if r.senses > 1 {
                                acc.retried_reads += 1;
                                acc.retry_senses += u64::from(r.senses - 1);
                                acc.retry_latency_s += r.retry_latency_s;
                            }
                            if r.interference_rber > 0.0 {
                                acc.interference_reads += 1;
                            }
                            if !r.outcome.is_success() {
                                // The relocation copies the (corrupted)
                                // best-effort data; any damage surfaces
                                // at the next host read of the page.
                                acc.read_failures += 1;
                            }
                            self.gc_data[slot] = Some(r.data);
                        }
                        Ok(other) => unreachable!("read command produced {other:?}"),
                        Err(e) => return Err(e),
                    }
                }
                CmdMeta::GcWrite { svc } => match c.result {
                    Ok(CommandOutput::Write(w)) => {
                        let acc = &mut self.services[svc].acc;
                        acc.energy_j += w.energy_j;
                        if w.injected_partial {
                            acc.injected_partial_programs += 1;
                        }
                    }
                    Ok(other) => unreachable!("write command produced {other:?}"),
                    Err(e) => return Err(e),
                },
                CmdMeta::GcErase { svc } => match c.result {
                    Ok(CommandOutput::Erase { energy_j, .. }) => {
                        self.services[svc].acc.energy_j += energy_j;
                    }
                    Ok(other) => unreachable!("erase command produced {other:?}"),
                    Err(e) => return Err(e),
                },
                CmdMeta::ScrubRelocate { svc } => match c.result {
                    Ok(CommandOutput::Relocate {
                        energy_j,
                        read_ok,
                        retry_senses,
                        ..
                    }) => {
                        let acc = &mut self.services[svc].acc;
                        acc.energy_j += energy_j;
                        acc.scrub_relocations += 1;
                        if retry_senses > 0 {
                            acc.retried_reads += 1;
                            acc.retry_senses += u64::from(retry_senses);
                        }
                        if !read_ok {
                            // Best-effort data was relocated anyway; the
                            // damage surfaces at the next host read.
                            acc.read_failures += 1;
                        }
                    }
                    Ok(other) => unreachable!("relocate command produced {other:?}"),
                    Err(e) => return Err(e),
                },
                CmdMeta::ScrubErase { svc } => match c.result {
                    Ok(CommandOutput::Erase { energy_j, .. }) => {
                        let acc = &mut self.services[svc].acc;
                        acc.energy_j += energy_j;
                        acc.scrub_erases += 1;
                    }
                    Ok(other) => unreachable!("scrub erase produced {other:?}"),
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(())
    }

    fn phase_report(
        &mut self,
        name: &str,
        fast_forward_cycles: u64,
        elapsed_hours: f64,
    ) -> PhaseReport {
        let mut services = Vec::with_capacity(self.services.len());
        for i in 0..self.services.len() {
            let blocks = self.services[i].map.blocks();
            let device = self.engine.controller().device();
            let max_wear = blocks
                .clone()
                .map(|b| device.block_cycles(b).unwrap_or(0))
                .max()
                .unwrap_or(0);
            // Worst additive disturb across the region: what a read of
            // the most-pressed block's oldest page would pay right now,
            // *at the reference each block would actually be sensed at*
            // — with retry enabled, a block's learned offset discounts
            // the shift the ladder has already tuned away.
            let ctrl = self.engine.controller();
            let model_disturb_rber = blocks
                .clone()
                .map(|b| ctrl.block_effective_disturb_rber(b).unwrap_or(0.0))
                .fold(0.0, f64::max);
            // Worst program-interference RBER across the region: what
            // neighbor coupling, die-level program disturb and any
            // partially programmed page add on top of the disturb state.
            let model_interference_rber = blocks
                .map(|b| device.block_interference_rber(b).unwrap_or(0.0))
                .fold(0.0, f64::max);
            let objective = self.services[i].objective;
            let model = self.engine.model();
            let op = model.configure(objective, max_wear.max(1));
            let model_rber = model.rber(op.algorithm, max_wear.max(1));
            let model_log10_uber = model.log10_uber(&op, max_wear.max(1));
            let model_log10_uber_disturbed =
                model.log10_uber_at_rber(&op, (model_rber + model_disturb_rber).min(0.5));

            let s = &mut self.services[i];
            let acc = std::mem::take(&mut s.acc);
            let ftl = s.map.stats().delta_since(&s.ftl_at_phase_start);
            let measured_rber = if acc.codeword_bits_read == 0 {
                0.0
            } else {
                acc.corrected_bits as f64 / acc.codeword_bits_read as f64
            };
            services.push(ServicePhaseReport {
                service: s.name.clone(),
                objective,
                trace: s.trace,
                reads: acc.reads,
                writes: acc.writes,
                cold_reads: acc.cold_reads,
                read_failures: acc.read_failures,
                integrity_violations: acc.integrity_violations,
                read_latency: LatencyStats::from_samples(acc.read_lat),
                write_latency: LatencyStats::from_samples(acc.write_lat),
                flow_latency: LatencyStats::from_samples(acc.flow_lat),
                energy_j: acc.energy_j,
                corrected_bits: acc.corrected_bits,
                measured_rber,
                model_rber,
                model_log10_uber,
                model_disturb_rber,
                model_log10_uber_disturbed,
                scrub_relocations: acc.scrub_relocations,
                scrub_erases: acc.scrub_erases,
                retried_reads: acc.retried_reads,
                retry_senses: acc.retry_senses,
                retry_latency_s: acc.retry_latency_s,
                interference_reads: acc.interference_reads,
                injected_partial_programs: acc.injected_partial_programs,
                model_interference_rber,
                max_wear,
                write_amplification: ftl.write_amplification(),
                ftl,
            });
        }
        let energy_j = PhaseReport::totals(&services);
        let scrub_relocations = services.iter().map(|s| s.scrub_relocations).sum();
        let scrub_erases = services.iter().map(|s| s.scrub_erases).sum();
        let retried_reads = services.iter().map(|s| s.retried_reads).sum();
        let retry_senses = services.iter().map(|s| s.retry_senses).sum();
        let interference_reads = services.iter().map(|s| s.interference_reads).sum();
        let injected_partial_programs = services.iter().map(|s| s.injected_partial_programs).sum();
        PhaseReport {
            name: name.to_string(),
            fast_forward_cycles,
            elapsed_hours,
            services,
            commands: self.phase_commands,
            device_time_s: self.phase_device_time_s,
            parallel_time_s: self.phase_parallel_time_s,
            channel_busy_s: self.phase_channel_busy_s,
            energy_j,
            op_cache_hits: self.phase_op_cache_hits,
            op_cache_misses: self.phase_op_cache_misses,
            knob_writes: self.phase_knob_writes,
            scrub_relocations,
            scrub_erases,
            retried_reads,
            retry_senses,
            interference_reads,
            injected_partial_programs,
        }
    }
}

impl std::fmt::Debug for WorkloadRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRunner")
            .field("services", &self.services.len())
            .field("phases", &self.phases.len())
            .field("batch_size", &self.batch_size)
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcx_controller::ControllerConfig;
    use mlcx_nand::DeviceGeometry;

    fn small_engine() -> EngineBuilder {
        let mut config = ControllerConfig::date2012();
        config.geometry = DeviceGeometry {
            blocks: 12,
            pages_per_block: 8,
            ..config.geometry
        };
        EngineBuilder::date2012().controller_config(config)
    }

    #[test]
    fn builder_rejects_degenerate_scenarios() {
        assert!(matches!(
            Scenario::builder().phase("p", 1, 0).build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Scenario::builder()
                .service("s", Objective::Baseline, 0..4, TraceKind::Sequential)
                .build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Scenario::builder()
                .service("s", Objective::Baseline, 0..1, TraceKind::Sequential)
                .phase("p", 1, 0)
                .build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        // Degenerate trace parameters fail at build(), not as a panic
        // inside run().
        assert!(matches!(
            Scenario::builder()
                .service(
                    "s",
                    Objective::Baseline,
                    0..4,
                    TraceKind::ReadMostly { read_ratio: 0.0 },
                )
                .phase("p", 1, 0)
                .build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Scenario::builder()
                .service(
                    "s",
                    Objective::Baseline,
                    0..4,
                    TraceKind::Zipfian {
                        hot_fraction: 1.5,
                        hot_probability: 0.9,
                    },
                )
                .phase("p", 1, 0)
                .build(),
            Err(MlcxError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn runner_rejects_regions_beyond_geometry() {
        let scenario = Scenario::builder()
            .engine(small_engine())
            .service("s", Objective::Baseline, 0..99, TraceKind::Sequential)
            .phase("p", 1, 0)
            .build()
            .unwrap();
        assert!(matches!(
            scenario.run(),
            Err(MlcxError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_service_scenario_round_trips_with_gc() {
        let scenario = Scenario::builder()
            .engine(small_engine())
            .seed(11)
            .batch_size(16)
            .service("hot", Objective::Baseline, 0..6, TraceKind::zipfian())
            .phase("a", 120, 0)
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.integrity_violations, 0);
        assert_eq!(report.read_failures, 0);
        assert!(report.verified_pages > 0);
        let phase = &report.phases[0];
        let s = &phase.services[0];
        assert_eq!(s.writes + s.reads + s.cold_reads, 120);
        assert!(
            s.ftl.gc_runs > 0,
            "zipf overwrites on a small region must trigger GC: {:?}",
            s.ftl
        );
        assert!(s.write_amplification >= 1.0);
        assert!(s.write_latency.p50_s > 0.0);
        assert!(s.write_latency.p99_s >= s.write_latency.p50_s);
        assert!(report.total_energy_j > 0.0);
        assert!(report.total_device_time_s > 0.0);
    }

    #[test]
    fn latency_stats_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_s, 50.0);
        assert_eq!(stats.p95_s, 95.0);
        assert_eq!(stats.p99_s, 99.0);
        assert_eq!(stats.max_s, 100.0);
        assert!((stats.mean_s() - 50.5).abs() < 1e-12);
        assert_eq!(LatencyStats::from_samples(Vec::new()).count, 0);
    }

    #[test]
    fn fast_forward_ages_every_block() {
        let scenario = Scenario::builder()
            .engine(small_engine())
            .service("s", Objective::Baseline, 0..4, TraceKind::Sequential)
            .phase("young", 8, 500_000)
            .phase("old", 8, 0)
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        let young = &report.phases[0].services[0];
        let old = &report.phases[1].services[0];
        assert!(young.max_wear < 1_000);
        assert!(old.max_wear >= 500_000);
        // Aged RBER model responds to the fast-forward.
        assert!(old.model_rber > young.model_rber * 10.0);
        assert!(report.render().contains("old"));
    }
}
