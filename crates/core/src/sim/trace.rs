//! Deterministic synthetic trace generators.
//!
//! A trace is an unbounded stream of logical-page operations
//! ([`TraceOp`]) over a service's exported address space. Every
//! generator is driven by the workspace's seedable xoshiro256** stub, so
//! a `(kind, capacity, seed)` triple always replays the identical
//! stream — the property the scenario determinism tests pin down.
//!
//! The five access patterns mirror the workload axes of the
//! flash-characterization literature (Cai et al.'s
//! programming-vulnerability study, Luo's reliability survey): pure
//! sequential logging, uniform random update, zipf-like hot/cold skew,
//! read-dominated serving, and bursty ingest.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One logical-page operation of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Read the logical page.
    Read(usize),
    /// (Over)write the logical page.
    Write(usize),
}

impl TraceOp {
    /// The logical page the operation targets.
    pub fn lpn(self) -> usize {
        match self {
            TraceOp::Read(lpn) | TraceOp::Write(lpn) => lpn,
        }
    }

    /// `true` for [`TraceOp::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, TraceOp::Write(_))
    }
}

/// The access-pattern family of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A circular log: sequential writes sweeping the whole space and
    /// wrapping around — the append-heavy journal/ingest pattern.
    Sequential,
    /// Uniform random addresses, an even read/write mix — the
    /// worst-case mapping-table churn pattern.
    UniformRandom,
    /// Zipf-like skew approximated by a two-level hot/cold split: a
    /// `hot_fraction` of the address space receives a `hot_probability`
    /// share of the accesses (even read/write mix). The classic
    /// key-value-store working-set shape.
    Zipfian {
        /// Fraction of the address space that is hot, in (0, 1].
        hot_fraction: f64,
        /// Probability an access targets the hot set, in (0, 1].
        hot_probability: f64,
    },
    /// Read-dominated serving traffic: uniform random addresses with a
    /// `read_ratio` chance per op of reading instead of writing.
    ReadMostly {
        /// Probability of a read, in (0, 1].
        read_ratio: f64,
    },
    /// Bursty ingest: runs of `burst_len` sequential writes from a
    /// random start, separated by a single random read-back.
    WriteBurst {
        /// Sequential writes per burst (clamped to at least 1).
        burst_len: usize,
    },
}

impl TraceKind {
    /// The conventional zipf-like configuration: 10 % of the space
    /// takes 90 % of the traffic.
    pub fn zipfian() -> Self {
        TraceKind::Zipfian {
            hot_fraction: 0.1,
            hot_probability: 0.9,
        }
    }

    /// The conventional read-mostly configuration (90 % reads).
    pub fn read_mostly() -> Self {
        TraceKind::ReadMostly { read_ratio: 0.9 }
    }

    /// Checks the pattern parameters: probabilities and fractions must
    /// lie in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, value: f64| {
            if value > 0.0 && value <= 1.0 {
                Ok(())
            } else {
                Err(format!("{} {name} = {value} outside (0, 1]", self.label()))
            }
        };
        match *self {
            TraceKind::Zipfian {
                hot_fraction,
                hot_probability,
            } => {
                check("hot_fraction", hot_fraction)?;
                check("hot_probability", hot_probability)
            }
            TraceKind::ReadMostly { read_ratio } => check("read_ratio", read_ratio),
            TraceKind::Sequential | TraceKind::UniformRandom | TraceKind::WriteBurst { .. } => {
                Ok(())
            }
        }
    }

    /// A short human-readable label ("sequential", "zipfian", ...).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Sequential => "sequential",
            TraceKind::UniformRandom => "uniform-random",
            TraceKind::Zipfian { .. } => "zipfian",
            TraceKind::ReadMostly { .. } => "read-mostly",
            TraceKind::WriteBurst { .. } => "write-burst",
        }
    }
}

/// A seeded, unbounded trace stream over `capacity` logical pages.
///
/// # Example
///
/// ```
/// use mlcx_core::sim::{TraceGenerator, TraceKind, TraceOp};
///
/// let mut a = TraceGenerator::new(TraceKind::zipfian(), 1024, 7).unwrap();
/// let mut b = TraceGenerator::new(TraceKind::zipfian(), 1024, 7).unwrap();
/// let ops_a: Vec<TraceOp> = (&mut a).take(100).collect();
/// let ops_b: Vec<TraceOp> = (&mut b).take(100).collect();
/// assert_eq!(ops_a, ops_b); // same seed, same stream
/// assert!(ops_a.iter().all(|op| op.lpn() < 1024));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    kind: TraceKind,
    capacity: usize,
    rng: StdRng,
    /// Next sequential address (Sequential / WriteBurst runs).
    cursor: usize,
    /// Remaining writes in the current burst (WriteBurst only).
    burst_remaining: usize,
}

impl TraceGenerator {
    /// A generator over `capacity` logical pages.
    ///
    /// # Errors
    ///
    /// A human-readable reason when `capacity` is zero or
    /// [`TraceKind::validate`] rejects the pattern parameters.
    pub fn new(kind: TraceKind, capacity: usize, seed: u64) -> Result<Self, String> {
        if capacity == 0 {
            return Err("trace needs a non-empty address space".to_string());
        }
        kind.validate()?;
        Ok(TraceGenerator {
            kind,
            capacity,
            rng: StdRng::seed_from_u64(seed),
            cursor: 0,
            burst_remaining: 0,
        })
    }

    /// The pattern family this generator replays.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// The exported address space, in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next operation of the stream (never ends).
    pub fn next_op(&mut self) -> TraceOp {
        match self.kind {
            TraceKind::Sequential => {
                let lpn = self.cursor;
                self.cursor = (self.cursor + 1) % self.capacity;
                TraceOp::Write(lpn)
            }
            TraceKind::UniformRandom => {
                let lpn = self.rng.random_range(0..self.capacity);
                if self.rng.random::<bool>() {
                    TraceOp::Write(lpn)
                } else {
                    TraceOp::Read(lpn)
                }
            }
            TraceKind::Zipfian {
                hot_fraction,
                hot_probability,
            } => {
                let hot_pages = ((self.capacity as f64 * hot_fraction) as usize).max(1);
                let lpn = if self.rng.random::<f64>() < hot_probability {
                    self.rng.random_range(0..hot_pages)
                } else if hot_pages < self.capacity {
                    self.rng.random_range(hot_pages..self.capacity)
                } else {
                    self.rng.random_range(0..self.capacity)
                };
                if self.rng.random::<bool>() {
                    TraceOp::Write(lpn)
                } else {
                    TraceOp::Read(lpn)
                }
            }
            TraceKind::ReadMostly { read_ratio } => {
                let lpn = self.rng.random_range(0..self.capacity);
                if self.rng.random::<f64>() < read_ratio {
                    TraceOp::Read(lpn)
                } else {
                    TraceOp::Write(lpn)
                }
            }
            TraceKind::WriteBurst { burst_len } => {
                if self.burst_remaining == 0 {
                    // Burst exhausted: one read-back, then re-aim.
                    self.burst_remaining = burst_len.max(1);
                    self.cursor = self.rng.random_range(0..self.capacity);
                    return TraceOp::Read(self.rng.random_range(0..self.capacity));
                }
                self.burst_remaining -= 1;
                let lpn = self.cursor;
                self.cursor = (self.cursor + 1) % self.capacity;
                TraceOp::Write(lpn)
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [TraceKind; 5] = [
        TraceKind::Sequential,
        TraceKind::UniformRandom,
        TraceKind::Zipfian {
            hot_fraction: 0.1,
            hot_probability: 0.9,
        },
        TraceKind::ReadMostly { read_ratio: 0.9 },
        TraceKind::WriteBurst { burst_len: 16 },
    ];

    #[test]
    fn every_kind_is_deterministic_under_a_fixed_seed() {
        for kind in KINDS {
            let a: Vec<TraceOp> = TraceGenerator::new(kind, 500, 42)
                .unwrap()
                .take(1000)
                .collect();
            let b: Vec<TraceOp> = TraceGenerator::new(kind, 500, 42)
                .unwrap()
                .take(1000)
                .collect();
            assert_eq!(a, b, "{} must replay under the same seed", kind.label());
        }
    }

    #[test]
    fn randomized_kinds_diverge_across_seeds() {
        for kind in KINDS {
            if kind == TraceKind::Sequential {
                continue; // seed-independent by design
            }
            let a: Vec<TraceOp> = TraceGenerator::new(kind, 500, 1)
                .unwrap()
                .take(200)
                .collect();
            let b: Vec<TraceOp> = TraceGenerator::new(kind, 500, 2)
                .unwrap()
                .take(200)
                .collect();
            assert_ne!(a, b, "{} must vary with the seed", kind.label());
        }
    }

    #[test]
    fn addresses_stay_in_bounds() {
        for kind in KINDS {
            for capacity in [1usize, 3, 97, 1024] {
                let mut g = TraceGenerator::new(kind, capacity, 9).unwrap();
                for _ in 0..2000 {
                    let op = g.next_op();
                    assert!(op.lpn() < capacity, "{}: {op:?}", kind.label());
                }
            }
        }
    }

    #[test]
    fn validate_accepts_boundaries_and_rejects_degenerates() {
        // 1.0 is a legal boundary everywhere (100 % reads, all-hot).
        for kind in [
            TraceKind::ReadMostly { read_ratio: 1.0 },
            TraceKind::Zipfian {
                hot_fraction: 1.0,
                hot_probability: 1.0,
            },
            TraceKind::Sequential,
        ] {
            assert!(kind.validate().is_ok(), "{kind:?}");
            let mut g = TraceGenerator::new(kind, 16, 1).unwrap();
            for _ in 0..100 {
                assert!(g.next_op().lpn() < 16);
            }
        }
        for kind in [
            TraceKind::ReadMostly { read_ratio: 0.0 },
            TraceKind::ReadMostly {
                read_ratio: f64::NAN,
            },
            TraceKind::Zipfian {
                hot_fraction: 1.5,
                hot_probability: 0.9,
            },
            TraceKind::Zipfian {
                hot_fraction: 0.1,
                hot_probability: -0.1,
            },
        ] {
            assert!(kind.validate().is_err(), "{kind:?}");
        }
    }

    #[test]
    fn sequential_is_a_circular_log() {
        let ops: Vec<TraceOp> = TraceGenerator::new(TraceKind::Sequential, 4, 0)
            .unwrap()
            .take(10)
            .collect();
        let expected: Vec<TraceOp> = [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
            .iter()
            .map(|&l| TraceOp::Write(l))
            .collect();
        assert_eq!(ops, expected);
    }

    #[test]
    fn zipfian_skews_onto_the_hot_set() {
        let capacity = 1000;
        let mut g = TraceGenerator::new(TraceKind::zipfian(), capacity, 77).unwrap();
        let n = 20_000;
        let hot_pages = capacity / 10;
        let hot = (0..n).filter(|_| g.next_op().lpn() < hot_pages).count() as f64;
        let share = hot / n as f64;
        assert!(
            (0.87..0.93).contains(&share),
            "hot share = {share}, expected ~0.9"
        );
    }

    #[test]
    fn read_mostly_hits_its_mix() {
        let mut g = TraceGenerator::new(TraceKind::read_mostly(), 256, 5).unwrap();
        let n = 20_000;
        let writes = (0..n).filter(|_| g.next_op().is_write()).count() as f64;
        let ratio = writes / n as f64;
        assert!(
            (0.08..0.12).contains(&ratio),
            "write ratio = {ratio}, expected ~0.1"
        );
    }

    #[test]
    fn write_burst_runs_sequentially_between_reads() {
        let mut g = TraceGenerator::new(TraceKind::WriteBurst { burst_len: 8 }, 128, 3).unwrap();
        let ops: Vec<TraceOp> = (&mut g).take(64).collect();
        let writes = ops.iter().filter(|o| o.is_write()).count();
        assert!(writes >= 48, "bursts must dominate: {writes}/64 writes");
        // Within a burst, addresses advance sequentially.
        let mut run = 0;
        for pair in ops.windows(2) {
            if let [TraceOp::Write(a), TraceOp::Write(b)] = pair {
                assert_eq!((*a + 1) % 128, *b, "burst must be sequential");
                run += 1;
            }
        }
        assert!(run > 0);
    }
}
