//! Eq. (1) of the paper: UBER of a `t`-error-correcting page code.
//!
//! ```text
//!            C(n, t+1) * RBER^(t+1) * (1 - RBER)^(n-(t+1))
//!   UBER  =  ---------------------------------------------
//!                                n
//! ```
//!
//! i.e. the probability of the dominant uncorrectable event (exactly
//! `t + 1` raw errors in the `n`-bit codeword), normalized per bit. All
//! arithmetic is carried out in log domain — UBER values span 60+ orders
//! of magnitude across the design space (Fig. 10), far beyond `f64`
//! linear range.
//!
//! Solving this equation at the paper's UBER target (1e-11) reproduces
//! the printed Fig. 7 x-ticks to three digits (t = 27 at RBER 2.776e-4
//! vs. the printed 2.75e-4; t = 65 at 1.0028e-3 vs. 1e-3), which is how
//! the whole reproduction is calibrated.

/// Natural log of the gamma function (Lanczos, g = 7, 9 terms;
/// |relative error| < 1e-13 on the positive real axis).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection for small arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C(n, k) requires k <= n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `log10(UBER)` for an `n_bits` codeword correcting `t` errors at
/// raw error probability `rber`.
///
/// # Panics
///
/// Panics unless `0 < rber < 1` and `t + 1 <= n_bits`.
pub fn log10_uber(n_bits: usize, t: u32, rber: f64) -> f64 {
    assert!(rber > 0.0 && rber < 1.0, "rber must be a probability");
    let n = n_bits as u64;
    let errors = t as u64 + 1;
    assert!(errors <= n, "t + 1 must not exceed the codeword length");
    // ln(1 - rber) via ln_1p keeps the survival factor accurate at the
    // tiny RBERs of fresh devices.
    let ln_u =
        ln_binomial(n, errors) + errors as f64 * rber.ln() + (n - errors) as f64 * (-rber).ln_1p()
            - (n as f64).ln();
    ln_u / std::f64::consts::LN_10
}

/// Linear-domain UBER (underflows to 0 below ~1e-308; prefer
/// [`log10_uber`] for plotting).
pub fn uber(n_bits: usize, t: u32, rber: f64) -> f64 {
    10f64.powf(log10_uber(n_bits, t, rber))
}

/// `true` when eq. (1)'s single-term tail approximation is valid at this
/// operating point: the designed capability must at least cover the mean
/// raw error count (`t + 1 > n * rber`), otherwise "exactly t+1 errors"
/// sits *below* the bulk of the error distribution and the term no longer
/// bounds the uncorrectable probability.
pub fn first_term_valid(n_bits: usize, t: u32, rber: f64) -> bool {
    (t as f64 + 1.0) > n_bits as f64 * rber
}

/// The smallest correction capability `t` in `tmin..=tmax` meeting
/// `UBER <= target` for a shortened code with `k_bits` of data and
/// `m`-bit parity symbols (`n = k + m*t`); `None` when even `tmax`
/// misses the target.
///
/// Only capabilities in eq. (1)'s validity regime
/// ([`first_term_valid`]) are considered — an ECC whose capability lies
/// below the mean error count cannot meet any meaningful UBER target.
///
/// # Example
///
/// ```
/// use mlcx_core::uber::required_t;
///
/// // The paper's working points: fresh memory needs t = 3, ISPP-SV at
/// // end of life needs the full t = 65.
/// assert_eq!(required_t(32768, 16, 1.5e-6, 1e-11, 3, 65), Some(3));
/// assert_eq!(required_t(32768, 16, 1.0e-3, 1e-11, 3, 65), Some(65));
/// ```
pub fn required_t(
    k_bits: usize,
    m: u32,
    rber: f64,
    target_uber: f64,
    tmin: u32,
    tmax: u32,
) -> Option<u32> {
    let target_log = target_uber.log10();
    (tmin..=tmax).find(|&t| {
        let n = k_bits + (m as usize) * t as usize;
        first_term_valid(n, t, rber) && log10_uber(n, t, rber) <= target_log
    })
}

/// `log10` of the *full-tail* UBER, `P(errors >= t+1) / n` — the exact
/// quantity eq. (1) approximates by its first term. Summed in log domain
/// from `e = t+1` until terms become negligible.
///
/// In the design regime the two agree closely; this function exists to
/// quantify the approximation (see the crate tests).
pub fn log10_uber_exact(n_bits: usize, t: u32, rber: f64) -> f64 {
    assert!(rber > 0.0 && rber < 1.0, "rber must be a probability");
    let n = n_bits as u64;
    let ln10 = std::f64::consts::LN_10;
    let term_log10 = |e: u64| {
        (ln_binomial(n, e) + e as f64 * rber.ln() + (n - e) as f64 * (-rber).ln_1p()) / ln10
    };
    let start = t as u64 + 1;
    // Collect term logs until we are well past the distribution mode and
    // the terms have fallen 16 orders below the peak, then log-sum-exp.
    let mode = n as f64 * rber;
    let mut term_logs = Vec::new();
    let mut max_log = f64::NEG_INFINITY;
    let mut e = start;
    loop {
        let l = term_log10(e);
        term_logs.push(l);
        max_log = max_log.max(l);
        if e >= n || (e as f64 > mode && l < max_log - 16.0) {
            break;
        }
        e += 1;
    }
    let sum: f64 = term_logs.iter().map(|l| 10f64.powf(l - max_log)).sum();
    max_log + sum.log10() - (n as f64).log10()
}

/// The largest RBER a capability `t` can serve at `target_uber` (the
/// x-coordinate where a Fig. 7 curve crosses the target line). Bisection
/// on the ascending branch of eq. (1).
pub fn max_rber_for_t(k_bits: usize, m: u32, t: u32, target_uber: f64) -> f64 {
    let n = k_bits + (m as usize) * t as usize;
    let target_log = target_uber.log10();
    // Stay below the mode of the (t+1)-error pmf: p* ~ (t+1)/n.
    let (mut lo, mut hi) = (1e-9, (t as f64 + 1.0) / n as f64);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if log10_uber(n, t, mid) < target_log {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Gamma(1) = Gamma(2) = 1; Gamma(11) = 10!.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        let ten_fact: f64 = 3_628_800.0;
        assert!((ln_gamma(11.0) - ten_fact.ln()).abs() < 1e-9);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_binomial(10, 0)).abs() < 1e-10);
        assert!((ln_binomial(52, 5) - 2_598_960f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn uber_matches_direct_evaluation_small() {
        // n small enough for direct f64 evaluation.
        let n = 100;
        let t = 2;
        let p: f64 = 0.01;
        let direct = {
            let c = 161_700.0; // C(100, 3)
            c * p.powi(3) * (1.0 - p).powi(97) / 100.0
        };
        let log = log10_uber(n, t, p);
        assert!((10f64.powf(log) - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn paper_fig7_xticks_reproduced() {
        // The printed x-ticks of Fig. 7 against eq. (1) at UBER 1e-11.
        let cases = [(27u32, 2.75e-4), (30, 3.35e-4), (65, 1.0e-3)];
        for (t, printed) in cases {
            let solved = max_rber_for_t(32768, 16, t, 1e-11);
            let err = (solved - printed).abs() / printed;
            assert!(
                err < 0.05,
                "t = {t}: solved {solved:.4e} vs printed {printed:.4e}"
            );
        }
    }

    #[test]
    fn required_t_monotone_in_rber() {
        let mut prev = 0;
        for rber in [1e-6, 1e-5, 1e-4, 5e-4, 1e-3] {
            let t = required_t(32768, 16, rber, 1e-11, 1, 80).unwrap();
            assert!(t >= prev, "rber {rber:e}: t = {t}");
            prev = t;
        }
    }

    #[test]
    fn required_t_none_beyond_ceiling() {
        assert_eq!(required_t(32768, 16, 0.05, 1e-11, 3, 65), None);
    }

    #[test]
    fn dv_end_of_life_needs_t14() {
        // The paper's "tMAX = 14 for ISPP-DV".
        let rber_dv_eol = 1.0e-3 / 11.5;
        assert_eq!(required_t(32768, 16, rber_dv_eol, 1e-11, 3, 65), Some(14));
    }

    #[test]
    fn uber_decreases_steeply_with_t() {
        let rber = 1e-4;
        let n = |t: u32| 32768 + 16 * t as usize;
        let u10 = log10_uber(n(10), 10, rber);
        let u20 = log10_uber(n(20), 20, rber);
        let u40 = log10_uber(n(40), 40, rber);
        assert!(u20 < u10 - 5.0);
        assert!(u40 < u20 - 10.0);
    }

    #[test]
    fn uber_increases_with_rber() {
        let n = 33808;
        let a = log10_uber(n, 65, 1e-4);
        let b = log10_uber(n, 65, 5e-4);
        let c = log10_uber(n, 65, 1e-3);
        assert!(a < b && b < c);
    }

    #[test]
    fn linear_uber_usable_in_plot_range() {
        let u = uber(32816, 3, 1.5e-6);
        assert!(u > 1e-13 && u < 1e-10, "u = {u:e}");
    }

    #[test]
    #[should_panic(expected = "rber must be a probability")]
    fn rejects_bad_rber() {
        log10_uber(1000, 1, 1.5);
    }
}
