//! GF(2^m) finite fields via log/antilog tables.

use std::error::Error;
use std::fmt;

/// Default primitive polynomials for GF(2^m), `m = 2..=16`.
///
/// Entry `i` is the polynomial for `m = i + 2`, encoded as an integer with
/// bit `j` the coefficient of `x^j`. These are the standard minimum-weight
/// primitive polynomials used throughout the coding literature (and in the
/// BCH codec ROMs of NAND flash controllers).
const PRIMITIVE_POLYS: [u32; 15] = [
    0x7,     // m=2:  x^2 + x + 1
    0xB,     // m=3:  x^3 + x + 1
    0x13,    // m=4:  x^4 + x + 1
    0x25,    // m=5:  x^5 + x^2 + 1
    0x43,    // m=6:  x^6 + x + 1
    0x89,    // m=7:  x^7 + x^3 + 1
    0x11D,   // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,   // m=9:  x^9 + x^4 + 1
    0x409,   // m=10: x^10 + x^3 + 1
    0x805,   // m=11: x^11 + x^2 + 1
    0x1053,  // m=12: x^12 + x^6 + x^4 + x + 1
    0x201B,  // m=13: x^13 + x^4 + x^3 + x + 1
    0x4443,  // m=14: x^14 + x^10 + x^6 + x + 1
    0x8003,  // m=15: x^15 + x + 1
    0x1100B, // m=16: x^16 + x^12 + x^3 + x + 1
];

/// Errors raised when constructing or operating on a [`GfField`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// The requested extension degree is outside the supported `2..=16`.
    UnsupportedDegree {
        /// The degree that was requested.
        m: u32,
    },
    /// The supplied polynomial did not generate the full multiplicative
    /// group (it is not primitive over GF(2)).
    NotPrimitive {
        /// The offending polynomial, encoded as an integer.
        poly: u64,
    },
    /// An element outside `0..2^m` was passed to a field operation.
    ElementOutOfRange {
        /// The offending element.
        element: u32,
        /// The field size `2^m`.
        size: u32,
    },
    /// Multiplicative inverse of zero was requested.
    ZeroInverse,
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedDegree { m } => {
                write!(f, "unsupported extension degree m={m}, expected 2..=16")
            }
            GfError::NotPrimitive { poly } => {
                write!(f, "polynomial {poly:#x} is not primitive over GF(2)")
            }
            GfError::ElementOutOfRange { element, size } => {
                write!(f, "element {element} outside field of size {size}")
            }
            GfError::ZeroInverse => write!(f, "multiplicative inverse of zero requested"),
        }
    }
}

impl Error for GfError {}

/// The finite field GF(2^m), `2 <= m <= 16`.
///
/// Elements are represented as integers in `0..2^m` (polynomial basis: bit
/// `i` is the coefficient of `x^i`). Multiplication, inversion and powers go
/// through log/antilog tables — the same structure a hardware Galois unit
/// keeps in ROM, and the reason syndrome/Chien datapaths evaluate one field
/// multiply per clock.
///
/// # Example
///
/// ```
/// use mlcx_gf2::GfField;
///
/// let f = GfField::new(8)?;
/// let a = f.alpha_pow(5);
/// let b = f.alpha_pow(9);
/// assert_eq!(f.mul(a, b), f.alpha_pow(14));
/// assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
/// # Ok::<(), mlcx_gf2::GfError>(())
/// ```
#[derive(Clone)]
pub struct GfField {
    m: u32,
    size: u32,
    prim_poly: u32,
    /// `log[a]` = discrete log of `a` base alpha; `log[0]` is unused.
    log: Vec<u16>,
    /// `exp[i]` = alpha^i for `i in 0..2*(size-1)` (doubled to skip a mod).
    exp: Vec<u16>,
}

impl GfField {
    /// Constructs GF(2^m) with the standard primitive polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedDegree`] if `m` is outside `2..=16`.
    pub fn new(m: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedDegree { m });
        }
        Self::with_primitive_poly(m, PRIMITIVE_POLYS[(m - 2) as usize])
    }

    /// Constructs GF(2^m) from a caller-supplied primitive polynomial.
    ///
    /// The polynomial is encoded as an integer with bit `i` the coefficient
    /// of `x^i`; it must have degree exactly `m`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedDegree`] for `m` outside `2..=16` and
    /// [`GfError::NotPrimitive`] if the polynomial fails to generate the
    /// whole multiplicative group.
    pub fn with_primitive_poly(m: u32, poly: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedDegree { m });
        }
        if poly >> m != 1 {
            return Err(GfError::NotPrimitive { poly: poly as u64 });
        }
        let size = 1u32 << m;
        let n = size - 1;
        let mut log = vec![0u16; size as usize];
        let mut exp = vec![0u16; 2 * n as usize];
        let mut x = 1u32;
        for i in 0..n {
            if x >= size || (x == 1 && i != 0) {
                // Cycle closed early: the polynomial is not primitive.
                return Err(GfError::NotPrimitive { poly: poly as u64 });
            }
            exp[i as usize] = x as u16;
            exp[(i + n) as usize] = x as u16;
            log[x as usize] = i as u16;
            // Multiply by alpha (= x) and reduce.
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(GfError::NotPrimitive { poly: poly as u64 });
        }
        Ok(GfField {
            m,
            size,
            prim_poly: poly,
            log,
            exp,
        })
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// The field size `2^m`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The multiplicative group order `2^m - 1` (the full BCH code length).
    pub fn order(&self) -> u32 {
        self.size - 1
    }

    /// The primitive polynomial, encoded as an integer.
    pub fn primitive_poly(&self) -> u32 {
        self.prim_poly
    }

    /// Field addition (= XOR; the field has characteristic 2).
    #[inline]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    /// Field multiplication via log/antilog tables.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both operands lie in `0..2^m`.
    #[inline]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        debug_assert!(a < self.size && b < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = self.log[a as usize] as usize + self.log[b as usize] as usize;
        self.exp[idx] as u32
    }

    /// The discrete logarithm base alpha, or `None` for zero.
    #[inline]
    pub fn log(&self, a: u32) -> Option<u32> {
        debug_assert!(a < self.size);
        (a != 0).then(|| self.log[a as usize] as u32)
    }

    /// `alpha^i` for any signed exponent (reduced mod `2^m - 1`).
    #[inline]
    pub fn alpha_pow(&self, i: i64) -> u32 {
        let n = self.order() as i64;
        let e = i.rem_euclid(n) as usize;
        self.exp[e] as u32
    }

    /// `alpha^e` for an exponent already reduced to `0 <= e < 2^m - 1` —
    /// the division-free hot path of the log-stride Chien search.
    #[inline]
    pub fn alpha_pow_reduced(&self, e: u32) -> u32 {
        debug_assert!(e < self.order());
        self.exp[e as usize] as u32
    }

    /// Raises `a` to the (signed) power `e`.
    ///
    /// `pow(0, 0)` is defined as 1 by the empty-product convention;
    /// `pow(0, e)` for `e > 0` is 0.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` and `e < 0` (inverse of zero).
    pub fn pow(&self, a: u32, e: i64) -> u32 {
        debug_assert!(a < self.size);
        if a == 0 {
            if e == 0 {
                return 1;
            }
            assert!(e > 0, "zero cannot be raised to a negative power");
            return 0;
        }
        let n = self.order() as i64;
        let l = self.log[a as usize] as i64;
        self.alpha_pow(l * (e % n))
    }

    /// Multiplicative inverse, or `Err` for zero.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::ZeroInverse`] when `a == 0`.
    #[inline]
    pub fn inv(&self, a: u32) -> Result<u32, GfError> {
        debug_assert!(a < self.size);
        if a == 0 {
            return Err(GfError::ZeroInverse);
        }
        let n = self.order();
        Ok(self.alpha_pow((n - self.log[a as usize] as u32) as i64))
    }

    /// Division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::ZeroInverse`] when `b == 0`.
    #[inline]
    pub fn div(&self, a: u32, b: u32) -> Result<u32, GfError> {
        Ok(self.mul(a, self.inv(b)?))
    }

    /// Checks that an element is a valid field member.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::ElementOutOfRange`] when `a >= 2^m`.
    pub fn check_element(&self, a: u32) -> Result<(), GfError> {
        if a >= self.size {
            return Err(GfError::ElementOutOfRange {
                element: a,
                size: self.size,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for GfField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GfField")
            .field("m", &self.m)
            .field("primitive_poly", &format_args!("{:#x}", self.prim_poly))
            .finish()
    }
}

impl PartialEq for GfField {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.prim_poly == other.prim_poly
    }
}

impl Eq for GfField {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_all_supported_degrees() {
        for m in 2..=16 {
            let f = GfField::new(m).unwrap();
            assert_eq!(f.degree(), m);
            assert_eq!(f.size(), 1 << m);
            assert_eq!(f.order(), (1 << m) - 1);
        }
    }

    #[test]
    fn rejects_unsupported_degrees() {
        assert!(matches!(
            GfField::new(1),
            Err(GfError::UnsupportedDegree { m: 1 })
        ));
        assert!(matches!(
            GfField::new(17),
            Err(GfError::UnsupportedDegree { m: 17 })
        ));
    }

    #[test]
    fn rejects_non_primitive_polynomial() {
        // x^4 + x^3 + x^2 + x + 1 divides x^5 - 1: order 5, not 15.
        assert!(matches!(
            GfField::with_primitive_poly(4, 0x1F),
            Err(GfError::NotPrimitive { .. })
        ));
        // Wrong degree encoding.
        assert!(GfField::with_primitive_poly(4, 0x3).is_err());
    }

    #[test]
    fn gf16_multiplication_table_spot_checks() {
        // GF(16) with x^4+x+1: alpha^4 = alpha + 1 = 0b0011 = 3.
        let f = GfField::new(4).unwrap();
        assert_eq!(f.alpha_pow(0), 1);
        assert_eq!(f.alpha_pow(1), 2);
        assert_eq!(f.alpha_pow(4), 3);
        assert_eq!(f.mul(2, 2), 4); // alpha * alpha = alpha^2
        assert_eq!(f.mul(8, 2), 3); // alpha^3 * alpha = alpha^4
    }

    #[test]
    fn zero_behaviour() {
        let f = GfField::new(6).unwrap();
        assert_eq!(f.mul(0, 37), 0);
        assert_eq!(f.mul(37, 0), 0);
        assert_eq!(f.log(0), None);
        assert_eq!(f.inv(0), Err(GfError::ZeroInverse));
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 5), 0);
    }

    #[test]
    fn inverse_round_trip_full_field() {
        let f = GfField::new(8).unwrap();
        for a in 1..f.size() {
            let inv = f.inv(a).unwrap();
            assert_eq!(f.mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn alpha_pow_negative_exponents() {
        let f = GfField::new(5).unwrap();
        let n = f.order() as i64;
        assert_eq!(f.alpha_pow(-1), f.alpha_pow(n - 1));
        assert_eq!(f.mul(f.alpha_pow(-7), f.alpha_pow(7)), 1);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = GfField::new(7).unwrap();
        let a = f.alpha_pow(19);
        let mut acc = 1u32;
        for e in 0..10i64 {
            assert_eq!(f.pow(a, e), acc, "e={e}");
            acc = f.mul(acc, a);
        }
        // Negative powers: a^-e * a^e == 1
        assert_eq!(f.mul(f.pow(a, -3), f.pow(a, 3)), 1);
    }

    #[test]
    fn fermat_little_theorem_all_elements_gf256() {
        let f = GfField::new(8).unwrap();
        for a in 1..f.size() {
            assert_eq!(f.pow(a, f.order() as i64), 1);
        }
    }

    #[test]
    fn check_element_bounds() {
        let f = GfField::new(4).unwrap();
        assert!(f.check_element(15).is_ok());
        assert_eq!(
            f.check_element(16),
            Err(GfError::ElementOutOfRange {
                element: 16,
                size: 16
            })
        );
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            GfError::UnsupportedDegree { m: 1 },
            GfError::NotPrimitive { poly: 3 },
            GfError::ElementOutOfRange {
                element: 9,
                size: 8,
            },
            GfError::ZeroInverse,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
