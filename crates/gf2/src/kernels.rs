//! Word-parallel carry-less multiplication kernel ladder.
//!
//! Dense GF(2)\[x\] multiplication over bit-packed [`Block`] words, as a
//! ladder of progressively optimized kernels (the `mul_raw_0..3` idiom):
//!
//! | rung | kernel | technique |
//! |------|--------|-----------|
//! | 0 | [`mul_raw_0`] | bit-serial schoolbook — the definition, and the reference every other rung is differential-tested against |
//! | 1 | [`mul_raw_1`] | word-sliced schoolbook: per set bit of `a`, XOR-accumulate a whole word-shifted copy of `b` |
//! | 2 | [`mul_raw_2`] | 4-bit windowed: 16 precomputed shifted multiples of `b`, two table XORs per byte of `a` |
//! | 3 | [`mul_raw_3`] | `x86_64` CLMUL (`pclmulqdq`): one 64x64 carry-less multiply per word pair, behind a `cfg` + runtime-detect gate |
//!
//! Every rung computes the *same* product; [`MulKernel`] is the selection
//! knob, and [`MulKernel::best`] resolves to the fastest rung available on
//! the running CPU (the CLMUL rung falls back to the windowed kernel when
//! the `clmul` cargo feature is off, the target is not `x86_64`, or the
//! CPU does not advertise `pclmulqdq`).
//!
//! All kernels accept *raw* word slices (trailing zero words allowed) and
//! return a raw word vector that may carry trailing zero words — callers
//! building a [`crate::Gf2Poly`] must normalize, which
//! [`crate::Gf2Poly::mul_with`] does.

/// The machine word the kernels operate on (64 coefficient bits).
pub type Block = u64;

/// Result length (in words) that can hold `a * b` for any inputs.
fn product_len(a: &[Block], b: &[Block]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    a.len() + b.len()
}

/// Rung 0 — bit-serial schoolbook multiplication (the definition).
///
/// For every set coefficient bit of `a`, XORs `b` shifted by that single
/// bit position into the accumulator, one *bit* at a time. Quadratic in
/// bits; exists purely as the differential-testing reference.
pub fn mul_raw_0(a: &[Block], b: &[Block]) -> Vec<Block> {
    let mut acc = vec![0u64; product_len(a, b)];
    for (wi, &aw) in a.iter().enumerate() {
        for bit in 0..64 {
            if aw >> bit & 1 == 1 {
                let shift = wi * 64 + bit;
                let (ws, bs) = (shift / 64, shift % 64);
                for (bj, &bw) in b.iter().enumerate() {
                    if bw == 0 {
                        continue;
                    }
                    acc[ws + bj] ^= bw << bs;
                    if bs != 0 {
                        acc[ws + bj + 1] ^= bw >> (64 - bs);
                    }
                }
            }
        }
    }
    acc
}

/// Rung 1 — word-sliced schoolbook: skips zero words of `a` wholesale and
/// XOR-accumulates word-shifted copies of `b` (one shift per set bit of
/// `a`, whole words at a time).
pub fn mul_raw_1(a: &[Block], b: &[Block]) -> Vec<Block> {
    let mut acc = vec![0u64; product_len(a, b)];
    for (wi, &aw) in a.iter().enumerate() {
        if aw == 0 {
            continue;
        }
        for bit in 0..64 {
            if aw >> bit & 1 == 1 {
                for (bj, &bw) in b.iter().enumerate() {
                    acc[wi + bj] ^= bw << bit;
                    if bit != 0 {
                        acc[wi + bj + 1] ^= bw >> (64 - bit);
                    }
                }
            }
        }
    }
    acc
}

/// Rung 2 — 4-bit windowed multiplication.
///
/// Precomputes the 16 products `w * b` for every 4-bit window value `w`,
/// then folds `a` one nibble at a time: two table XOR-accumulates per byte
/// of `a` instead of up to eight single-bit passes.
pub fn mul_raw_2(a: &[Block], b: &[Block]) -> Vec<Block> {
    let out_len = product_len(a, b);
    let mut acc = vec![0u64; out_len];
    if out_len == 0 {
        return acc;
    }
    // window[w] = w(x) * b(x), each b.len() + 1 words long.
    let wlen = b.len() + 1;
    let mut window = vec![0u64; 16 * wlen];
    for w in 1usize..16 {
        // w = (w & (w-1)) ^ (lowest set bit): build each entry from a
        // previously filled one plus a single-bit shift of b.
        let prev = w & (w - 1);
        let bit = (w ^ prev).trailing_zeros() as usize;
        for j in 0..wlen {
            let mut word = window[prev * wlen + j];
            if j < b.len() {
                word ^= b[j] << bit;
            }
            if bit != 0 && j > 0 {
                word ^= b[j - 1] >> (64 - bit);
            }
            window[w * wlen + j] = word;
        }
    }
    for (wi, &aw) in a.iter().enumerate() {
        if aw == 0 {
            continue;
        }
        for nib in 0..16 {
            let w = (aw >> (4 * nib) & 0xF) as usize;
            if w == 0 {
                continue;
            }
            let shift = 4 * nib;
            let tbl = &window[w * wlen..(w + 1) * wlen];
            for (j, &tw) in tbl.iter().enumerate() {
                if tw == 0 {
                    continue;
                }
                acc[wi + j] ^= tw << shift;
                if shift != 0 && wi + j + 1 < out_len {
                    acc[wi + j + 1] ^= tw >> (64 - shift);
                }
            }
        }
    }
    acc
}

/// `true` when the CLMUL rung will actually execute `pclmulqdq` on this
/// build/CPU (cargo feature on, `x86_64` target, CPU flag present).
pub fn clmul_available() -> bool {
    clmul::available()
}

/// Rung 3 — carry-less multiply via `pclmulqdq`, one 64x64 product per
/// word pair, XOR-accumulated into the 128-bit lanes.
///
/// Falls back to [`mul_raw_2`] (bit-identical result) when
/// [`clmul_available`] is `false`, so it is always safe to call.
pub fn mul_raw_3(a: &[Block], b: &[Block]) -> Vec<Block> {
    if clmul::available() {
        clmul::mul(a, b)
    } else {
        mul_raw_2(a, b)
    }
}

#[cfg(all(feature = "clmul", target_arch = "x86_64"))]
mod clmul {
    //! The only unsafe in the crate: `pclmulqdq` intrinsics, reachable
    //! solely through the runtime feature check in [`available`].
    #![allow(unsafe_code)]

    use super::{product_len, Block};

    pub(super) fn available() -> bool {
        // sse4.1 covers the pextrq lane extraction below; every CPU
        // shipping pclmulqdq also ships sse4.1, but detect both anyway.
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    pub(super) fn mul(a: &[Block], b: &[Block]) -> Vec<Block> {
        debug_assert!(available());
        // SAFETY: `available()` verified the CPU executes pclmulqdq/sse2.
        // mlcx-lint: allow(unsafe-scope, reason = "the sanctioned CLMUL call site; guarded by the runtime feature check above")
        unsafe { mul_impl(a, b) }
    }

    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "sse4.1")]
    // mlcx-lint: allow(unsafe-scope, reason = "target_feature intrinsics require an unsafe fn; sole caller re-checks availability")
    unsafe fn mul_impl(a: &[Block], b: &[Block]) -> Vec<Block> {
        use std::arch::x86_64::{_mm_clmulepi64_si128, _mm_cvtsi64_si128, _mm_extract_epi64};
        let mut acc = vec![0u64; product_len(a, b)];
        for (wi, &aw) in a.iter().enumerate() {
            if aw == 0 {
                continue;
            }
            let va = _mm_cvtsi64_si128(aw as i64);
            for (bj, &bw) in b.iter().enumerate() {
                if bw == 0 {
                    continue;
                }
                let vb = _mm_cvtsi64_si128(bw as i64);
                let prod = _mm_clmulepi64_si128::<0>(va, vb);
                acc[wi + bj] ^= _mm_extract_epi64::<0>(prod) as u64;
                acc[wi + bj + 1] ^= _mm_extract_epi64::<1>(prod) as u64;
            }
        }
        acc
    }
}

#[cfg(not(all(feature = "clmul", target_arch = "x86_64")))]
mod clmul {
    //! Portable stand-in: the CLMUL rung is unavailable and
    //! [`super::mul_raw_3`] falls back to the windowed kernel.
    use super::Block;

    pub(super) fn available() -> bool {
        false
    }

    pub(super) fn mul(_a: &[Block], _b: &[Block]) -> Vec<Block> {
        unreachable!("clmul::mul is only called when available() is true")
    }
}

/// Selection knob over the [`mul_raw_0..3`](self) ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MulKernel {
    /// Rung 0: bit-serial reference ([`mul_raw_0`]).
    Reference,
    /// Rung 1: word-sliced schoolbook ([`mul_raw_1`]) — the historical
    /// `Gf2Poly::mul` path, and the default.
    #[default]
    Word,
    /// Rung 2: 4-bit windowed ([`mul_raw_2`]).
    Windowed,
    /// Rung 3: `pclmulqdq` carry-less multiply ([`mul_raw_3`]); falls
    /// back to the windowed kernel where CLMUL is unavailable.
    Clmul,
}

impl MulKernel {
    /// Every rung, in ladder order.
    pub const ALL: [MulKernel; 4] = [
        MulKernel::Reference,
        MulKernel::Word,
        MulKernel::Windowed,
        MulKernel::Clmul,
    ];

    /// The ladder rung index (0 = reference).
    pub fn rung(self) -> usize {
        match self {
            MulKernel::Reference => 0,
            MulKernel::Word => 1,
            MulKernel::Windowed => 2,
            MulKernel::Clmul => 3,
        }
    }

    /// `true` when this rung runs its own code path on this build/CPU
    /// (the CLMUL rung reports `false` where it would fall back).
    pub fn is_native(self) -> bool {
        match self {
            MulKernel::Clmul => clmul_available(),
            _ => true,
        }
    }

    /// The fastest rung that is native on this build/CPU.
    pub fn best() -> MulKernel {
        if clmul_available() {
            MulKernel::Clmul
        } else {
            MulKernel::Windowed
        }
    }

    /// Runs the selected kernel on raw word slices (output may carry
    /// trailing zero words; see the module docs).
    pub fn mul_raw(self, a: &[Block], b: &[Block]) -> Vec<Block> {
        match self {
            MulKernel::Reference => mul_raw_0(a, b),
            MulKernel::Word => mul_raw_1(a, b),
            MulKernel::Windowed => mul_raw_2(a, b),
            MulKernel::Clmul => mul_raw_3(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_words(n: usize, state: &mut u64) -> Vec<u64> {
        (0..n).map(|_| xorshift(state)).collect()
    }

    #[test]
    fn all_rungs_match_reference_on_random_inputs() {
        let mut state = 0x1234_5678_9abc_def0u64;
        for (la, lb) in [(1, 1), (1, 3), (2, 2), (3, 5), (7, 4), (16, 16)] {
            let a = random_words(la, &mut state);
            let b = random_words(lb, &mut state);
            let reference = mul_raw_0(&a, &b);
            for k in MulKernel::ALL {
                assert_eq!(
                    k.mul_raw(&a, &b),
                    reference,
                    "rung {} diverged on {la}x{lb} words",
                    k.rung()
                );
            }
        }
    }

    #[test]
    fn commutative_across_rungs() {
        let mut state = 99u64;
        let a = random_words(5, &mut state);
        let b = random_words(3, &mut state);
        for k in MulKernel::ALL {
            // a*b and b*a differ in raw length; compare content-padded.
            let mut ab = k.mul_raw(&a, &b);
            let mut ba = k.mul_raw(&b, &a);
            let len = ab.len().max(ba.len());
            ab.resize(len, 0);
            ba.resize(len, 0);
            assert_eq!(ab, ba, "rung {}", k.rung());
        }
    }

    #[test]
    fn empty_and_zero_operands() {
        for k in MulKernel::ALL {
            assert!(k.mul_raw(&[], &[1, 2, 3]).is_empty());
            assert!(k.mul_raw(&[5], &[]).is_empty());
            assert!(k.mul_raw(&[0, 0], &[0]).iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn single_bit_times_single_bit() {
        // x^63 * x^1 = x^64: crosses the word boundary in every kernel.
        for k in MulKernel::ALL {
            let got = k.mul_raw(&[1u64 << 63], &[1u64 << 1]);
            assert_eq!(got[0], 0, "rung {}", k.rung());
            assert_eq!(got[1], 1, "rung {}", k.rung());
        }
    }

    #[test]
    fn trailing_zero_words_in_inputs_are_harmless() {
        let a = [0xDEAD_BEEFu64, 0, 0];
        let b = [0x1234_5678u64, 0];
        let reference = mul_raw_0(&[0xDEAD_BEEF], &[0x1234_5678]);
        for k in MulKernel::ALL {
            let got = k.mul_raw(&a, &b);
            // Same product, possibly longer tail of zeros.
            assert_eq!(&got[..reference.len()], &reference[..], "rung {}", k.rung());
            assert!(got[reference.len()..].iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn ladder_metadata_consistent() {
        assert_eq!(MulKernel::default(), MulKernel::Word);
        for (i, k) in MulKernel::ALL.iter().enumerate() {
            assert_eq!(k.rung(), i);
        }
        let best = MulKernel::best();
        assert!(best.is_native());
        assert!(best.rung() >= 2);
        if clmul_available() {
            assert_eq!(best, MulKernel::Clmul);
        }
    }
}
