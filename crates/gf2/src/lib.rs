//! Binary-field arithmetic for the `mlcx` NAND-flash simulator.
//!
//! This crate provides the two algebraic substrates required by the adaptive
//! BCH codec of the DATE 2012 cross-layer paper:
//!
//! * [`Gf2Poly`] — dense polynomials over GF(2), bit-packed into machine
//!   words. Used to construct and manipulate BCH generator polynomials and to
//!   implement the LFSR (remainder) view of systematic encoding.
//! * [`GfField`] — the finite field GF(2^m) for `2 <= m <= 16`, implemented
//!   with log/antilog tables exactly as a hardware Galois-field unit would
//!   store them in ROM. Syndrome evaluation, Berlekamp-Massey and the Chien
//!   search all run over this field.
//! * [`minpoly`] — cyclotomic cosets, minimal polynomials and BCH generator
//!   polynomial construction (the contents of the small "polynomial ROM" the
//!   paper's adaptable encoder multiplexes over).
//! * [`kernels`] — the word-parallel carry-less multiplication ladder
//!   (`mul_raw_0..3`): bit-serial reference, word-sliced schoolbook, 4-bit
//!   windowed, and an `x86_64` CLMUL (`pclmulqdq`) rung behind a runtime
//!   detect + `cfg`/feature gate with a portable fallback. [`MulKernel`]
//!   selects a rung; every rung is differential-tested bit-identical.
//!
//! # Example
//!
//! Build GF(2^4) and verify a classic identity (every nonzero element has
//! multiplicative order dividing 15):
//!
//! ```
//! use mlcx_gf2::GfField;
//!
//! let field = GfField::new(4)?;
//! for a in 1..16u32 {
//!     assert_eq!(field.pow(a, 15), 1);
//! }
//! # Ok::<(), mlcx_gf2::GfError>(())
//! ```

// `deny` rather than `forbid`: the CLMUL rung of `kernels` carries the
// crate's only `#[allow(unsafe_code)]`, scoped to the intrinsics module
// and guarded by a runtime CPU-feature check.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod poly;

pub mod kernels;
pub mod minpoly;

pub use field::{GfError, GfField};
pub use kernels::{clmul_available, MulKernel};
pub use poly::Gf2Poly;
