//! Cyclotomic cosets, minimal polynomials and BCH generator polynomials.
//!
//! A binary BCH code correcting `t` errors over GF(2^m) has generator
//! polynomial `g(x) = lcm(M_1(x), M_2(x), ..., M_2t(x))`, where `M_s` is the
//! minimal polynomial of `alpha^s`. Because conjugate powers share a minimal
//! polynomial, the lcm multiplies one `M_s` per *cyclotomic coset*.
//!
//! The adaptive codec of the DATE 2012 paper keeps the per-`t` generator
//! polynomials in a small ROM that reconfigures the encoder LFSR; this module
//! computes exactly those ROM contents.

use crate::{Gf2Poly, GfField};

/// The cyclotomic coset of `s` modulo `2^m - 1`: `{s, 2s, 4s, ...}`.
///
/// Returned in ascending orbit order starting from `s mod (2^m - 1)`.
///
/// # Example
///
/// ```
/// use mlcx_gf2::minpoly::cyclotomic_coset;
///
/// assert_eq!(cyclotomic_coset(4, 3), vec![3, 6, 12, 9]);
/// ```
pub fn cyclotomic_coset(m: u32, s: u32) -> Vec<u32> {
    let n = (1u32 << m) - 1;
    let start = s % n;
    let mut coset = vec![start];
    let mut cur = (start * 2) % n;
    while cur != start {
        coset.push(cur);
        cur = (cur * 2) % n;
    }
    coset
}

/// The minimal polynomial of `alpha^s` over GF(2).
///
/// Computed as the product over the cyclotomic coset of `s` of the linear
/// factors `(x + alpha^i)`, carried out in GF(2^m); the result provably has
/// coefficients in GF(2).
///
/// # Panics
///
/// Panics (debug assertion) if a coefficient falls outside {0, 1}, which
/// would indicate a broken field implementation.
///
/// # Example
///
/// ```
/// use mlcx_gf2::{GfField, Gf2Poly, minpoly::minimal_poly};
///
/// let f = GfField::new(4)?;
/// // The minimal polynomial of alpha itself is the primitive polynomial.
/// assert_eq!(minimal_poly(&f, 1), Gf2Poly::from_int(f.primitive_poly() as u64));
/// # Ok::<(), mlcx_gf2::GfError>(())
/// ```
pub fn minimal_poly(field: &GfField, s: u32) -> Gf2Poly {
    let coset = cyclotomic_coset(field.degree(), s);
    // Polynomial over GF(2^m), coefficient of x^i at index i. Start with 1.
    let mut coeffs: Vec<u32> = vec![1];
    for &i in &coset {
        let root = field.alpha_pow(i as i64);
        // Multiply coeffs by (x + root).
        let mut next = vec![0u32; coeffs.len() + 1];
        for (d, &c) in coeffs.iter().enumerate() {
            next[d + 1] ^= c; // c * x
            next[d] ^= field.mul(c, root); // c * root
        }
        coeffs = next;
    }
    let mut out = Gf2Poly::zero();
    for (d, &c) in coeffs.iter().enumerate() {
        debug_assert!(c <= 1, "minimal polynomial coefficient not in GF(2)");
        if c == 1 {
            out.set_coeff(d, true);
        }
    }
    out
}

/// The generator polynomial of the `t`-error-correcting binary BCH code
/// over GF(2^m): `lcm(M_1, ..., M_2t)`.
///
/// # Example
///
/// ```
/// use mlcx_gf2::{GfField, minpoly::generator_poly};
///
/// let f = GfField::new(4)?;
/// // Double-error-correcting BCH(15,7): g(x) has degree 8.
/// let g = generator_poly(&f, 2);
/// assert_eq!(g.degree(), Some(8));
/// # Ok::<(), mlcx_gf2::GfError>(())
/// ```
pub fn generator_poly(field: &GfField, t: u32) -> Gf2Poly {
    GeneratorTable::new(field, t).take(t)
}

/// Incrementally-built table of generator polynomials `g_1 .. g_tmax`.
///
/// Models the polynomial ROM of the adaptable encoder: entry `t` is the
/// generator (and thus the LFSR tap configuration) for correction
/// capability `t`. Building incrementally shares the coset bookkeeping so
/// the full `t = 1..=64+` table for GF(2^16) costs milliseconds.
#[derive(Debug, Clone)]
pub struct GeneratorTable {
    polys: Vec<Gf2Poly>,
}

impl GeneratorTable {
    /// Computes generator polynomials for all `t in 1..=tmax`.
    pub fn new(field: &GfField, tmax: u32) -> Self {
        let n = field.order();
        let mut seen = vec![false; n as usize];
        let mut g = Gf2Poly::one();
        let mut polys = Vec::with_capacity(tmax as usize);
        for t in 1..=tmax {
            // New designed roots for this t: alpha^(2t-1) and alpha^(2t).
            for s in [2 * t - 1, 2 * t] {
                let rep = s % n;
                if rep == 0 || seen[rep as usize] {
                    continue;
                }
                for c in cyclotomic_coset(field.degree(), rep) {
                    seen[c as usize] = true;
                }
                g = g.mul(&minimal_poly(field, rep));
            }
            polys.push(g.clone());
        }
        GeneratorTable { polys }
    }

    /// The maximum correction capability stored in the table.
    pub fn tmax(&self) -> u32 {
        self.polys.len() as u32
    }

    /// The generator polynomial for correction capability `t` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or exceeds [`GeneratorTable::tmax`].
    pub fn get(&self, t: u32) -> &Gf2Poly {
        assert!(
            t >= 1 && t <= self.tmax(),
            "correction capability t={t} outside ROM range 1..={}",
            self.tmax()
        );
        &self.polys[(t - 1) as usize]
    }

    fn take(mut self, t: u32) -> Gf2Poly {
        assert!(t >= 1 && t <= self.tmax());
        self.polys.swap_remove((t - 1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coset_of_zero_power() {
        // s = n wraps to 0; the coset of 0 is {0}.
        assert_eq!(cyclotomic_coset(4, 15), vec![0]);
    }

    #[test]
    fn cosets_partition_and_close_under_doubling() {
        let m = 6;
        let n = (1u32 << m) - 1;
        let mut seen = vec![false; n as usize];
        let mut total = 0;
        for s in 0..n {
            if seen[s as usize] {
                continue;
            }
            let coset = cyclotomic_coset(m, s);
            for &c in &coset {
                assert!(!seen[c as usize], "cosets must be disjoint");
                seen[c as usize] = true;
                assert!(coset.contains(&((c * 2) % n)), "closure under doubling");
            }
            total += coset.len();
        }
        assert_eq!(total, n as usize);
    }

    #[test]
    fn minimal_poly_of_alpha_is_primitive_poly() {
        for m in [3u32, 4, 8, 13] {
            let f = GfField::new(m).unwrap();
            let mp = minimal_poly(&f, 1);
            assert_eq!(mp, Gf2Poly::from_int(f.primitive_poly() as u64), "m={m}");
        }
    }

    #[test]
    fn minimal_polys_are_irreducible_and_generators_square_free() {
        // Minimal polynomials are irreducible by definition; generator
        // polynomials are products of distinct minimal polynomials, hence
        // square-free but reducible for t >= 2.
        let f = GfField::new(8).unwrap();
        for s in [1u32, 3, 5, 7, 11] {
            assert!(minimal_poly(&f, s).is_irreducible(), "s = {s}");
        }
        let g2 = generator_poly(&f, 2);
        assert!(!g2.is_irreducible());
        assert!(g2.is_square_free());
    }

    #[test]
    fn minimal_poly_vanishes_on_whole_coset() {
        let f = GfField::new(8).unwrap();
        for s in [1u32, 3, 5, 9, 17] {
            let mp = minimal_poly(&f, s);
            for c in cyclotomic_coset(8, s) {
                assert_eq!(mp.eval_in_field(&f, f.alpha_pow(c as i64)), 0);
            }
            // Degree equals coset size.
            assert_eq!(mp.degree(), Some(cyclotomic_coset(8, s).len()));
        }
    }

    #[test]
    fn bch_15_classic_generators() {
        // Canonical table: BCH(15,11,t=1) g = x^4+x+1;
        // BCH(15,7,t=2) g = x^8+x^7+x^6+x^4+1; BCH(15,5,t=3) degree 10.
        let f = GfField::new(4).unwrap();
        let table = GeneratorTable::new(&f, 3);
        assert_eq!(table.get(1), &Gf2Poly::from_exponents(&[4, 1, 0]));
        assert_eq!(table.get(2), &Gf2Poly::from_exponents(&[8, 7, 6, 4, 0]));
        assert_eq!(table.get(3).degree(), Some(10));
    }

    #[test]
    fn generator_vanishes_on_designed_roots() {
        let f = GfField::new(10).unwrap();
        for t in [1u32, 2, 5, 11] {
            let g = generator_poly(&f, t);
            for i in 1..=2 * t {
                assert_eq!(
                    g.eval_in_field(&f, f.alpha_pow(i as i64)),
                    0,
                    "g_t for t={t} must vanish at alpha^{i}"
                );
            }
            // Bose bound: deg g <= m*t.
            assert!(g.degree().unwrap() <= (10 * t) as usize);
        }
    }

    #[test]
    fn generator_divides_x_n_minus_1() {
        let f = GfField::new(5).unwrap();
        let n = f.order() as usize;
        let xn1 = Gf2Poly::from_exponents(&[n, 0]);
        for t in 1..=3 {
            let g = generator_poly(&f, t);
            assert!(xn1.rem(&g).is_zero(), "g_{t} must divide x^{n}+1");
        }
    }

    #[test]
    fn generator_table_monotone_degrees() {
        let f = GfField::new(8).unwrap();
        let table = GeneratorTable::new(&f, 10);
        let mut prev = 0;
        for t in 1..=10 {
            let d = table.get(t).degree().unwrap();
            assert!(d >= prev, "generator degree must not decrease with t");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "outside ROM range")]
    fn generator_table_rejects_out_of_range() {
        let f = GfField::new(4).unwrap();
        let table = GeneratorTable::new(&f, 2);
        let _ = table.get(3);
    }
}
