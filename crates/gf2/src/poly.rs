//! Dense polynomials over GF(2), bit-packed into `u64` words.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A polynomial over GF(2) with coefficients packed into `u64` words.
///
/// Bit `i` of the packed representation is the coefficient of `x^i`
/// (little-endian in the exponent). The representation is kept normalized:
/// there are never trailing all-zero words beyond the leading term, so
/// [`Gf2Poly::degree`] is O(1) in the common case.
///
/// # Example
///
/// ```
/// use mlcx_gf2::Gf2Poly;
///
/// // x^3 + x + 1 (the primitive polynomial of GF(8))
/// let g = Gf2Poly::from_exponents(&[3, 1, 0]);
/// assert_eq!(g.degree(), Some(3));
/// // (x + 1)^2 == x^2 + 1 over GF(2)
/// let sq = Gf2Poly::from_exponents(&[1, 0]).mul(&Gf2Poly::from_exponents(&[1, 0]));
/// assert_eq!(sq, Gf2Poly::from_exponents(&[2, 0]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Gf2Poly {
    /// Packed coefficients; `words[i] >> j & 1` is the coefficient of
    /// `x^(64*i + j)`. Invariant: the last word is nonzero (or the vec is
    /// empty, representing the zero polynomial).
    words: Vec<u64>,
}

impl Gf2Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Gf2Poly { words: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Gf2Poly { words: vec![1] }
    }

    /// The monomial `x^deg`.
    pub fn monomial(deg: usize) -> Self {
        let mut p = Gf2Poly::zero();
        p.set_coeff(deg, true);
        p
    }

    /// Builds a polynomial from the list of exponents with coefficient 1.
    ///
    /// Duplicate exponents cancel (GF(2) addition), matching polynomial
    /// addition semantics.
    pub fn from_exponents(exponents: &[usize]) -> Self {
        let mut p = Gf2Poly::zero();
        for &e in exponents {
            let cur = p.coeff(e);
            p.set_coeff(e, !cur);
        }
        p
    }

    /// Builds a polynomial from packed little-endian words.
    pub fn from_words(words: Vec<u64>) -> Self {
        let mut p = Gf2Poly { words };
        p.normalize();
        p
    }

    /// Interprets an integer as a polynomial (bit `i` ↦ coefficient of `x^i`).
    ///
    /// Convenient for primitive polynomials, e.g. `0b1011` is `x^3 + x + 1`.
    pub fn from_int(bits: u64) -> Self {
        Gf2Poly::from_words(vec![bits])
    }

    /// Returns the packed words (little-endian, normalized).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = *self.words.last()?;
        debug_assert_ne!(last, 0, "normalization invariant violated");
        Some((self.words.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// The coefficient of `x^i`.
    pub fn coeff(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|word| word >> b & 1 == 1)
    }

    /// Sets the coefficient of `x^i`.
    pub fn set_coeff(&mut self, i: usize, value: bool) {
        let (w, b) = (i / 64, i % 64);
        if value {
            if self.words.len() <= w {
                self.words.resize(w + 1, 0);
            }
            self.words[w] |= 1u64 << b;
        } else if w < self.words.len() {
            self.words[w] &= !(1u64 << b);
            self.normalize();
        }
    }

    /// Number of nonzero coefficients (Hamming weight).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the exponents with nonzero coefficient, ascending.
    pub fn exponents(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w >> b & 1 == 1).then_some(wi * 64 + b))
        })
    }

    /// Multiplication by `x^s` (left shift of the coefficient vector).
    pub fn shl(&self, s: usize) -> Self {
        if self.is_zero() || s == 0 {
            return self.clone();
        }
        let (word_shift, bit_shift) = (s / 64, s % 64);
        let mut words = vec![0u64; self.words.len() + word_shift + 1];
        for (i, &w) in self.words.iter().enumerate() {
            words[i + word_shift] |= w << bit_shift;
            if bit_shift != 0 {
                words[i + word_shift + 1] |= w >> (64 - bit_shift);
            }
        }
        Gf2Poly::from_words(words)
    }

    /// Carry-less (GF(2)) product `self * rhs`, through the word-sliced
    /// schoolbook kernel (ladder rung 1 — operand degrees in this crate
    /// stay in the low thousands, so O(n*m/64) is ample; pick a higher
    /// rung explicitly with [`Gf2Poly::mul_with`]).
    pub fn mul(&self, rhs: &Gf2Poly) -> Self {
        self.mul_with(rhs, crate::MulKernel::Word)
    }

    /// Carry-less product through an explicit [`crate::MulKernel`] rung.
    ///
    /// Every rung returns the same polynomial (the raw kernel output is
    /// normalized here, so trailing zero words never leak into the
    /// canonical representation).
    pub fn mul_with(&self, rhs: &Gf2Poly, kernel: crate::MulKernel) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Gf2Poly::zero();
        }
        Gf2Poly::from_words(kernel.mul_raw(&self.words, &rhs.words))
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Gf2Poly) -> (Gf2Poly, Gf2Poly) {
        let d_deg = divisor
            .degree()
            .expect("division by the zero polynomial over GF(2)");
        let mut rem = self.clone();
        let mut quot = Gf2Poly::zero();
        while let Some(r_deg) = rem.degree() {
            if r_deg < d_deg {
                break;
            }
            let shift = r_deg - d_deg;
            quot.set_coeff(shift, true);
            rem += &divisor.shl(shift);
        }
        (quot, rem)
    }

    /// Remainder of `self mod divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn rem(&self, divisor: &Gf2Poly) -> Gf2Poly {
        self.div_rem(divisor).1
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    pub fn gcd(&self, other: &Gf2Poly) -> Gf2Poly {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Formal derivative over GF(2): odd-degree terms drop one degree,
    /// even-degree terms vanish.
    pub fn derivative(&self) -> Gf2Poly {
        let mut out = Gf2Poly::zero();
        for e in self.exponents() {
            if e % 2 == 1 {
                out.set_coeff(e - 1, !out.coeff(e - 1));
            }
        }
        out
    }

    /// `x^(2^e) mod modulus`, by repeated squaring with reduction.
    fn x_pow_pow2_mod(e: u32, modulus: &Gf2Poly) -> Gf2Poly {
        let mut acc = Gf2Poly::monomial(1).rem(modulus);
        for _ in 0..e {
            acc = acc.mul(&acc).rem(modulus);
        }
        acc
    }

    /// Irreducibility over GF(2), by Rabin's test: `f` of degree `n` is
    /// irreducible iff `x^(2^n) ≡ x (mod f)` and, for every prime divisor
    /// `p` of `n`, `gcd(x^(2^(n/p)) - x, f) = 1`.
    ///
    /// Used to validate the minimal polynomials feeding the BCH generator
    /// ROM. Intended for the moderate degrees of ECC practice (≤ a few
    /// hundred).
    pub fn is_irreducible(&self) -> bool {
        let Some(n) = self.degree() else {
            return false; // zero polynomial
        };
        if n == 0 {
            return false; // units are not irreducible
        }
        if n == 1 {
            return true;
        }
        // x^(2^n) ≡ x (mod f)?
        let xq = Self::x_pow_pow2_mod(n as u32, self);
        if xq != Gf2Poly::monomial(1).rem(self) {
            return false;
        }
        // gcd(x^(2^(n/p)) + x, f) must be 1 for every prime p | n.
        let mut m = n;
        let mut primes = Vec::new();
        let mut d = 2;
        while d * d <= m {
            if m % d == 0 {
                primes.push(d);
                while m % d == 0 {
                    m /= d;
                }
            }
            d += 1;
        }
        if m > 1 {
            primes.push(m);
        }
        for p in primes {
            let mut g = Self::x_pow_pow2_mod((n / p) as u32, self);
            // g := g + x  (subtraction == addition over GF(2))
            let x = Gf2Poly::monomial(1);
            g += &x;
            if self.gcd(&g).degree() != Some(0) {
                return false;
            }
        }
        true
    }

    /// `true` when the polynomial has no repeated irreducible factors
    /// (`gcd(f, f') = 1`). BCH generator polynomials are always
    /// square-free because they are products of distinct minimal
    /// polynomials.
    pub fn is_square_free(&self) -> bool {
        let d = self.derivative();
        if d.is_zero() {
            // Over GF(2), f' = 0 means f is a square of something
            // (unless f is constant).
            return self.degree() == Some(0);
        }
        self.gcd(&d).degree() == Some(0)
    }

    /// Evaluates the polynomial at a point of GF(2^m) given by `field`.
    ///
    /// Used to check that every constructed generator polynomial vanishes on
    /// the designed roots `alpha^1 .. alpha^2t`.
    pub fn eval_in_field(&self, field: &crate::GfField, point: u32) -> u32 {
        // Horner from the top coefficient down.
        let Some(deg) = self.degree() else {
            return 0;
        };
        let mut acc = 0u32;
        for i in (0..=deg).rev() {
            acc = field.mul(acc, point);
            if self.coeff(i) {
                acc ^= 1;
            }
        }
        acc
    }

    /// `true` when the packed representation is canonical (no trailing
    /// all-zero words). Every constructor and operation on [`Gf2Poly`]
    /// maintains this invariant — it is what makes the derived
    /// `PartialEq`/`Hash` and the O(1) [`Gf2Poly::degree`] correct for
    /// degrees that are not a multiple of 64. Exposed so differential
    /// tests over the [`crate::kernels`] ladder can pin it.
    pub fn is_normalized(&self) -> bool {
        self.words.last() != Some(&0)
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        debug_assert!(self.is_normalized());
    }
}

impl Add<&Gf2Poly> for &Gf2Poly {
    type Output = Gf2Poly;

    fn add(self, rhs: &Gf2Poly) -> Gf2Poly {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl AddAssign<&Gf2Poly> for Gf2Poly {
    fn add_assign(&mut self, rhs: &Gf2Poly) {
        if self.words.len() < rhs.words.len() {
            self.words.resize(rhs.words.len(), 0);
        }
        for (i, &w) in rhs.words.iter().enumerate() {
            self.words[i] ^= w;
        }
        self.normalize();
    }
}

impl Mul<&Gf2Poly> for &Gf2Poly {
    type Output = Gf2Poly;

    fn mul(self, rhs: &Gf2Poly) -> Gf2Poly {
        Gf2Poly::mul(self, rhs)
    }
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        let exps: Vec<usize> = self.exponents().collect();
        for &e in exps.iter().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match e {
                0 => write!(f, "1")?,
                1 => write!(f, "x")?,
                _ => write!(f, "x^{e}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Gf2Poly::zero().is_zero());
        assert_eq!(Gf2Poly::zero().degree(), None);
        assert_eq!(Gf2Poly::one().degree(), Some(0));
        assert_eq!(Gf2Poly::one().weight(), 1);
    }

    #[test]
    fn from_exponents_cancels_duplicates() {
        let p = Gf2Poly::from_exponents(&[3, 3, 1]);
        assert_eq!(p, Gf2Poly::from_exponents(&[1]));
    }

    #[test]
    fn degree_across_word_boundary() {
        let p = Gf2Poly::monomial(200);
        assert_eq!(p.degree(), Some(200));
        assert_eq!(p.weight(), 1);
        assert!(p.coeff(200));
        assert!(!p.coeff(199));
    }

    #[test]
    fn addition_is_xor() {
        let a = Gf2Poly::from_exponents(&[5, 2, 0]);
        let b = Gf2Poly::from_exponents(&[5, 1]);
        let sum = &a + &b;
        assert_eq!(sum, Gf2Poly::from_exponents(&[2, 1, 0]));
        // a + a == 0 (characteristic 2)
        assert!((&a + &a).is_zero());
    }

    #[test]
    fn set_coeff_clears_and_normalizes() {
        let mut p = Gf2Poly::monomial(100);
        p.set_coeff(100, false);
        assert!(p.is_zero());
        assert!(p.as_words().is_empty());
    }

    #[test]
    fn shl_matches_monomial_multiplication() {
        let p = Gf2Poly::from_exponents(&[7, 3, 0]);
        let shifted = p.shl(61); // crosses a word boundary
        let expected = p.mul(&Gf2Poly::monomial(61));
        assert_eq!(shifted, expected);
        assert_eq!(shifted.degree(), Some(68));
    }

    #[test]
    fn multiplication_small_cases() {
        // (x+1)(x+1) = x^2+1
        let x1 = Gf2Poly::from_exponents(&[1, 0]);
        assert_eq!(x1.mul(&x1), Gf2Poly::from_exponents(&[2, 0]));
        // (x^2+x+1)(x+1) = x^3+1
        let a = Gf2Poly::from_exponents(&[2, 1, 0]);
        assert_eq!(a.mul(&x1), Gf2Poly::from_exponents(&[3, 0]));
        // zero absorbs
        assert!(a.mul(&Gf2Poly::zero()).is_zero());
    }

    #[test]
    fn division_identity() {
        let a = Gf2Poly::from_exponents(&[10, 9, 5, 2, 0]);
        let d = Gf2Poly::from_exponents(&[4, 1, 0]);
        let (q, r) = a.div_rem(&d);
        let recomposed = &q.mul(&d) + &r;
        assert_eq!(recomposed, a);
        assert!(r.degree().unwrap_or(0) < d.degree().unwrap());
    }

    #[test]
    fn rem_by_larger_divisor_is_self() {
        let a = Gf2Poly::from_exponents(&[2, 0]);
        let d = Gf2Poly::from_exponents(&[5, 1]);
        assert_eq!(a.rem(&d), a);
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn division_by_zero_panics() {
        let _ = Gf2Poly::one().div_rem(&Gf2Poly::zero());
    }

    #[test]
    fn gcd_of_multiples() {
        let g = Gf2Poly::from_exponents(&[3, 1, 0]);
        let a = g.mul(&Gf2Poly::from_exponents(&[4, 2]));
        let b = g.mul(&Gf2Poly::from_exponents(&[1, 0]));
        let got = a.gcd(&b);
        // gcd must divide both and be divisible by g
        assert!(a.rem(&got).is_zero());
        assert!(b.rem(&got).is_zero());
        assert!(got.rem(&g).is_zero());
    }

    #[test]
    fn display_formats_terms() {
        let p = Gf2Poly::from_exponents(&[3, 1, 0]);
        assert_eq!(p.to_string(), "x^3 + x + 1");
        assert_eq!(Gf2Poly::zero().to_string(), "0");
        assert_eq!(format!("{:?}", Gf2Poly::one()), "Gf2Poly(1)");
    }

    #[test]
    fn from_words_normalizes_trailing_zero_words() {
        // Same polynomial, three packings: PartialEq/degree must be
        // canonical regardless of how many zero words the caller padded.
        let canonical = Gf2Poly::from_words(vec![0b101]);
        let padded = Gf2Poly::from_words(vec![0b101, 0, 0]);
        assert_eq!(canonical, padded);
        assert_eq!(padded.as_words().len(), 1);
        assert!(padded.is_normalized());
        assert_eq!(padded.degree(), Some(2));
        assert!(Gf2Poly::from_words(vec![0, 0]).is_zero());
    }

    #[test]
    fn word_boundary_tail_masks() {
        // Degrees 63 / 64 / 65: the packing tail straddles the word edge.
        for deg in [62usize, 63, 64, 65, 127, 128] {
            let p = Gf2Poly::monomial(deg);
            assert_eq!(p.degree(), Some(deg), "deg {deg}");
            assert_eq!(p.as_words().len(), deg / 64 + 1, "deg {deg}");
            assert!(p.is_normalized());
            // Clearing the top bit must drop the now-empty word(s).
            let mut q = p.clone();
            q.set_coeff(deg, false);
            assert!(q.is_zero());
            assert!(q.as_words().is_empty());
        }
    }

    #[test]
    fn mul_with_every_kernel_is_canonical_across_word_boundaries() {
        use crate::MulKernel;
        // (x^63 + 1)(x + 1) = x^64 + x^63 + x + 1: the product's top term
        // lands exactly on a fresh word.
        let a = Gf2Poly::from_exponents(&[63, 0]);
        let b = Gf2Poly::from_exponents(&[1, 0]);
        let expect = Gf2Poly::from_exponents(&[64, 63, 1, 0]);
        for k in MulKernel::ALL {
            let got = a.mul_with(&b, k);
            assert_eq!(got, expect, "kernel rung {}", k.rung());
            assert!(got.is_normalized(), "kernel rung {}", k.rung());
        }
        // x^64 * x^64 = x^128 and (x^64 + x^63)^2 = x^128 + x^126:
        // raw kernel outputs carry trailing zero words that must be
        // trimmed before PartialEq/degree are trustworthy.
        let m = Gf2Poly::monomial(64);
        for k in MulKernel::ALL {
            let got = m.mul_with(&m, k);
            assert_eq!(got.degree(), Some(128), "kernel rung {}", k.rung());
            assert_eq!(got.as_words().len(), 3, "kernel rung {}", k.rung());
        }
    }

    #[test]
    fn div_rem_at_word_boundary_degrees() {
        // Divisor of degree exactly 64; dividend degree 130.
        let d = Gf2Poly::from_exponents(&[64, 3, 0]);
        let a = Gf2Poly::from_exponents(&[130, 64, 17, 2]);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q.mul(&d) + &r, a);
        assert!(r.degree().unwrap_or(0) < 64);
        assert!(q.is_normalized() && r.is_normalized());
    }

    #[test]
    fn exponents_iterator_ascending() {
        let p = Gf2Poly::from_exponents(&[65, 64, 3]);
        let exps: Vec<usize> = p.exponents().collect();
        assert_eq!(exps, vec![3, 64, 65]);
    }

    #[test]
    fn derivative_over_gf2() {
        // d/dx (x^5 + x^4 + x + 1) = 5x^4 + 4x^3 + 1 = x^4 + 1 over GF(2).
        let p = Gf2Poly::from_exponents(&[5, 4, 1, 0]);
        assert_eq!(p.derivative(), Gf2Poly::from_exponents(&[4, 0]));
        assert!(Gf2Poly::from_exponents(&[4, 2, 0]).derivative().is_zero());
    }

    #[test]
    fn irreducibility_known_cases() {
        // Primitive (hence irreducible) polynomials.
        assert!(Gf2Poly::from_exponents(&[3, 1, 0]).is_irreducible());
        assert!(Gf2Poly::from_exponents(&[4, 1, 0]).is_irreducible());
        assert!(Gf2Poly::from_exponents(&[16, 12, 3, 1, 0]).is_irreducible());
        // Irreducible but NOT primitive: x^4 + x^3 + x^2 + x + 1.
        assert!(Gf2Poly::from_exponents(&[4, 3, 2, 1, 0]).is_irreducible());
        // Reducible: x^4 + 1 = (x+1)^4; x^2 (no constant term).
        assert!(!Gf2Poly::from_exponents(&[4, 0]).is_irreducible());
        assert!(!Gf2Poly::from_exponents(&[2]).is_irreducible());
        // Degenerate cases.
        assert!(!Gf2Poly::zero().is_irreducible());
        assert!(!Gf2Poly::one().is_irreducible());
        assert!(Gf2Poly::from_exponents(&[1]).is_irreducible());
    }

    #[test]
    fn product_of_irreducibles_is_reducible() {
        let a = Gf2Poly::from_exponents(&[3, 1, 0]);
        let b = Gf2Poly::from_exponents(&[2, 1, 0]);
        assert!(!a.mul(&b).is_irreducible());
    }

    #[test]
    fn square_freeness() {
        let a = Gf2Poly::from_exponents(&[3, 1, 0]);
        let b = Gf2Poly::from_exponents(&[2, 1, 0]);
        assert!(a.mul(&b).is_square_free());
        assert!(!a.mul(&a).is_square_free());
        assert!(Gf2Poly::one().is_square_free());
    }
}
