//! Property-based tests for the algebraic substrates.

use mlcx_gf2::{minpoly, Gf2Poly, GfField, MulKernel};
use proptest::prelude::*;

fn arb_poly(max_deg: usize) -> impl Strategy<Value = Gf2Poly> {
    proptest::collection::vec(any::<bool>(), 0..=max_deg + 1).prop_map(|coeffs| {
        let mut p = Gf2Poly::zero();
        for (i, c) in coeffs.into_iter().enumerate() {
            p.set_coeff(i, c);
        }
        p
    })
}

proptest! {
    #[test]
    fn poly_addition_commutes(a in arb_poly(200), b in arb_poly(200)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn poly_addition_associates(a in arb_poly(150), b in arb_poly(150), c in arb_poly(150)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn poly_self_cancellation(a in arb_poly(300)) {
        prop_assert!((&a + &a).is_zero());
    }

    #[test]
    fn poly_multiplication_commutes(a in arb_poly(120), b in arb_poly(120)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn poly_multiplication_distributes(a in arb_poly(90), b in arb_poly(90), c in arb_poly(90)) {
        let lhs = a.mul(&(&b + &c));
        let rhs = &a.mul(&b) + &a.mul(&c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn poly_degree_of_product_adds(a in arb_poly(100), b in arb_poly(100)) {
        // Over GF(2) leading terms cannot cancel: deg(ab) = deg a + deg b.
        if let (Some(da), Some(db)) = (a.degree(), b.degree()) {
            prop_assert_eq!(a.mul(&b).degree(), Some(da + db));
        }
    }

    #[test]
    fn poly_division_invariant(a in arb_poly(250), d in arb_poly(60)) {
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert_eq!(&q.mul(&d) + &r, a);
        if let Some(rd) = r.degree() {
            prop_assert!(rd < d.degree().unwrap());
        }
    }

    #[test]
    fn field_axioms_random_elements(
        m in 2u32..=12,
        seeds in proptest::collection::vec(0u32..u32::MAX, 3),
    ) {
        let f = GfField::new(m).unwrap();
        let size = f.size();
        let (a, b, c) = (seeds[0] % size, seeds[1] % size, seeds[2] % size);
        // Associativity and commutativity of multiplication.
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // Distributivity over addition (xor).
        prop_assert_eq!(f.mul(a, b ^ c), f.mul(a, b) ^ f.mul(a, c));
        // Identity.
        prop_assert_eq!(f.mul(a, 1), a);
    }

    #[test]
    fn field_inverse_roundtrip(m in 2u32..=12, seed in 1u32..u32::MAX) {
        let f = GfField::new(m).unwrap();
        let a = seed % (f.size() - 1) + 1; // nonzero
        let inv = f.inv(a).unwrap();
        prop_assert_eq!(f.mul(a, inv), 1);
        prop_assert_eq!(f.inv(inv).unwrap(), a);
    }

    #[test]
    fn field_frobenius_is_additive(m in 2u32..=12, seeds in proptest::collection::vec(0u32..u32::MAX, 2)) {
        // (a + b)^2 = a^2 + b^2 in characteristic 2.
        let f = GfField::new(m).unwrap();
        let (a, b) = (seeds[0] % f.size(), seeds[1] % f.size());
        prop_assert_eq!(f.mul(a ^ b, a ^ b), f.mul(a, a) ^ f.mul(b, b));
    }

    #[test]
    fn minimal_polys_have_coset_degree(m in 3u32..=10, s_seed in 1u32..5000) {
        let f = GfField::new(m).unwrap();
        let s = s_seed % f.order();
        prop_assume!(s != 0);
        let coset = minpoly::cyclotomic_coset(m, s);
        let mp = minpoly::minimal_poly(&f, s);
        prop_assert_eq!(mp.degree(), Some(coset.len()));
        // Vanishes on alpha^s.
        prop_assert_eq!(mp.eval_in_field(&f, f.alpha_pow(s as i64)), 0);
    }

    #[test]
    fn every_mul_kernel_matches_reference(a in arb_poly(300), b in arb_poly(300)) {
        // Differential harness for the mul_raw ladder: each rung must be
        // bit-identical to the rung-0 bit-serial reference, including the
        // CLMUL rung (which silently falls back when unsupported).
        let reference = a.mul_with(&b, MulKernel::Reference);
        for kernel in MulKernel::ALL {
            let out = kernel.mul_raw(a.as_words(), b.as_words());
            prop_assert_eq!(Gf2Poly::from_words(out), reference.clone());
        }
    }

    #[test]
    fn mul_kernels_canonicalize_word_boundaries(shift_a in 0usize..200, shift_b in 0usize..200) {
        // Single-bit operands land products exactly on/around word seams;
        // every rung must produce the same canonical (normalized) words.
        let mut a = Gf2Poly::zero();
        a.set_coeff(shift_a, true);
        let mut b = Gf2Poly::zero();
        b.set_coeff(shift_b, true);
        for kernel in MulKernel::ALL {
            let p = a.mul_with(&b, kernel);
            prop_assert!(p.is_normalized());
            prop_assert_eq!(p.degree(), Some(shift_a + shift_b));
        }
    }

    #[test]
    fn generator_poly_bose_bound(m in 4u32..=11, t in 1u32..=6) {
        let f = GfField::new(m).unwrap();
        prop_assume!((m * t) < f.order());
        let g = minpoly::generator_poly(&f, t);
        let deg = g.degree().unwrap();
        prop_assert!(deg <= (m * t) as usize);
        // Designed roots are roots.
        for i in 1..=(2 * t) as i64 {
            prop_assert_eq!(g.eval_in_field(&f, f.alpha_pow(i)), 0);
        }
    }
}
