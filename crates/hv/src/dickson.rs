//! Dickson charge-pump physics.
//!
//! A Dickson pump chains `N` capacitor stages clocked in anti-phase; each
//! stage adds (ideally) one supply voltage to the running rail. The model
//! below uses the standard first-order description that analog designers
//! (and the paper's SPICE testbench) use to size NAND HV systems:
//!
//! * no-load output `V_nl = (N + 1) * Vdd`,
//! * output impedance `R_out = N / (f * C)`,
//! * steady-state output under load `V_out = V_nl - R_out * I_load`,
//! * input current `I_in = (N + 1) * I_pump + N * f * C_par * Vdd`
//!   (delivered charge plus bottom-plate parasitic switching).

/// First-order model of an `N`-stage Dickson ("modified", i.e. CTS
/// diode-cancelled) charge pump.
///
/// # Example
///
/// ```
/// use mlcx_hv::DicksonPump;
///
/// // The paper's program pump: 12 stages from a 1.8 V supply can serve
/// // the 14..19 V ISPP range.
/// let pump = DicksonPump::program_pump_45nm();
/// assert!(pump.no_load_output_v() > 19.0);
/// let v = pump.steady_state_output_v(0.3e-3);
/// assert!(v > 19.0 && v < pump.no_load_output_v());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DicksonPump {
    /// Number of pumping stages `N`.
    pub stages: u32,
    /// Per-stage pumping capacitance, farads.
    pub stage_capacitance_f: f64,
    /// Pump clock frequency, hertz.
    pub clock_hz: f64,
    /// Supply voltage `Vdd`, volts.
    pub supply_v: f64,
    /// Bottom-plate parasitic ratio `C_par / C` per stage.
    pub parasitic_ratio: f64,
    /// Capacitance hanging on the pump output (rail + decoupling), farads.
    pub output_capacitance_f: f64,
}

/// Result of a ramp-up transient simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampResult {
    /// Time to reach the requested target voltage, seconds
    /// (`f64::INFINITY` if the target is unreachable).
    pub rise_time_s: f64,
    /// Output voltage at the end of the simulated window.
    pub final_v: f64,
    /// Energy drawn from the supply during the window, joules.
    pub input_energy_j: f64,
}

impl DicksonPump {
    /// The paper's **program** pump: conventional 12-stage Dickson
    /// modified pump supplying the 14-19 V ISPP pulse.
    pub fn program_pump_45nm() -> Self {
        DicksonPump {
            stages: 12,
            stage_capacitance_f: 120e-12,
            clock_hz: 20.0e6,
            supply_v: 1.8,
            parasitic_ratio: 0.12,
            output_capacitance_f: 60e-12,
        }
    }

    /// The paper's **inhibit** pump: same architecture, 8 stages, 8 V for
    /// channel self-boosting of unselected pages.
    pub fn inhibit_pump_45nm() -> Self {
        DicksonPump {
            stages: 8,
            stage_capacitance_f: 120e-12,
            clock_hz: 20.0e6,
            supply_v: 1.8,
            parasitic_ratio: 0.12,
            output_capacitance_f: 80e-12,
        }
    }

    /// The paper's **verify** pump: 4-stage high-speed pump producing the
    /// 4.5 V read-pass voltage for unselected cells during Verify.
    pub fn verify_pump_45nm() -> Self {
        DicksonPump {
            stages: 4,
            stage_capacitance_f: 150e-12,
            clock_hz: 40.0e6, // high-speed
            supply_v: 1.8,
            parasitic_ratio: 0.12,
            output_capacitance_f: 100e-12,
        }
    }

    /// Ideal no-load output voltage `(N + 1) * Vdd`.
    pub fn no_load_output_v(&self) -> f64 {
        (self.stages as f64 + 1.0) * self.supply_v
    }

    /// Output impedance `N / (f * C)`, ohms.
    pub fn output_impedance_ohm(&self) -> f64 {
        self.stages as f64 / (self.clock_hz * self.stage_capacitance_f)
    }

    /// Steady-state output voltage under a constant load current.
    pub fn steady_state_output_v(&self, load_current_a: f64) -> f64 {
        self.no_load_output_v() - self.output_impedance_ohm() * load_current_a
    }

    /// Maximum current deliverable while holding `target_v`
    /// (`(V_nl - V_t) / R_out`; zero when the target is unreachable).
    pub fn max_load_current_a(&self, target_v: f64) -> f64 {
        ((self.no_load_output_v() - target_v) / self.output_impedance_ohm()).max(0.0)
    }

    /// Supply current when the pump is running and delivering
    /// `pump_current_a` at its output.
    pub fn input_current_a(&self, pump_current_a: f64) -> f64 {
        let n = self.stages as f64;
        (n + 1.0) * pump_current_a
            + n * self.clock_hz * self.parasitic_ratio * self.stage_capacitance_f * self.supply_v
    }

    /// Supply power when running (`Vdd * I_in`), watts.
    pub fn input_power_w(&self, pump_current_a: f64) -> f64 {
        self.supply_v * self.input_current_a(pump_current_a)
    }

    /// Power-conversion efficiency at an operating point.
    pub fn efficiency(&self, output_v: f64, load_current_a: f64) -> f64 {
        let p_out = output_v * load_current_a;
        let p_in = self.input_power_w(load_current_a);
        if p_in <= 0.0 {
            0.0
        } else {
            p_out / p_in
        }
    }

    /// Simulates the ramp-up transient towards `target_v` with a constant
    /// load, by forward-Euler integration of
    /// `C_out * dV/dt = (V_nl - V)/R_out - I_load`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` or `window_s` is not strictly positive.
    pub fn simulate_ramp(
        &self,
        target_v: f64,
        load_current_a: f64,
        dt_s: f64,
        window_s: f64,
    ) -> RampResult {
        assert!(dt_s > 0.0 && window_s > 0.0, "time steps must be positive");
        let v_nl = self.no_load_output_v();
        let r_out = self.output_impedance_ohm();
        let mut v = self.supply_v; // rail precharged to Vdd
        let mut t = 0.0;
        let mut rise_time = f64::INFINITY;
        let mut energy = 0.0;
        while t < window_s {
            let pump_current = ((v_nl - v) / r_out).max(0.0);
            energy += self.input_power_w(pump_current) * dt_s;
            let dv = (pump_current - load_current_a) / self.output_capacitance_f * dt_s;
            v += dv;
            t += dt_s;
            if rise_time.is_infinite() && v >= target_v {
                rise_time = t;
            }
        }
        RampResult {
            rise_time_s: rise_time,
            final_v: v,
            input_energy_j: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pumps_reach_their_targets() {
        // Program pump must hold 19 V, inhibit 8 V, verify 4.5 V.
        assert!(DicksonPump::program_pump_45nm().max_load_current_a(19.0) > 0.0);
        assert!(DicksonPump::inhibit_pump_45nm().max_load_current_a(8.0) > 0.0);
        assert!(DicksonPump::verify_pump_45nm().max_load_current_a(4.5) > 0.0);
    }

    #[test]
    fn no_load_voltage_scales_with_stages() {
        let p = DicksonPump::program_pump_45nm();
        assert!((p.no_load_output_v() - 23.4).abs() < 1e-9);
        let i = DicksonPump::inhibit_pump_45nm();
        assert!((i.no_load_output_v() - 16.2).abs() < 1e-9);
    }

    #[test]
    fn output_droops_with_load() {
        let p = DicksonPump::program_pump_45nm();
        let v0 = p.steady_state_output_v(0.0);
        let v1 = p.steady_state_output_v(0.5e-3);
        let v2 = p.steady_state_output_v(1.0e-3);
        assert!(v0 > v1 && v1 > v2);
        assert!((v0 - p.no_load_output_v()).abs() < 1e-12);
    }

    #[test]
    fn input_current_has_parasitic_floor() {
        let p = DicksonPump::program_pump_45nm();
        // Even unloaded (but running) the pump burns switching power.
        assert!(p.input_current_a(0.0) > 0.0);
        // And the loaded term dominates at realistic currents.
        assert!(p.input_current_a(1e-3) > 10.0 * 1e-3);
    }

    #[test]
    fn efficiency_below_unity_and_peaks_midrange() {
        let p = DicksonPump::program_pump_45nm();
        for i_load in [0.05e-3, 0.2e-3, 0.5e-3] {
            let v = p.steady_state_output_v(i_load);
            let eta = p.efficiency(v, i_load);
            assert!(eta > 0.0 && eta < 1.0, "eta = {eta}");
        }
        assert_eq!(p.efficiency(18.0, 0.0), 0.0);
    }

    #[test]
    fn ramp_converges_to_regulation_point() {
        let p = DicksonPump::program_pump_45nm();
        let r = p.simulate_ramp(18.0, 0.1e-3, 5e-9, 50e-6);
        assert!(r.rise_time_s.is_finite(), "pump must reach 18 V");
        assert!(r.rise_time_s < 20e-6, "rise time {:.2e}", r.rise_time_s);
        assert!(r.final_v >= 18.0);
        assert!(r.input_energy_j > 0.0);
    }

    #[test]
    fn unreachable_target_reported_as_infinite() {
        let p = DicksonPump::verify_pump_45nm();
        let r = p.simulate_ramp(25.0, 0.0, 1e-8, 20e-6);
        assert!(r.rise_time_s.is_infinite());
        assert!(r.final_v < 25.0);
    }

    #[test]
    fn heavier_load_slows_the_ramp() {
        let p = DicksonPump::inhibit_pump_45nm();
        let light = p.simulate_ramp(8.0, 0.05e-3, 5e-9, 50e-6);
        let heavy = p.simulate_ramp(8.0, 0.6e-3, 5e-9, 50e-6);
        assert!(light.rise_time_s < heavy.rise_time_s);
    }

    #[test]
    #[should_panic(expected = "time steps must be positive")]
    fn ramp_rejects_bad_dt() {
        DicksonPump::program_pump_45nm().simulate_ramp(18.0, 0.0, 0.0, 1e-6);
    }
}
