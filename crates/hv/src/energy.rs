//! Energy bookkeeping for HV operations.

/// Energy spent in one phase of an operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseEnergy {
    /// Human-readable phase label ("pulse", "verify", ...).
    pub label: &'static str,
    /// Phase duration, seconds.
    pub duration_s: f64,
    /// Supply energy, joules.
    pub energy_j: f64,
}

impl PhaseEnergy {
    /// Mean power of the phase, watts.
    pub fn power_w(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.energy_j / self.duration_s
        }
    }
}

/// Full energy breakdown of one memory operation (program, read, erase).
///
/// # Example
///
/// ```
/// use mlcx_hv::{OperationEnergy, PhaseEnergy};
///
/// let op = OperationEnergy::from_phases(vec![
///     PhaseEnergy { label: "pulse", duration_s: 10e-6, energy_j: 1.5e-6 },
///     PhaseEnergy { label: "verify", duration_s: 30e-6, energy_j: 5.4e-6 },
/// ]);
/// assert!((op.total_energy_j() - 6.9e-6).abs() < 1e-12);
/// assert!(op.average_power_w() > 0.15);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OperationEnergy {
    phases: Vec<PhaseEnergy>,
}

impl OperationEnergy {
    /// Builds a report from per-phase records.
    pub fn from_phases(phases: Vec<PhaseEnergy>) -> Self {
        OperationEnergy { phases }
    }

    /// The per-phase records.
    pub fn phases(&self) -> &[PhaseEnergy] {
        &self.phases
    }

    /// Appends a phase record.
    pub fn push(&mut self, phase: PhaseEnergy) {
        self.phases.push(phase);
    }

    /// Total supply energy of the operation, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.phases.iter().map(|p| p.energy_j).sum()
    }

    /// Total operation duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Mean power over the whole operation, watts — the quantity the
    /// paper's Fig. 6 plots.
    pub fn average_power_w(&self) -> f64 {
        let t = self.duration_s();
        if t <= 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Sums the energy of phases with the given label.
    pub fn energy_for_label_j(&self, label: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.label == label)
            .map(|p| p.energy_j)
            .sum()
    }

    /// Sums the duration of phases with the given label.
    pub fn duration_for_label_s(&self, label: &str) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.label == label)
            .map(|p| p.duration_s)
            .sum()
    }
}

/// Accumulates operation energies into device-lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyMeter {
    /// Total accumulated energy, joules.
    pub total_energy_j: f64,
    /// Total accumulated busy time, seconds.
    pub total_time_s: f64,
    /// Number of operations accumulated.
    pub operations: u64,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Folds one operation into the running totals.
    pub fn record(&mut self, op: &OperationEnergy) {
        self.total_energy_j += op.total_energy_j();
        self.total_time_s += op.duration_s();
        self.operations += 1;
    }

    /// Folds another meter into this one — rolling per-die meters up
    /// into per-channel or subsystem totals.
    pub fn absorb(&mut self, other: &EnergyMeter) {
        self.total_energy_j += other.total_energy_j;
        self.total_time_s += other.total_time_s;
        self.operations += other.operations;
    }

    /// Lifetime average power, watts.
    pub fn average_power_w(&self) -> f64 {
        if self.total_time_s <= 0.0 {
            0.0
        } else {
            self.total_energy_j / self.total_time_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OperationEnergy {
        OperationEnergy::from_phases(vec![
            PhaseEnergy {
                label: "pulse",
                duration_s: 10e-6,
                energy_j: 1.5e-6,
            },
            PhaseEnergy {
                label: "verify",
                duration_s: 20e-6,
                energy_j: 3.6e-6,
            },
            PhaseEnergy {
                label: "verify",
                duration_s: 20e-6,
                energy_j: 3.6e-6,
            },
        ])
    }

    #[test]
    fn totals_add_up() {
        let op = sample();
        assert!((op.total_energy_j() - 8.7e-6).abs() < 1e-15);
        assert!((op.duration_s() - 50e-6).abs() < 1e-15);
        let avg = op.average_power_w();
        assert!((avg - 8.7e-6 / 50e-6).abs() < 1e-12);
    }

    #[test]
    fn label_filters() {
        let op = sample();
        assert!((op.energy_for_label_j("verify") - 7.2e-6).abs() < 1e-15);
        assert!((op.duration_for_label_s("pulse") - 10e-6).abs() < 1e-15);
        assert_eq!(op.energy_for_label_j("nope"), 0.0);
    }

    #[test]
    fn average_power_between_phase_powers() {
        let op = sample();
        let powers: Vec<f64> = op.phases().iter().map(|p| p.power_w()).collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        let avg = op.average_power_w();
        assert!(avg >= min && avg <= max);
    }

    #[test]
    fn empty_operation_is_zero_power() {
        let op = OperationEnergy::default();
        assert_eq!(op.average_power_w(), 0.0);
        assert_eq!(op.total_energy_j(), 0.0);
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = EnergyMeter::new();
        let op = sample();
        meter.record(&op);
        meter.record(&op);
        assert_eq!(meter.operations, 2);
        assert!((meter.total_energy_j - 2.0 * op.total_energy_j()).abs() < 1e-15);
        assert!((meter.average_power_w() - op.average_power_w()).abs() < 1e-9);
    }
}
