//! Hysteretic (bang-bang) pump regulation.
//!
//! The paper: "each pump generates a growing voltage ramp till the
//! regulation system shuts it down ... connecting a voltage divider in
//! feedback between the output of a charge pump and one input of a
//! differential amplifier ... The charge pump is then shut down when a
//! target voltage is reached and possibly restarted when the target
//! voltage drops below a reference level. This is the only viable solution
//! for an accurate control of the threshold voltages in a MLC NAND Flash
//! device."

use crate::dickson::DicksonPump;

/// The feedback comparator band of a pump regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HystereticRegulator {
    /// Regulation target at the pump output, volts.
    pub target_v: f64,
    /// Restart threshold is `target_v - hysteresis_v`.
    pub hysteresis_v: f64,
    /// Feedback divider ratio (output sensed as `V * ratio`); recorded for
    /// completeness of the analog description.
    pub divider_ratio: f64,
}

impl HystereticRegulator {
    /// A regulator for `target_v` with a band of 1 % of the target.
    pub fn for_target(target_v: f64) -> Self {
        HystereticRegulator {
            target_v,
            hysteresis_v: 0.01 * target_v,
            divider_ratio: 1.2 / target_v, // compare against a 1.2 V bandgap
        }
    }
}

/// A [`DicksonPump`] inside its regulation loop, stepped in discrete time.
///
/// Tracks the enable duty cycle and the energy drawn from the supply —
/// the two observables the power characterization (paper Fig. 6) needs.
///
/// # Example
///
/// ```
/// use mlcx_hv::{DicksonPump, RegulatedPump};
///
/// let mut pump = RegulatedPump::new(DicksonPump::inhibit_pump_45nm(), 8.0);
/// let report = pump.run_phase(5e-6, 0.2e-3);
/// assert!(report.mean_output_v > 7.8 && report.mean_output_v < 8.3);
/// assert!(report.duty_cycle > 0.0 && report.duty_cycle <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct RegulatedPump {
    pump: DicksonPump,
    regulator: HystereticRegulator,
    output_v: f64,
    enabled: bool,
    /// Integration step, seconds.
    dt_s: f64,
}

/// Aggregates of one regulated phase (see [`RegulatedPump::run_phase`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseReport {
    /// Mean output voltage over the phase.
    pub mean_output_v: f64,
    /// Fraction of the phase with the pump clock enabled.
    pub duty_cycle: f64,
    /// Energy drawn from the supply, joules.
    pub input_energy_j: f64,
    /// Phase duration, seconds.
    pub duration_s: f64,
}

impl PhaseReport {
    /// Mean supply power over the phase, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.input_energy_j / self.duration_s
        }
    }
}

impl RegulatedPump {
    /// Wraps `pump` with a regulator for `target_v`.
    ///
    /// The integration step adapts to the pump's output time constant
    /// (`R_out * C_out / 30`, capped at 10 ns) so the bang-bang ripple of
    /// fast, strongly-driven pumps stays resolved.
    pub fn new(pump: DicksonPump, target_v: f64) -> Self {
        let tau = pump.output_capacitance_f * pump.output_impedance_ohm();
        RegulatedPump {
            pump,
            regulator: HystereticRegulator::for_target(target_v),
            output_v: pump.supply_v,
            enabled: true,
            dt_s: (tau / 30.0).clamp(0.1e-9, 10e-9),
        }
    }

    /// The wrapped pump.
    pub fn pump(&self) -> &DicksonPump {
        &self.pump
    }

    /// The current regulation target.
    pub fn target_v(&self) -> f64 {
        self.regulator.target_v
    }

    /// Moves the regulation target (the ISPP staircase does this once per
    /// pulse); the output rail keeps its charge.
    pub fn set_target_v(&mut self, target_v: f64) {
        self.regulator = HystereticRegulator::for_target(target_v);
    }

    /// Present output voltage.
    pub fn output_v(&self) -> f64 {
        self.output_v
    }

    /// Advances one integration step under `load_current_a`; returns the
    /// supply energy consumed in the step.
    pub fn step(&mut self, load_current_a: f64) -> f64 {
        // Comparator with hysteresis.
        if self.output_v >= self.regulator.target_v {
            self.enabled = false;
        } else if self.output_v < self.regulator.target_v - self.regulator.hysteresis_v {
            self.enabled = true;
        }
        let v_nl = self.pump.no_load_output_v();
        let r_out = self.pump.output_impedance_ohm();
        let pump_current = if self.enabled {
            ((v_nl - self.output_v) / r_out).max(0.0)
        } else {
            0.0
        };
        let energy = if self.enabled {
            self.pump.input_power_w(pump_current) * self.dt_s
        } else {
            0.0
        };
        let dv = (pump_current - load_current_a) / self.pump.output_capacitance_f * self.dt_s;
        self.output_v = (self.output_v + dv).max(0.0);
        energy
    }

    /// Runs a whole phase of `duration_s` under a constant load and
    /// returns the aggregate report.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn run_phase(&mut self, duration_s: f64, load_current_a: f64) -> PhaseReport {
        assert!(duration_s > 0.0, "phase duration must be positive");
        let steps = (duration_s / self.dt_s).ceil() as u64;
        let mut energy = 0.0;
        let mut v_acc = 0.0;
        let mut enabled_steps = 0u64;
        for _ in 0..steps {
            energy += self.step(load_current_a);
            if self.enabled {
                enabled_steps += 1;
            }
            v_acc += self.output_v;
        }
        PhaseReport {
            mean_output_v: v_acc / steps as f64,
            duty_cycle: enabled_steps as f64 / steps as f64,
            input_energy_j: energy,
            duration_s: steps as f64 * self.dt_s,
        }
    }

    /// Average supply power at regulation steady state, without transient
    /// simulation: `Vdd * ((N+1) * I_load + duty * N * f * C_par * Vdd)`
    /// with `duty = I_load / I_max(target)`.
    ///
    /// This closed form is what the phase-level power model uses; the
    /// time-stepped simulation above exists to validate it.
    pub fn steady_state_power_w(&self, load_current_a: f64) -> f64 {
        let i_max = self.pump.max_load_current_a(self.regulator.target_v);
        let duty = if i_max > 0.0 {
            (load_current_a / i_max).min(1.0)
        } else {
            1.0
        };
        let n = self.pump.stages as f64;
        let parasitic = n
            * self.pump.clock_hz
            * self.pump.parasitic_ratio
            * self.pump.stage_capacitance_f
            * self.pump.supply_v;
        self.pump.supply_v * ((n + 1.0) * load_current_a + duty * parasitic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulator_band_construction() {
        let r = HystereticRegulator::for_target(18.0);
        assert!((r.target_v - 18.0).abs() < 1e-12);
        assert!(r.hysteresis_v > 0.0 && r.hysteresis_v < 0.5);
        assert!(r.divider_ratio > 0.0 && r.divider_ratio < 1.0);
    }

    #[test]
    fn holds_voltage_inside_band() {
        let mut p = RegulatedPump::new(DicksonPump::program_pump_45nm(), 16.0);
        // Let it ramp and settle.
        p.run_phase(20e-6, 0.2e-3);
        let report = p.run_phase(10e-6, 0.2e-3);
        assert!(
            report.mean_output_v > 15.5 && report.mean_output_v < 16.5,
            "mean V = {}",
            report.mean_output_v
        );
    }

    #[test]
    fn duty_cycle_rises_with_load() {
        let mut light = RegulatedPump::new(DicksonPump::program_pump_45nm(), 16.0);
        light.run_phase(20e-6, 0.05e-3);
        let l = light.run_phase(20e-6, 0.05e-3);
        let mut heavy = RegulatedPump::new(DicksonPump::program_pump_45nm(), 16.0);
        heavy.run_phase(20e-6, 0.6e-3);
        let h = heavy.run_phase(20e-6, 0.6e-3);
        assert!(
            h.duty_cycle > l.duty_cycle,
            "{} <= {}",
            h.duty_cycle,
            l.duty_cycle
        );
    }

    #[test]
    fn retargeting_keeps_rail_charge() {
        let mut p = RegulatedPump::new(DicksonPump::program_pump_45nm(), 14.0);
        p.run_phase(20e-6, 0.1e-3);
        let v_before = p.output_v();
        p.set_target_v(14.25); // one ISPP step
        assert!((p.output_v() - v_before).abs() < 1e-12);
        p.run_phase(10e-6, 0.1e-3);
        assert!(p.output_v() > v_before);
    }

    #[test]
    fn steady_state_power_matches_simulation() {
        let mut p = RegulatedPump::new(DicksonPump::inhibit_pump_45nm(), 8.0);
        p.run_phase(30e-6, 0.3e-3); // settle
        let sim = p.run_phase(30e-6, 0.3e-3).mean_power_w();
        let model = p.steady_state_power_w(0.3e-3);
        let err = (sim - model).abs() / model;
        assert!(
            err < 0.15,
            "sim {sim:.4} vs model {model:.4} (err {err:.3})"
        );
    }

    #[test]
    fn phase_report_power_helper() {
        let r = PhaseReport {
            mean_output_v: 8.0,
            duty_cycle: 0.5,
            input_energy_j: 2e-6,
            duration_s: 1e-3,
        };
        assert!((r.mean_power_w() - 2e-3).abs() < 1e-12);
    }
}
