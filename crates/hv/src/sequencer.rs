//! Register-driven phase sequencer.
//!
//! "In a NAND Flash device the timing and sequence of analog circuitry
//! operations are driven by the embedded microcontroller/FSM by means of a
//! set of interface registers, generating the enable signals for the
//! charge pumps. Switching from ISPP-SV to ISPP-DV does not require a
//! modification of the HV subsystem but rather implies a different
//! sequence of enable signals notified through the same register
//! interface." (paper, Section 5.1)
//!
//! The sequencer consumes a list of [`Phase`] records — the enable-signal
//! program — and produces the per-phase energy breakdown. The ISPP engines
//! in `mlcx-nand` emit different phase programs for SV and DV against this
//! *identical* hardware, which is the paper's minimal-cost argument.

use crate::energy::{OperationEnergy, PhaseEnergy};
use crate::subsystem::HvSubsystem;

/// What the HV subsystem is doing during a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// A program pulse with the ISPP staircase at `target_v`.
    ProgramPulse {
        /// Gate voltage of this staircase step, volts.
        target_v: f64,
    },
    /// A verify read against one of the MLC verify levels.
    Verify {
        /// Which verify level (1..=3 for VFY1..VFY3).
        level: u8,
    },
    /// The extra low-margin verify of the double-verify algorithm.
    PreVerify {
        /// Which verify level the pre-verify belongs to.
        level: u8,
    },
    /// A page read against the read levels R1..R3.
    Read,
    /// An erase pulse on the block well.
    ErasePulse,
}

/// One entry of the enable-signal program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// The biasing configuration.
    pub kind: PhaseKind,
    /// How long the configuration is held, seconds.
    pub duration_s: f64,
}

/// Per-pump enable bits as the FSM's interface registers would hold them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PumpEnables {
    /// Program pump clock enable.
    pub program: bool,
    /// Inhibit pump clock enable.
    pub inhibit: bool,
    /// Verify pump clock enable.
    pub verify: bool,
}

/// Executes enable-signal programs against an [`HvSubsystem`].
///
/// # Example
///
/// ```
/// use mlcx_hv::{HvSubsystem, Phase, PhaseKind, Sequencer};
///
/// let seq = Sequencer::new(HvSubsystem::date2012());
/// let op = seq.execute(&[
///     Phase { kind: PhaseKind::ProgramPulse { target_v: 14.0 }, duration_s: 12e-6 },
///     Phase { kind: PhaseKind::Verify { level: 1 }, duration_s: 12e-6 },
/// ]);
/// assert_eq!(op.phases().len(), 2);
/// assert!(op.average_power_w() > 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sequencer {
    hv: HvSubsystem,
}

impl Sequencer {
    /// Wraps an HV subsystem.
    pub fn new(hv: HvSubsystem) -> Self {
        Sequencer { hv }
    }

    /// The wrapped subsystem.
    pub fn hv(&self) -> &HvSubsystem {
        &self.hv
    }

    /// The enable bits a phase asserts — the register-interface view.
    pub fn enables(kind: PhaseKind) -> PumpEnables {
        match kind {
            PhaseKind::ProgramPulse { .. } | PhaseKind::ErasePulse => PumpEnables {
                program: true,
                inhibit: true,
                verify: false,
            },
            PhaseKind::Verify { .. } | PhaseKind::PreVerify { .. } | PhaseKind::Read => {
                PumpEnables {
                    program: false,
                    inhibit: false,
                    verify: true,
                }
            }
        }
    }

    /// Mean supply power while a phase is held.
    pub fn phase_power_w(&self, kind: PhaseKind) -> f64 {
        match kind {
            PhaseKind::ProgramPulse { target_v } => self.hv.pulse_power_w(target_v),
            PhaseKind::Verify { .. } | PhaseKind::PreVerify { .. } => self.hv.verify_power_w(),
            PhaseKind::Read => self.hv.read_power_w(),
            PhaseKind::ErasePulse => self.hv.erase_power_w(),
        }
    }

    /// Runs a phase program and returns the energy breakdown.
    pub fn execute(&self, phases: &[Phase]) -> OperationEnergy {
        let mut op = OperationEnergy::default();
        for phase in phases {
            let power = self.phase_power_w(phase.kind);
            op.push(PhaseEnergy {
                label: Self::label(phase.kind),
                duration_s: phase.duration_s,
                energy_j: power * phase.duration_s,
            });
        }
        op
    }

    fn label(kind: PhaseKind) -> &'static str {
        match kind {
            PhaseKind::ProgramPulse { .. } => "pulse",
            PhaseKind::Verify { .. } => "verify",
            PhaseKind::PreVerify { .. } => "pre-verify",
            PhaseKind::Read => "read",
            PhaseKind::ErasePulse => "erase",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> Sequencer {
        Sequencer::new(HvSubsystem::date2012())
    }

    #[test]
    fn enable_bits_match_phase_roles() {
        let pulse = Sequencer::enables(PhaseKind::ProgramPulse { target_v: 15.0 });
        assert!(pulse.program && pulse.inhibit && !pulse.verify);
        let vfy = Sequencer::enables(PhaseKind::Verify { level: 2 });
        assert!(!vfy.program && !vfy.inhibit && vfy.verify);
        let pre = Sequencer::enables(PhaseKind::PreVerify { level: 1 });
        assert_eq!(pre, vfy);
    }

    #[test]
    fn sv_and_dv_share_the_hardware() {
        // The DV program only adds pre-verify phases — same subsystem, no
        // new enable combinations.
        let s = seq();
        let sv = [
            Phase {
                kind: PhaseKind::ProgramPulse { target_v: 14.0 },
                duration_s: 12e-6,
            },
            Phase {
                kind: PhaseKind::Verify { level: 1 },
                duration_s: 12e-6,
            },
        ];
        let dv = [
            Phase {
                kind: PhaseKind::ProgramPulse { target_v: 14.0 },
                duration_s: 12e-6,
            },
            Phase {
                kind: PhaseKind::PreVerify { level: 1 },
                duration_s: 12e-6,
            },
            Phase {
                kind: PhaseKind::Verify { level: 1 },
                duration_s: 12e-6,
            },
        ];
        let e_sv = s.execute(&sv);
        let e_dv = s.execute(&dv);
        assert!(e_dv.total_energy_j() > e_sv.total_energy_j());
        assert!(e_dv.duration_s() > e_sv.duration_s());
        // Pre-verify biasing is a verify: identical phase power.
        assert_eq!(
            s.phase_power_w(PhaseKind::PreVerify { level: 1 }),
            s.phase_power_w(PhaseKind::Verify { level: 1 })
        );
    }

    #[test]
    fn energies_scale_with_duration() {
        let s = seq();
        let short = s.execute(&[Phase {
            kind: PhaseKind::Read,
            duration_s: 10e-6,
        }]);
        let long = s.execute(&[Phase {
            kind: PhaseKind::Read,
            duration_s: 20e-6,
        }]);
        let ratio = long.total_energy_j() / short.total_energy_j();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn labels_cover_all_kinds() {
        let s = seq();
        let op = s.execute(&[
            Phase {
                kind: PhaseKind::ProgramPulse { target_v: 15.0 },
                duration_s: 1e-6,
            },
            Phase {
                kind: PhaseKind::PreVerify { level: 1 },
                duration_s: 1e-6,
            },
            Phase {
                kind: PhaseKind::Verify { level: 1 },
                duration_s: 1e-6,
            },
            Phase {
                kind: PhaseKind::Read,
                duration_s: 1e-6,
            },
            Phase {
                kind: PhaseKind::ErasePulse,
                duration_s: 1e-6,
            },
        ]);
        let labels: Vec<&str> = op.phases().iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            vec!["pulse", "pre-verify", "verify", "read", "erase"]
        );
    }
}
