//! The complete HV subsystem of the paper's 45 nm low-power device.

use crate::dickson::DicksonPump;
use crate::regulator::RegulatedPump;

/// The three charge pumps of the paper's HV module plus the array-level
/// load model, with phase-averaged power evaluation.
///
/// The array load constants stand in for the FlashPower-style equation set
/// (Mohan et al. \[25\]) the paper feeds its SPICE pump currents into: they
/// lump word-line/bit-line switching and sensing power, and are calibrated
/// so a full-page program lands in the 0.15-0.18 W band of Fig. 6.
///
/// # Example
///
/// ```
/// use mlcx_hv::HvSubsystem;
///
/// let hv = HvSubsystem::date2012();
/// // Verify phases are the power-hungry part (bit-line precharge +
/// // sensing) — the root of the ISPP-DV power penalty.
/// assert!(hv.verify_power_w() > hv.pulse_power_w(16.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HvSubsystem {
    /// 12-stage program pump (14-19 V ISPP pulses).
    pub program_pump: DicksonPump,
    /// 8-stage inhibit pump (8 V channel self-boosting).
    pub inhibit_pump: DicksonPump,
    /// 4-stage high-speed verify pump (4.5 V read-pass voltage).
    pub verify_pump: DicksonPump,
    /// Inhibit rail target, volts.
    pub inhibit_target_v: f64,
    /// Verify/read pass-voltage target, volts.
    pub verify_target_v: f64,
    /// Average load on the program pump during a pulse, amperes.
    pub program_load_a: f64,
    /// Average load on the inhibit pump during a pulse, amperes.
    pub inhibit_load_a: f64,
    /// Average load on the verify pump during verify/read, amperes.
    pub verify_load_a: f64,
    /// Array/periphery power during a program pulse (WL drivers, channel
    /// boosting) at the reference staircase voltage, watts.
    pub array_pulse_w: f64,
    /// Array/periphery power during verify/read (bit-line precharge and
    /// sensing), watts.
    pub array_verify_w: f64,
    /// Staircase voltage the array pulse power is referenced to, volts.
    pub array_pulse_v_ref: f64,
    /// Fraction of the array pulse power that scales quadratically with
    /// the staircase voltage (channel-boosting CV^2 component); the rest
    /// is voltage-independent periphery. This is what separates the
    /// L1/L2/L3 pattern curves of Fig. 6.
    pub array_pulse_quadratic_frac: f64,
}

impl HvSubsystem {
    /// The paper's configuration (45 nm, VDD = 1.8 V), calibrated to the
    /// Fig. 6 power band.
    pub fn date2012() -> Self {
        HvSubsystem {
            program_pump: DicksonPump::program_pump_45nm(),
            inhibit_pump: DicksonPump::inhibit_pump_45nm(),
            verify_pump: DicksonPump::verify_pump_45nm(),
            inhibit_target_v: 8.0,
            verify_target_v: 4.5,
            program_load_a: 0.30e-3,
            inhibit_load_a: 0.80e-3,
            verify_load_a: 2.0e-3,
            array_pulse_w: 0.105,
            array_verify_w: 0.163,
            array_pulse_v_ref: 16.5,
            array_pulse_quadratic_frac: 0.3,
        }
    }

    /// Closed-form regulated input power of one pump at `(target, load)`.
    fn regulated_power_w(pump: &DicksonPump, target_v: f64, load_a: f64) -> f64 {
        RegulatedPump::new(*pump, target_v).steady_state_power_w(load_a)
    }

    /// Supply power during a program pulse with the staircase at
    /// `pulse_target_v` (program + inhibit pumps running, plus the
    /// voltage-dependent array/boosting load).
    pub fn pulse_power_w(&self, pulse_target_v: f64) -> f64 {
        let ratio = pulse_target_v / self.array_pulse_v_ref;
        let array = self.array_pulse_w
            * ((1.0 - self.array_pulse_quadratic_frac)
                + self.array_pulse_quadratic_frac * ratio * ratio);
        Self::regulated_power_w(&self.program_pump, pulse_target_v, self.program_load_a)
            + Self::regulated_power_w(
                &self.inhibit_pump,
                self.inhibit_target_v,
                self.inhibit_load_a,
            )
            + array
    }

    /// Supply power during a Verify (threshold-voltage read) phase.
    pub fn verify_power_w(&self) -> f64 {
        Self::regulated_power_w(&self.verify_pump, self.verify_target_v, self.verify_load_a)
            + self.array_verify_w
    }

    /// Supply power during a page read — electrically the same biasing as
    /// a verify.
    pub fn read_power_w(&self) -> f64 {
        self.verify_power_w()
    }

    /// Supply power while an erase pulse holds the well at high voltage.
    ///
    /// The paper does not characterize erase; this uses the program pump
    /// at its ceiling with a block-level load, giving a plausible figure
    /// for device-level accounting.
    pub fn erase_power_w(&self) -> f64 {
        Self::regulated_power_w(&self.program_pump, 20.0, 2.0 * self.program_load_a)
            + self.array_pulse_w
    }
}

impl Default for HvSubsystem {
    fn default() -> Self {
        Self::date2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_power_increases_along_the_staircase() {
        let hv = HvSubsystem::date2012();
        let mut prev = 0.0;
        for step in 0..=20 {
            let v = 14.0 + 0.25 * step as f64;
            let p = hv.pulse_power_w(v);
            assert!(p > prev, "power must rise with ISPP target ({v} V)");
            prev = p;
        }
    }

    #[test]
    fn phase_powers_in_fig6_band() {
        // Individual phases must straddle the 0.15-0.18 W operation band
        // so that pulse/verify mixes land inside it.
        let hv = HvSubsystem::date2012();
        let pulse = hv.pulse_power_w(16.5);
        let verify = hv.verify_power_w();
        assert!((0.12..0.16).contains(&pulse), "pulse = {pulse}");
        assert!((0.16..0.20).contains(&verify), "verify = {verify}");
        assert!(verify > pulse);
    }

    #[test]
    fn read_equals_verify_biasing() {
        let hv = HvSubsystem::date2012();
        assert_eq!(hv.read_power_w(), hv.verify_power_w());
    }

    #[test]
    fn erase_power_is_plausible() {
        // Erase holds the well from the program pump at its ceiling (no
        // inhibit pump): total power must stay in the device band.
        let hv = HvSubsystem::date2012();
        let p = hv.erase_power_w();
        assert!((0.12..0.20).contains(&p), "erase = {p}");
    }
}
