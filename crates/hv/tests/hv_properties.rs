//! Property-based tests of the charge-pump and regulation models.

use mlcx_hv::{DicksonPump, HvSubsystem, Phase, PhaseKind, RegulatedPump, Sequencer};
use proptest::prelude::*;

fn arb_pump() -> impl Strategy<Value = DicksonPump> {
    (4u32..=16, 50e-12..300e-12, 10e6..50e6, 1.5f64..3.3).prop_map(|(stages, c, f, vdd)| {
        DicksonPump {
            stages,
            stage_capacitance_f: c,
            clock_hz: f,
            supply_v: vdd,
            parasitic_ratio: 0.12,
            output_capacitance_f: 80e-12,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pump physics invariants: no-load voltage scales with stages,
    /// output droops monotonically with load, efficiency stays in (0, 1).
    #[test]
    fn pump_invariants(pump in arb_pump(), load_ua in 1.0f64..500.0) {
        let load = load_ua * 1e-6;
        let v_nl = pump.no_load_output_v();
        prop_assert!((v_nl - (pump.stages as f64 + 1.0) * pump.supply_v).abs() < 1e-9);
        let v = pump.steady_state_output_v(load);
        prop_assert!(v < v_nl);
        prop_assert!(pump.steady_state_output_v(load * 2.0) < v);
        if v > 0.0 {
            let eta = pump.efficiency(v, load);
            prop_assert!(eta > 0.0 && eta < 1.0, "eta = {eta}");
        }
    }

    /// The regulated pump holds any reachable target within its band and
    /// its duty cycle stays in [0, 1].
    #[test]
    fn regulation_holds_reachable_targets(
        pump in arb_pump(),
        frac in 0.3f64..0.8,
        load_ua in 1.0f64..200.0,
    ) {
        let target = pump.supply_v + frac * (pump.no_load_output_v() - pump.supply_v);
        let load = (load_ua * 1e-6).min(0.5 * pump.max_load_current_a(target));
        prop_assume!(load > 0.0);
        let mut reg = RegulatedPump::new(pump, target);
        reg.run_phase(60e-6, load); // settle
        let report = reg.run_phase(30e-6, load);
        prop_assert!(report.duty_cycle >= 0.0 && report.duty_cycle <= 1.0);
        prop_assert!(
            (report.mean_output_v - target).abs() < 0.08 * target,
            "target {target}, mean {}",
            report.mean_output_v
        );
    }

    /// Sequencer energy accounting: total energy equals the sum over
    /// phases, and scales linearly with phase duration.
    #[test]
    fn sequencer_energy_additivity(
        durations in proptest::collection::vec(1e-6f64..50e-6, 1..10),
    ) {
        let seq = Sequencer::new(HvSubsystem::date2012());
        let phases: Vec<Phase> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| Phase {
                kind: if i % 2 == 0 {
                    PhaseKind::ProgramPulse { target_v: 15.0 }
                } else {
                    PhaseKind::Verify { level: 1 }
                },
                duration_s: d,
            })
            .collect();
        let op = seq.execute(&phases);
        let total: f64 = op.phases().iter().map(|p| p.energy_j).sum();
        prop_assert!((op.total_energy_j() - total).abs() < 1e-15);

        // Doubling every duration doubles the energy.
        let doubled: Vec<Phase> = phases
            .iter()
            .map(|p| Phase { kind: p.kind, duration_s: 2.0 * p.duration_s })
            .collect();
        let op2 = seq.execute(&doubled);
        prop_assert!((op2.total_energy_j() - 2.0 * op.total_energy_j()).abs() < 1e-12);
    }

    /// Pulse power is monotone in the staircase voltage across the whole
    /// ISPP range — required for the L1 < L2 < L3 pattern ordering.
    #[test]
    fn pulse_power_monotone(v1 in 14.0f64..19.0, v2 in 14.0f64..19.0) {
        let hv = HvSubsystem::date2012();
        prop_assume!((v1 - v2).abs() > 1e-6);
        let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(hv.pulse_power_w(lo) < hv.pulse_power_w(hi));
    }
}
