//! A hand-rolled Rust lexer for the lint engine.
//!
//! The rules only need a *token* view of a source file — identifiers,
//! punctuation, literals and comments with accurate line/column
//! positions — not a syntax tree. What they absolutely cannot tolerate
//! is a false positive from text inside a string, a raw string, a char
//! literal or a (possibly nested) block comment: a determinism gate
//! that cries wolf gets allowed-away until it is useless. So this
//! module lexes the full token-level grammar:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/** */`, `/*! */`), kept as [`TokenKind::Comment`]
//!   tokens so the comment-driven rules (`todo-marker`, the
//!   `mlcx-lint: allow(...)` directives) can see them;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with any number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\n'`, `'\u{2192}'`);
//! * raw identifiers (`r#type`);
//! * numeric literals, with enough shape analysis to know whether a
//!   literal is a *float* (fraction, exponent, or `f32`/`f64` suffix;
//!   hex/octal/binary literals are never floats) for the `float-eq`
//!   rule;
//! * multi-char operators the rules match on (`==`, `!=`, `::`) merged
//!   into single tokens; everything else is single-char punctuation.
//!
//! The lexer is *lossy by design* — whitespace is dropped, and it never
//! fails: any byte it does not understand becomes single-char
//! punctuation. Lexing garbage produces garbage tokens, not a crash,
//! which is the right failure mode for a linter that walks every file
//! in the tree.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, with the
    /// `r#` prefix stripped).
    Ident,
    /// A lifetime (`'a`), label included. The text keeps the quote.
    Lifetime,
    /// A numeric literal; `float` is true for fraction/exponent/float
    /// suffix shapes.
    Num {
        /// Whether the literal lexes as a floating-point number.
        float: bool,
    },
    /// A string / byte-string literal (escaped or raw). The text is the
    /// raw source slice including quotes and guards.
    Str,
    /// A char / byte-char literal.
    Char,
    /// Punctuation: one character, except the merged `==`, `!=`, `::`.
    Punct,
    /// A comment. `block` distinguishes `/* */` from `//`; `doc` marks
    /// `///`, `//!`, `/** */`, `/*! */`.
    Comment {
        /// Block (`/* */`) rather than line (`//`) comment.
        block: bool,
        /// Rustdoc comment (`///`, `//!`, `/** */`, `/*! */`).
        doc: bool,
    },
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// The source text of the token. For comments this includes the
    /// comment markers; for strings, the quotes and raw-string guards.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// Whether this token is a comment (of any flavor).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::Comment { .. })
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes a whole source file into tokens (comments included, whitespace
/// dropped). Never fails; see the module docs for the grammar covered.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if let Some(tok) = try_lex_string_like(&mut cur) {
            tok
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else if is_ident_start(c) {
            lex_ident(&mut cur)
        } else {
            lex_punct(&mut cur)
        };
        tokens.push(Token { line, col, ..token });
    }
    tokens
}

fn lex_line_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `///` and `//!` are doc comments; `////...` (a rule of slashes)
    // is not, matching rustc.
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    Token {
        kind: TokenKind::Comment { block: false, doc },
        text,
        line: 0,
        col: 0,
    }
}

fn lex_block_comment(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
        || text.starts_with("/*!");
    Token {
        kind: TokenKind::Comment { block: true, doc },
        text,
        line: 0,
        col: 0,
    }
}

/// Lexes `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`, `b'…'` and raw
/// identifiers (`r#ident`) — everything that starts with a quote or an
/// `r`/`b` prefix that *turns into* a quote. Returns `None` when the
/// upcoming text is none of these (a plain identifier starting with
/// `r`/`b`, say).
fn try_lex_string_like(cur: &mut Cursor) -> Option<Token> {
    let c = cur.peek(0)?;
    if c == '"' {
        return Some(lex_escaped_string(cur, 0));
    }
    if c != 'r' && c != 'b' {
        return None;
    }
    // Possible prefixes: r" r#" r#ident  b" b' br" br#"
    let mut ahead = 1;
    if c == 'b' && cur.peek(1) == Some('r') {
        ahead = 2;
    }
    if c == 'b' && cur.peek(1) == Some('\'') {
        // Byte char: consume b, then the quote path.
        cur.bump();
        let mut tok = lex_quote(cur);
        tok.text.insert(0, 'b');
        return Some(tok);
    }
    let mut hashes = 0;
    while cur.peek(ahead + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(ahead + hashes) {
        Some('"') if ahead == 2 || c == 'r' || hashes == 0 => {
            if c == 'b' && ahead == 1 {
                // b"…": an escaped byte string, not a raw one.
                if hashes != 0 {
                    return None;
                }
                cur.bump();
                let mut tok = lex_escaped_string(cur, 0);
                tok.text.insert(0, 'b');
                return Some(tok);
            }
            // r"…" / r#"…"# / br#"…"#: raw — no escapes at all.
            let mut text = String::new();
            for _ in 0..ahead + hashes + 1 {
                text.push(cur.bump().expect("peeked above"));
            }
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '"' {
                    let mut matched = 0;
                    while matched < hashes && cur.peek(0) == Some('#') {
                        text.push(cur.bump().expect("peeked above"));
                        matched += 1;
                    }
                    if matched == hashes {
                        break;
                    }
                }
            }
            Some(Token {
                kind: TokenKind::Str,
                text,
                line: 0,
                col: 0,
            })
        }
        // r#ident — a raw identifier: hand back as Ident without `r#`.
        Some(ch) if c == 'r' && hashes == 1 && is_ident_start(ch) => {
            cur.bump();
            cur.bump();
            let mut tok = lex_ident(cur);
            tok.kind = TokenKind::Ident;
            Some(tok)
        }
        _ => None,
    }
}

fn lex_escaped_string(cur: &mut Cursor, _hashes: usize) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote"));
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line: 0,
        col: 0,
    }
}

/// A single quote: a char literal (`'a'`, `'\n'`) or a lifetime (`'a`).
fn lex_quote(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("opening quote"));
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then scan to the
            // closing quote (covers '\u{…}').
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '\\' {
                    if let Some(esc) = cur.bump() {
                        text.push(esc);
                    }
                } else if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line: 0,
                col: 0,
            }
        }
        Some(ch) if cur.peek(1) == Some('\'') => {
            // 'x' — a one-char literal.
            text.push(ch);
            cur.bump();
            text.push(cur.bump().expect("closing quote"));
            Token {
                kind: TokenKind::Char,
                text,
                line: 0,
                col: 0,
            }
        }
        Some(ch) if is_ident_start(ch) => {
            // 'lifetime
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Token {
                kind: TokenKind::Lifetime,
                text,
                line: 0,
                col: 0,
            }
        }
        _ => Token {
            kind: TokenKind::Punct,
            text,
            line: 0,
            col: 0,
        },
    }
}

fn lex_number(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    let radix_prefixed =
        cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'));
    let digits = |c: char| c.is_ascii_hexdigit() || c == '_';
    if radix_prefixed {
        text.push(cur.bump().expect("digit"));
        text.push(cur.bump().expect("radix"));
        while let Some(c) = cur.peek(0) {
            if !digits(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        // Integer suffix if any (0xFFu32).
        consume_suffix(cur, &mut text);
        return Token {
            kind: TokenKind::Num { float: false },
            text,
            line: 0,
            col: 0,
        };
    }
    let mut float = false;
    while let Some(c) = cur.peek(0) {
        if !(c.is_ascii_digit() || c == '_') {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // Fraction: a `.` NOT followed by another `.` (range) or an
    // identifier start (method call / field like `1.max(2)`).
    if cur.peek(0) == Some('.') {
        let next = cur.peek(1);
        let is_fraction = match next {
            Some(c) => c.is_ascii_digit() || !(c == '.' || is_ident_start(c)),
            None => true,
        };
        if is_fraction {
            float = true;
            text.push(cur.bump().expect("dot"));
            while let Some(c) = cur.peek(0) {
                if !(c.is_ascii_digit() || c == '_') {
                    break;
                }
                text.push(c);
                cur.bump();
            }
        }
    }
    // Exponent: e/E, optional sign, at least one digit.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, first_digit) = match cur.peek(1) {
            Some('+' | '-') => (1, cur.peek(2)),
            other => (0, other),
        };
        if first_digit.is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            for _ in 0..sign + 1 {
                text.push(cur.bump().expect("exponent"));
            }
            while let Some(c) = cur.peek(0) {
                if !(c.is_ascii_digit() || c == '_') {
                    break;
                }
                text.push(c);
                cur.bump();
            }
        }
    }
    let suffix = consume_suffix(cur, &mut text);
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    Token {
        kind: TokenKind::Num { float },
        text,
        line: 0,
        col: 0,
    }
}

fn consume_suffix(cur: &mut Cursor, text: &mut String) -> String {
    let mut suffix = String::new();
    if cur.peek(0).is_some_and(is_ident_start) {
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            suffix.push(c);
            text.push(c);
            cur.bump();
        }
    }
    suffix
}

fn lex_ident(cur: &mut Cursor) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line: 0,
        col: 0,
    }
}

fn lex_punct(cur: &mut Cursor) -> Token {
    let c = cur.bump().expect("peeked by caller");
    let mut text = String::from(c);
    // The only multi-char operators the rules care about. `=>`/`<=`/
    // `>=` and friends stay as single chars — no rule matches them, and
    // keeping the merge set minimal keeps the lexer honest.
    let merged = matches!(
        (c, cur.peek(0)),
        ('=', Some('=')) | ('!', Some('=')) | (':', Some(':'))
    );
    if merged {
        text.push(cur.bump().expect("peeked above"));
    }
    Token {
        kind: TokenKind::Punct,
        text,
        line: 0,
        col: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_merged_puncts() {
        let toks = kinds("let x == 1.5e3 != 0x1E :: y");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "==".into()),
                (TokenKind::Num { float: true }, "1.5e3".into()),
                (TokenKind::Punct, "!=".into()),
                (TokenKind::Num { float: false }, "0x1E".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "y".into()),
            ]
        );
    }

    #[test]
    fn float_shapes() {
        let is_float = |src: &str| matches!(lex(src)[0].kind, TokenKind::Num { float: true });
        assert!(is_float("1.0"));
        assert!(is_float("1."));
        assert!(is_float("2e9"));
        assert!(is_float("2E-9"));
        assert!(is_float("3f64"));
        assert!(is_float("1_000.5"));
        assert!(!is_float("1"));
        assert!(!is_float("0x1E"));
        assert!(!is_float("1u64"));
        // `1.max(2)` is an integer method call, not a float.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Num { float: false }, "1".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        // `0..4` is a range of integers.
        let toks = kinds("0..4");
        assert_eq!(toks[0], (TokenKind::Num { float: false }, "0".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        // Nothing inside a string may surface as an ident/punct token.
        for src in [
            r#"let s = "HashMap == unwrap()";"#,
            r##"let s = r#"Instant::now() /* unsafe */"#;"##,
            r#"let s = b"panic!";"#,
            r##"let s = br#"SystemTime"#;"##,
        ] {
            let toks = lex(src);
            assert!(
                toks.iter().all(|t| !t.is_ident("HashMap")
                    && !t.is_ident("Instant")
                    && !t.is_ident("unwrap")
                    && !t.is_ident("panic")
                    && !t.is_ident("SystemTime")
                    && !t.is_ident("unsafe")),
                "leaked tokens from {src}: {toks:?}"
            );
            assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        }
    }

    #[test]
    fn raw_string_guards_respect_hash_count() {
        // The inner `"#` does not close a `##`-guarded raw string.
        let src = r###"r##"one "# two"## trailing"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[0].1, r###"r##"one "# two"##"###);
        assert_eq!(toks[1], (TokenKind::Ident, "trailing".into()));
    }

    #[test]
    fn nested_block_comments_and_doc_flavors() {
        let toks = lex("/* a /* nested unwrap() */ b */ code");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_comment());
        assert!(toks[1].is_ident("code"));

        let doc = |src: &str| match lex(src)[0].kind {
            TokenKind::Comment { doc, .. } => doc,
            _ => panic!("not a comment"),
        };
        assert!(doc("/// docs"));
        assert!(doc("//! docs"));
        assert!(doc("/** docs */"));
        assert!(doc("/*! docs */"));
        assert!(!doc("// plain"));
        assert!(!doc("//// rule of slashes"));
        assert!(!doc("/* plain */"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("'a' 'x 'static '\\n' '\\u{2192}' b'z'");
        assert_eq!(toks[0], (TokenKind::Char, "'a'".into()));
        assert_eq!(toks[1], (TokenKind::Lifetime, "'x".into()));
        assert_eq!(toks[2], (TokenKind::Lifetime, "'static".into()));
        assert_eq!(toks[3], (TokenKind::Char, "'\\n'".into()));
        assert_eq!(toks[4], (TokenKind::Char, "'\\u{2192}'".into()));
        assert_eq!(toks[5], (TokenKind::Char, "b'z'".into()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("r#type r#unwrap");
        assert_eq!(toks[0], (TokenKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd == ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
        assert_eq!((toks[3].line, toks[3].col), (2, 9));
    }
}
