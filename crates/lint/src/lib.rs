//! `mlcx-lint` — the workspace determinism/safety lint engine.
//!
//! Every claim this reproduction makes rests on bit-identical
//! determinism pins (the eight committed bench baselines,
//! `tests/event_core.rs`, `tests/codec_kernels.rs`). Those pins are
//! defended *after the fact* by test reruns; this crate defends them
//! *by construction*: a std-only static-analysis pass that forbids the
//! nondeterminism vectors (hash-order iteration, ambient wall clocks,
//! unseeded RNG, float equality) and ratchets down panic paths and
//! stale to-do markers, so silent nondeterminism cannot creep in as the
//! tree grows toward fault-injection and parallel-campaign work.
//!
//! The engine is three layers:
//!
//! * [`lexer`] — a hand-rolled, comment/string/raw-string-aware Rust
//!   lexer (no syntax tree; rules match token shapes);
//! * [`rules`] — the rule set, each rule scoped per crate and per
//!   test/non-test region (see the rule table in ARCHITECTURE.md);
//! * this module — file discovery, `#[cfg(test)]` region
//!   classification, `// mlcx-lint: allow(rule, reason = "…")` escape
//!   hatches (a reason is *mandatory*), and the ratchet baseline
//!   (counted rules may only decrease; the committed counts live in
//!   `crates/lint/baseline.json`, parsed and written through
//!   `mlcx_bench::json` — the same serializer the bench gate uses).
//!
//! Run it as `cargo run -p mlcx-lint -- --check` (CI does) or
//! `-- --update-baseline` after an intentional burn-down, mirroring the
//! bench-gate `--update` flow documented in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;

use lexer::{lex, Token, TokenKind};

/// One lint finding, rendered as `file:line:col rule-id message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable rule identifier (kebab-case).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// An inline `// mlcx-lint: allow(rule-id, reason = "…")` directive.
///
/// A directive suppresses findings of `rule` on its own line and on the
/// line directly below it (so it can trail the offending code or sit
/// immediately above it). The reason is mandatory — an allow without
/// one is itself a finding (`bad-allow`) — and an allow that suppresses
/// nothing is reported as `unused-allow` so stale escape hatches cannot
/// linger.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the directive sits on.
    pub line: u32,
    /// 1-based column of the directive comment.
    pub col: u32,
}

/// A lexed source file with its lint-relevant classification.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/core/src/engine.rs`).
    pub rel_path: String,
    /// Cargo package name the file belongs to (`mlcx-core`).
    pub crate_name: String,
    /// Whether the *whole file* is test/bench code (under a `tests/` or
    /// `benches/` directory).
    pub test_file: bool,
    /// Whether this file is a crate root (`src/lib.rs`).
    pub crate_root: bool,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]` item (or a test file).
    pub test_mask: Vec<bool>,
    /// Parsed allow directives.
    pub allows: Vec<AllowDirective>,
    /// Malformed `mlcx-lint:` comments (missing reason, bad syntax).
    pub bad_allows: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes and classifies `source` as `rel_path` in `crate_name`.
    pub fn parse(rel_path: &str, crate_name: &str, source: &str) -> SourceFile {
        let tokens = lex(source);
        let test_file = rel_path
            .split('/')
            .any(|part| part == "tests" || part == "benches");
        let crate_root = rel_path.ends_with("src/lib.rs");
        let test_mask = mark_cfg_test_spans(&tokens, test_file);
        let (allows, bad_allows) = parse_allow_directives(rel_path, &tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            test_file,
            crate_root,
            tokens,
            test_mask,
            allows,
            bad_allows,
        }
    }

    /// Whether the token at `index` is test code.
    pub fn is_test_token(&self, index: usize) -> bool {
        self.test_mask[index]
    }

    /// A diagnostic at the position of token `index`.
    pub fn diag_at(&self, index: usize, rule: &'static str, message: String) -> Diagnostic {
        let t = &self.tokens[index];
        Diagnostic {
            file: self.rel_path.clone(),
            line: t.line,
            col: t.col,
            rule,
            message,
        }
    }
}

/// Marks every token inside a `#[cfg(test)]`-gated item (attribute
/// included). The item is the next `;`-terminated statement or `{}`
/// block at bracket depth zero — enough structure to skip `mod tests`,
/// gated functions and gated `use` lines without a full parser.
fn mark_cfg_test_spans(tokens: &[Token], whole_file: bool) -> Vec<bool> {
    let mut mask = vec![whole_file; tokens.len()];
    if whole_file {
        return mask;
    }
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_cfg_test_attr(tokens, i) {
            // Mark the attribute itself, then the item that follows.
            for flag in mask.iter_mut().take(attr_end + 1).skip(i) {
                *flag = true;
            }
            let mut j = attr_end + 1;
            let mut depth = 0i64;
            let mut entered_block = false;
            while j < tokens.len() {
                mask[j] = true;
                if let TokenKind::Punct = tokens[j].kind {
                    match tokens[j].text.as_str() {
                        "{" | "(" | "[" => {
                            depth += 1;
                            entered_block = entered_block || tokens[j].text == "{";
                        }
                        "}" | ")" | "]" => {
                            depth -= 1;
                            if depth == 0 && entered_block && tokens[j].text == "}" {
                                break;
                            }
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Matches `# [ cfg ( test ) ]` starting at token `i` (comments between
/// tokens tolerated); returns the index of the closing `]`. This
/// deliberately does *not* match `#[cfg(not(test))]` or other
/// combinators — only the exact gate.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let expected: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct("#"),
        &|t| t.is_punct("["),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct("("),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(")"),
        &|t| t.is_punct("]"),
    ];
    let mut idx = i;
    let mut last = i;
    for matcher in expected {
        while tokens.get(idx).is_some_and(|t| t.is_comment()) {
            idx += 1;
        }
        let t = tokens.get(idx)?;
        if !matcher(t) {
            return None;
        }
        last = idx;
        idx += 1;
    }
    Some(last)
}

/// The directive marker inside a comment.
const ALLOW_MARKER: &str = "mlcx-lint:";

/// Parses `mlcx-lint: allow(rule, reason = "…")` directives out of the
/// comment tokens. A directive is a dedicated non-doc comment whose
/// body *starts with* the marker (so prose that merely mentions the
/// syntax, like this sentence, is not one). Anything after the marker
/// that does not parse — missing reason included — becomes a
/// `bad-allow` diagnostic: the escape hatch *requires* a justification.
fn parse_allow_directives(
    rel_path: &str,
    tokens: &[Token],
) -> (Vec<AllowDirective>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        let TokenKind::Comment { block, doc } = t.kind else {
            continue;
        };
        if doc {
            continue;
        }
        let body = if block {
            t.text.trim_start_matches("/*")
        } else {
            t.text.trim_start_matches('/')
        }
        .trim_start();
        let Some(rest) = body.strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        let rest = rest.trim();
        match parse_allow_body(rest) {
            Ok((rule, reason)) => allows.push(AllowDirective {
                rule,
                reason,
                line: t.line,
                col: t.col,
            }),
            Err(why) => bad.push(Diagnostic {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "bad-allow",
                message: format!(
                    "malformed allow directive ({why}); write \
                     `mlcx-lint: allow(rule-id, reason = \"…\")` — the reason is mandatory"
                ),
            }),
        }
    }
    (allows, bad)
}

fn parse_allow_body(rest: &str) -> Result<(String, String), String> {
    let body = rest
        .strip_prefix("allow(")
        .ok_or("expected `allow(`")?
        .trim_end_matches("*/")
        .trim();
    let body = body.strip_suffix(')').ok_or("unclosed `allow(`")?;
    let (rule, tail) = body
        .split_once(',')
        .ok_or("missing `, reason = \"…\"` argument")?;
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("empty rule id".into());
    }
    let tail = tail.trim();
    let reason = tail
        .strip_prefix("reason")
        .and_then(|r| r.trim_start().strip_prefix('='))
        .map(str::trim)
        .ok_or("expected `reason = \"…\"`")?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

/// Counted-rule tallies: `rule -> crate -> unallowed findings`.
pub type RatchetCounts = BTreeMap<String, BTreeMap<String, usize>>;

/// The outcome of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Hard findings (unallowed non-counted diagnostics, malformed or
    /// unused allows). Any entry fails `--check`.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate tallies of the counted (ratcheted) rules.
    pub counts: RatchetCounts,
    /// Sites behind the tallies, for reporting ratchet regressions.
    pub counted_sites: BTreeMap<String, Vec<Diagnostic>>,
    /// Files linted (for the summary line).
    pub files: usize,
}

/// Lints one parsed file, folding findings into `report`.
///
/// Allow-directive bookkeeping happens here: each finding whose rule
/// has a directive on its line or the line above is suppressed, and
/// directives that suppressed nothing become `unused-allow` findings.
pub fn lint_file(file: &SourceFile, report: &mut LintReport) {
    report.files += 1;
    report.diagnostics.extend(file.bad_allows.iter().cloned());
    let mut used = vec![false; file.allows.len()];
    let suppress = |diag: &Diagnostic, used: &mut Vec<bool>| -> bool {
        let mut hit = false;
        for (i, a) in file.allows.iter().enumerate() {
            if a.rule == diag.rule && (a.line == diag.line || a.line + 1 == diag.line) {
                used[i] = true;
                hit = true;
            }
        }
        hit
    };
    for rule in rules::all() {
        if !rule.applies(file) {
            continue;
        }
        for diag in rule.check(file) {
            if suppress(&diag, &mut used) {
                continue;
            }
            if rule.counted() {
                let by_crate = report.counts.entry(rule.id().to_string()).or_default();
                *by_crate.entry(file.crate_name.clone()).or_default() += 1;
                report
                    .counted_sites
                    .entry(rule.id().to_string())
                    .or_default()
                    .push(diag);
            } else {
                report.diagnostics.push(diag);
            }
        }
    }
    for (i, a) in file.allows.iter().enumerate() {
        if !used[i] {
            report.diagnostics.push(Diagnostic {
                file: file.rel_path.clone(),
                line: a.line,
                col: a.col,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing — remove the stale escape hatch",
                    a.rule
                ),
            });
        }
    }
}

/// Ensures every counted rule has an entry for every crate it scopes
/// over, so the ratchet baseline pins explicit zeros (a rule silently
/// losing its scope would otherwise look like a burn-down).
fn pin_counted_zeros(counts: &mut RatchetCounts, crates: &[String]) {
    for rule in rules::all().iter().filter(|r| r.counted()) {
        let by_crate = counts.entry(rule.id().to_string()).or_default();
        for name in crates {
            if rule.counts_crate(name) {
                by_crate.entry(name.clone()).or_default();
            }
        }
    }
}

/// Source roots of the workspace, as `(dir, crate_name)` pairs.
///
/// `crates/compat/*` is excluded by design: the stubs *stand in for
/// external crates* (rand, criterion) and legitimately own ambient
/// clocks and RNG plumbing. `crates/lint/tests/fixtures/` is excluded
/// because the fixtures deliberately violate every rule.
fn source_roots(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut roots = vec![
        (root.join("src"), "mlcx".to_string()),
        (root.join("tests"), "mlcx".to_string()),
        (root.join("examples"), "mlcx".to_string()),
    ];
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|name| name != "compat")
        .collect();
    names.sort();
    for name in names {
        roots.push((crates_dir.join(&name), format!("mlcx-{name}")));
    }
    Ok(roots)
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace under `root` (deterministic file order).
///
/// # Errors
///
/// I/O errors reading the tree; unreadable files fail loudly rather
/// than silently shrinking the lint surface.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    let roots = source_roots(root)?;
    let crate_names: Vec<String> = {
        let mut names: Vec<String> = roots.iter().map(|(_, name)| name.clone()).collect();
        names.dedup();
        names
    };
    for (dir, crate_name) in &roots {
        let mut files = Vec::new();
        walk_rs_files(dir, &mut files);
        for path in files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let file = SourceFile::parse(&rel, crate_name, &source);
            lint_file(&file, &mut report);
        }
    }
    pin_counted_zeros(&mut report.counts, &crate_names);
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Where the committed ratchet baseline lives.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("crates/lint/baseline.json")
}

/// Parses the ratchet baseline (same flat-object JSON the bench gate
/// reads, through the same `mlcx_bench::json` parser).
///
/// # Errors
///
/// Parse or schema errors, with the failing key.
pub fn parse_baseline(text: &str) -> Result<RatchetCounts, String> {
    let value = mlcx_bench::json::parse(text)?;
    let obj = value.as_object().ok_or("baseline must be an object")?;
    let mut counts = RatchetCounts::new();
    for (rule, crates) in obj {
        let entries = crates
            .as_object()
            .ok_or(format!("baseline[{rule:?}] must be an object"))?;
        let by_crate = counts.entry(rule.clone()).or_default();
        for (crate_name, n) in entries {
            let n = n.as_number().ok_or(format!(
                "baseline[{rule:?}][{crate_name:?}] must be a number"
            ))?;
            by_crate.insert(crate_name.clone(), n as usize);
        }
    }
    Ok(counts)
}

/// Serializes ratchet counts through the shared `mlcx_bench::json`
/// writer — the same helper `BenchResult::to_json` and the bench-gate
/// `--update` path render with.
pub fn render_baseline(counts: &RatchetCounts) -> String {
    use mlcx_bench::json::Json;
    let obj = Json::Object(
        counts
            .iter()
            .map(|(rule, crates)| {
                let inner = Json::Object(
                    crates
                        .iter()
                        .map(|(name, n)| (name.clone(), Json::Number(*n as f64)))
                        .collect(),
                );
                (rule.clone(), inner)
            })
            .collect(),
    );
    let mut text = obj.render_pretty();
    text.push('\n');
    text
}

/// One ratchet comparison outcome.
#[derive(Debug, PartialEq, Eq)]
pub enum RatchetStatus {
    /// Count equals the baseline.
    Held,
    /// Count dropped below the baseline — lock it in with
    /// `--update-baseline`.
    Improved,
    /// Count exceeds the baseline — the gate fails.
    Regressed,
}

/// A `(rule, crate)` ratchet comparison.
#[derive(Debug)]
pub struct RatchetCheck {
    /// Counted rule id.
    pub rule: String,
    /// Crate the tally is scoped to.
    pub crate_name: String,
    /// Committed baseline count (0 when the key is absent: new crates
    /// start clean).
    pub baseline: usize,
    /// Current count.
    pub actual: usize,
    /// Comparison outcome.
    pub status: RatchetStatus,
}

/// Compares current counts against the committed baseline. Keys
/// missing from the baseline are treated as zero — a new crate or a
/// newly counted rule starts with no panic budget at all.
pub fn check_ratchet(baseline: &RatchetCounts, counts: &RatchetCounts) -> Vec<RatchetCheck> {
    let mut checks = Vec::new();
    for (rule, by_crate) in counts {
        for (crate_name, &actual) in by_crate {
            let base = baseline
                .get(rule)
                .and_then(|m| m.get(crate_name))
                .copied()
                .unwrap_or(0);
            let status = match actual.cmp(&base) {
                std::cmp::Ordering::Less => RatchetStatus::Improved,
                std::cmp::Ordering::Equal => RatchetStatus::Held,
                std::cmp::Ordering::Greater => RatchetStatus::Regressed,
            };
            checks.push(RatchetCheck {
                rule: rule.clone(),
                crate_name: crate_name.clone(),
                baseline: base,
                actual,
                status,
            });
        }
    }
    checks
}

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_spans_cover_gated_items_only() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn gated() {}\n}\nfn tail() {}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", "mlcx-x", src);
        let flag = |name: &str| {
            let i = file
                .tokens
                .iter()
                .position(|t| t.is_ident(name))
                .expect(name);
            file.is_test_token(i)
        };
        assert!(!flag("live"));
        assert!(flag("gated"));
        assert!(!flag("tail"));
    }

    #[test]
    fn cfg_test_on_a_single_fn_ends_at_its_block() {
        let src = "#[cfg(test)]\npub(crate) fn helper(x: [u8; 3]) -> u8 { x[0] }\nfn live() {}\n";
        let file = SourceFile::parse("crates/x/src/a.rs", "mlcx-x", src);
        let i_helper = file
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .unwrap();
        let i_live = file.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(file.is_test_token(i_helper));
        assert!(!file.is_test_token(i_live));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let file = SourceFile::parse("crates/x/src/a.rs", "mlcx-x", src);
        let i = file.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!file.is_test_token(i));
    }

    #[test]
    fn tests_dir_files_are_test_code_wholesale() {
        let file = SourceFile::parse("crates/x/tests/t.rs", "mlcx-x", "fn anything() {}");
        assert!(file.test_file);
        assert!(file.test_mask.iter().all(|&b| b));
    }

    #[test]
    fn allow_directives_parse_and_require_reasons() {
        let src = r#"
// mlcx-lint: allow(wall-clock, reason = "calibration loop, not datapath")
fn a() {}
// mlcx-lint: allow(wall-clock)
fn b() {}
// mlcx-lint: allow(float-eq, reason = "")
fn c() {}
"#;
        let file = SourceFile::parse("crates/x/src/a.rs", "mlcx-x", src);
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].rule, "wall-clock");
        assert_eq!(file.allows[0].reason, "calibration loop, not datapath");
        assert_eq!(file.bad_allows.len(), 2);
        assert!(file.bad_allows.iter().all(|d| d.rule == "bad-allow"));
    }

    #[test]
    fn ratchet_comparison_classifies_all_three_ways() {
        let mut base = RatchetCounts::new();
        base.entry("r".into())
            .or_default()
            .extend([("a".to_string(), 2), ("b".to_string(), 2)]);
        let mut now = RatchetCounts::new();
        now.entry("r".into()).or_default().extend([
            ("a".to_string(), 2),
            ("b".to_string(), 1),
            ("c".to_string(), 1),
        ]);
        let checks = check_ratchet(&base, &now);
        let by = |name: &str| {
            checks
                .iter()
                .find(|c| c.crate_name == name)
                .map(|c| (&c.status, c.baseline))
                .unwrap()
        };
        assert_eq!(by("a"), (&RatchetStatus::Held, 2));
        assert_eq!(by("b"), (&RatchetStatus::Improved, 2));
        // Unknown keys ratchet from zero.
        assert_eq!(by("c"), (&RatchetStatus::Regressed, 0));
    }

    #[test]
    fn baseline_round_trips_through_the_shared_writer() {
        let mut counts = RatchetCounts::new();
        counts
            .entry("datapath-unwrap".into())
            .or_default()
            .extend([("mlcx-core".to_string(), 3), ("mlcx-nand".to_string(), 0)]);
        counts
            .entry("todo-marker".into())
            .or_default()
            .insert("mlcx".to_string(), 1);
        let text = render_baseline(&counts);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back, counts);
    }
}
